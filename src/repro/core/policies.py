"""The paper's evaluated power-management schemes (Sections IV-A and IV-B).

Five policies, in increasing awareness of the nature of power:

* :class:`UtilUnawarePolicy` (baseline-1) - fair, utility-blind: the dynamic
  budget is split equally and each application's share is enforced the way
  hardware RAPL enforces a limit - by walking a fixed throttle path (DVFS
  first, then idle-injection-style core reduction, then DRAM) until the
  app's true draw fits. Under stringent caps it duty-cycles fairly.
* :class:`ServerResAwarePolicy` (baseline-2) - knows how watts convert into
  performance *on this server on average* (resource utilities averaged
  across all applications) but is blind to per-application differences:
  equal split, one generic knob choice applied to everyone.
* :class:`AppAwarePolicy` - knows per-application utility *curves* (from the
  collaborative estimates) and splits the budget unevenly across apps (R1),
  but does not tune the knob mix per app: within an app it follows the same
  hardware throttle path as the baselines.
* :class:`AppResAwarePolicy` - the paper's full spatial proposal: a joint
  choice of per-app budget *and* per-resource knob mix (R1 + R2), solved
  exactly over each app's Pareto frontier.
* :class:`AppResEsdAwarePolicy` - adds Requirement R4: when the cap cannot
  host everyone simultaneously, all applications share consolidated OFF/ON
  phases with the battery per Eq. (5), instead of taking turns.

Every policy produces an :class:`~repro.core.coordinator.AllocationPlan`;
the mediator supplies a :class:`PolicyContext` carrying the oracle response
surfaces (the "hardware" the enforcement acts on), the collaborative
estimates (what aware policies believe), and the population-average surface.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.core.allocator import Allocation, AppAllocation, PowerAllocator
from repro.core.coordinator import AllocationPlan, CoordinationMode, TimeSlot
from repro.core.utility import CandidateSet
from repro.esd.battery import LeadAcidBattery
from repro.esd.controller import compute_duty_cycle
from repro.server.config import KnobSetting, ServerConfig

#: Registry of policy names as used in the paper's figures.
POLICY_NAMES = (
    "util-unaware",
    "server+res-aware",
    "app-aware",
    "app+res-aware",
    "app+res+esd-aware",
)


@dataclass(frozen=True)
class PolicyContext:
    """Everything a policy may look at when planning one epoch.

    Attributes:
        config: The server's knob space and power constants.
        p_cap_w: The cap in force.
        oracle: True response surfaces per app. Policies use these only to
            emulate *hardware enforcement* (hardware reacts to true power,
            whatever the policy believes).
        estimates: Collaborative-filtering estimates per app - what
            utility-aware policies believe. Experiments may pass the oracle
            here to study policies without estimation error.
        population: The average application's surface (power and normalized
            performance averaged over the corpus); what Server+Res-Aware
            knows. ``None`` disables that policy.
        battery: The server's ESD, or ``None``.
        trust_weights: Optional per-app utility multipliers in (0, 1] from
            the mediator's TrustScorer - a distrusted tenant's performance
            counts for less when dividing the budget. ``None`` (the default)
            plans exactly as before defenses existed. The utility-blind
            baselines ignore it: they cannot weigh what they do not measure.
    """

    config: ServerConfig
    p_cap_w: float
    oracle: dict[str, CandidateSet]
    estimates: dict[str, CandidateSet]
    population: CandidateSet | None = None
    battery: LeadAcidBattery | None = None
    trust_weights: dict[str, float] | None = None

    def __post_init__(self) -> None:
        if self.p_cap_w <= 0:
            raise ConfigurationError("p_cap_w must be positive")
        if set(self.oracle) != set(self.estimates):
            raise ConfigurationError("oracle and estimates must cover the same apps")

    @property
    def apps(self) -> list[str]:
        return sorted(self.oracle)

    @property
    def dynamic_budget_w(self) -> float:
        return self.config.dynamic_budget_w(self.p_cap_w)


# The utility-blind throttle order is a hardware-layer concept; it lives
# with the knob substrate and is re-exported here for the baselines.
from repro.server.knobs import hardware_throttle_path  # noqa: E402  (re-export)


def hardware_enforce(
    oracle: CandidateSet, config: ServerConfig, budget_w: float
) -> KnobSetting | None:
    """First knob on the throttle path whose *true* power fits ``budget_w``.

    The budget is derated by the server's RAPL guard band first: hardware
    RAPL tracks an average limit with a windowed control loop and sits
    conservatively below it, unlike direct knob allocation.

    ``None`` when even the path's end exceeds the derated budget (the app
    cannot run under this limit; temporal coordination must take over).
    """
    effective = budget_w * (1.0 - config.rapl_guard_band)
    # Applications admitted with narrow core groups expose a subset of the
    # knob space; path knobs outside it simply do not exist for them.
    available = [k for k in hardware_throttle_path(config) if k in oracle.knobs]
    for knob in available:
        idx = oracle.index_of(knob)
        if oracle.power_w[idx] <= effective + 1e-9:
            return knob
    # Hardware cannot throttle below the path's floor; when the floor fits
    # the *raw* budget the control loop settles there (averaging at the
    # limit) rather than refusing to run.
    if available:
        floor_knob = available[-1]
        if oracle.power_w[oracle.index_of(floor_knob)] <= budget_w + 1e-9:
            return floor_knob
    return None


def _path_candidates(cset: CandidateSet, config: ServerConfig) -> CandidateSet:
    """Restrict a candidate set to the hardware throttle path (in path
    order, so index 0 is the uncapped end). Path knobs outside the set -
    possible for narrow-group applications - are skipped."""
    return cset.subset(
        [cset.index_of(k) for k in hardware_throttle_path(config) if k in cset.knobs]
    )


def _record_allocation(
    budget_w: float, decisions: dict[str, tuple[KnobSetting | None, float, float]]
) -> Allocation:
    """Build an :class:`Allocation` record from per-app decisions
    ``name -> (knob or None, power_w, relative_perf)``."""
    apps: dict[str, AppAllocation] = {}
    objective = 0.0
    for name, (knob, power, rel) in decisions.items():
        if knob is None:
            apps[name] = AppAllocation(
                app=name,
                excluded=True,
                knob=KnobSetting(0.0, 0, 0.0) if knob is None else knob,
                power_w=0.0,
                relative_perf=0.0,
            )
        else:
            apps[name] = AppAllocation(
                app=name, excluded=False, knob=knob, power_w=power, relative_perf=rel
            )
            objective += rel
    return Allocation(budget_w=budget_w, apps=apps, objective=objective)


class Policy(abc.ABC):
    """Interface: turn a :class:`PolicyContext` into an
    :class:`~repro.core.coordinator.AllocationPlan`."""

    #: Paper name, e.g. ``"app+res-aware"``.
    name: str = "abstract"
    #: Whether the mediator should run online calibration for this policy.
    needs_learning: bool = False
    #: Whether the policy may schedule the battery.
    uses_esd: bool = False

    @abc.abstractmethod
    def plan(self, ctx: PolicyContext) -> AllocationPlan:
        """Produce the plan for one allocation epoch."""

    # ------------------------------------------------------------- helpers

    def _idle_plan(self, ctx: PolicyContext) -> AllocationPlan:
        """Nothing can run: suspend everything and deep-sleep."""
        return AllocationPlan(
            mode=CoordinationMode.IDLE,
            p_cap_w=ctx.p_cap_w,
            allocation=_record_allocation(
                ctx.dynamic_budget_w, {n: (None, 0.0, 0.0) for n in ctx.apps}
            ),
        )

    def _fair_time_plan(
        self,
        ctx: PolicyContext,
        on_knobs: dict[str, KnobSetting | None],
        rel_perf: dict[str, float],
    ) -> AllocationPlan:
        """Fair alternate duty cycling: equal exclusive slots for every app
        that can run under the full dynamic budget."""
        runnable = sorted(n for n, k in on_knobs.items() if k is not None)
        if not runnable:
            return self._idle_plan(ctx)
        slot_s = ctx.config.duty_cycle_period_s / len(runnable)
        slots = tuple(
            TimeSlot(apps=(name,), duration_s=slot_s, knobs={name: on_knobs[name]})
            for name in runnable
        )
        share = 1.0 / len(runnable)
        decisions = {
            name: (
                (on_knobs[name], 0.0, share * rel_perf.get(name, 0.0))
                if name in runnable
                else (None, 0.0, 0.0)
            )
            for name in on_knobs
        }
        return AllocationPlan(
            mode=CoordinationMode.TIME,
            p_cap_w=ctx.p_cap_w,
            allocation=_record_allocation(ctx.dynamic_budget_w, decisions),
            slots=slots,
        )

    def _weighted_time_plan(
        self,
        ctx: PolicyContext,
        on_knobs: dict[str, KnobSetting | None],
        rel_perf: dict[str, float],
        *,
        share_floor: float,
    ) -> AllocationPlan:
        """Utility-weighted duty cycling: every runnable app keeps at least
        ``share_floor`` of the rotation; the remainder goes to the app whose
        ON-configuration delivers the most normalized performance per unit
        time (the linear objective's optimum under the fairness floor)."""
        runnable = sorted(n for n, k in on_knobs.items() if k is not None)
        if not runnable:
            return self._idle_plan(ctx)
        floor = min(share_floor, 1.0 / len(runnable))
        shares = {name: floor for name in runnable}
        # De-weighted tenants still keep the fairness floor; they just stop
        # winning the discretionary remainder of the rotation.
        wts = ctx.trust_weights or {}
        best = max(runnable, key=lambda n: rel_perf.get(n, 0.0) * wts.get(n, 1.0))
        shares[best] += 1.0 - floor * len(runnable)
        period = ctx.config.duty_cycle_period_s
        slots = tuple(
            TimeSlot(
                apps=(name,),
                duration_s=shares[name] * period,
                knobs={name: on_knobs[name]},
            )
            for name in runnable
            if shares[name] > 0
        )
        decisions = {
            name: (
                (on_knobs[name], 0.0, shares[name] * rel_perf.get(name, 0.0))
                if name in runnable
                else (None, 0.0, 0.0)
            )
            for name in on_knobs
        }
        return AllocationPlan(
            mode=CoordinationMode.TIME,
            p_cap_w=ctx.p_cap_w,
            allocation=_record_allocation(ctx.dynamic_budget_w, decisions),
            slots=slots,
        )


class UtilUnawarePolicy(Policy):
    """Baseline-1: fair split + hardware (RAPL-style) enforcement.

    "It is unaware of the power utilities and equally allocates the
    available power budget to all co-existing applications. We use RAPL
    hardware knob to allocate power." Under a stringent cap it "duty-cycles
    amongst the co-located applications in a fair manner".
    """

    name = "util-unaware"
    needs_learning = False
    uses_esd = False

    def plan(self, ctx: PolicyContext) -> AllocationPlan:
        budget = ctx.dynamic_budget_w
        if budget <= 0:
            return self._idle_plan(ctx)
        share = budget / len(ctx.apps)
        knobs: dict[str, KnobSetting] = {}
        decisions: dict[str, tuple[KnobSetting | None, float, float]] = {}
        feasible = True
        for name in ctx.apps:
            oracle = ctx.oracle[name]
            knob = hardware_enforce(oracle, ctx.config, share)
            if knob is None:
                feasible = False
                break
            idx = oracle.index_of(knob)
            knobs[name] = knob
            decisions[name] = (
                knob,
                float(oracle.power_w[idx]),
                float(oracle.perf[idx] / oracle.perf_nocap),
            )
        if feasible:
            return AllocationPlan(
                mode=CoordinationMode.SPACE,
                p_cap_w=ctx.p_cap_w,
                allocation=_record_allocation(budget, decisions),
                knobs=knobs,
            )
        # Fair alternate duty cycling; the ON app may use the whole budget.
        on_knobs: dict[str, KnobSetting | None] = {}
        rel: dict[str, float] = {}
        for name in ctx.apps:
            oracle = ctx.oracle[name]
            knob = hardware_enforce(oracle, ctx.config, budget)
            on_knobs[name] = knob
            if knob is not None:
                idx = oracle.index_of(knob)
                rel[name] = float(oracle.perf[idx] / oracle.perf_nocap)
        return self._fair_time_plan(ctx, on_knobs, rel)


class ServerResAwarePolicy(Policy):
    """Baseline-2: equal split + population-average resource utilities.

    "It is aware of power utilities of direct resources in a server, but is
    unaware of application-level differences. It uses the resource-level
    power utilities averaged across all applications."
    """

    name = "server+res-aware"
    needs_learning = False
    uses_esd = False

    def plan(self, ctx: PolicyContext) -> AllocationPlan:
        if ctx.population is None:
            raise ConfigurationError(
                "ServerResAwarePolicy needs the population-average surface"
            )
        budget = ctx.dynamic_budget_w
        if budget <= 0:
            return self._idle_plan(ctx)
        # Baseline-2 divides per-resource budgets from averaged utilities but
        # still enforces them through the hardware limit interface, so it
        # pays the same conservative tracking margin as baseline-1.
        share = budget / len(ctx.apps) * (1.0 - ctx.config.rapl_guard_band)
        generic_idx = ctx.population.best_index_under(share)
        knobs: dict[str, KnobSetting] = {}
        decisions: dict[str, tuple[KnobSetting | None, float, float]] = {}
        feasible = generic_idx is not None
        if feasible:
            generic_knob = ctx.population.knobs[generic_idx]
            for name in ctx.apps:
                oracle = ctx.oracle[name]
                knob: KnobSetting | None = generic_knob
                # The generic choice may overdraw for this particular app
                # (the policy cannot know) or lie outside a narrow-group
                # app's knob subset; hardware trims it down the path.
                if (
                    generic_knob not in oracle.knobs
                    or oracle.power_w[oracle.index_of(generic_knob)] > share + 1e-9
                ):
                    knob = hardware_enforce(oracle, ctx.config, share)
                if knob is None:
                    feasible = False
                    break
                idx = oracle.index_of(knob)
                knobs[name] = knob
                decisions[name] = (
                    knob,
                    float(oracle.power_w[idx]),
                    float(oracle.perf[idx] / oracle.perf_nocap),
                )
        if feasible:
            return AllocationPlan(
                mode=CoordinationMode.SPACE,
                p_cap_w=ctx.p_cap_w,
                allocation=_record_allocation(budget, decisions),
                knobs=knobs,
            )
        on_knobs: dict[str, KnobSetting | None] = {}
        rel: dict[str, float] = {}
        full_idx = ctx.population.best_index_under(budget)
        for name in ctx.apps:
            oracle = ctx.oracle[name]
            knob: KnobSetting | None = None
            if full_idx is not None:
                candidate = ctx.population.knobs[full_idx]
                if (
                    candidate in oracle.knobs
                    and oracle.power_w[oracle.index_of(candidate)] <= budget + 1e-9
                ):
                    knob = candidate
            if knob is None:
                knob = hardware_enforce(oracle, ctx.config, budget)
            on_knobs[name] = knob
            if knob is not None:
                idx = oracle.index_of(knob)
                rel[name] = float(oracle.perf[idx] / oracle.perf_nocap)
        return self._fair_time_plan(ctx, on_knobs, rel)


class AppAwarePolicy(Policy):
    """App-level utility awareness without per-resource tuning (R1 only).

    "It uses overall application power utilities to make its allocation, and
    does not tune it any further based on the direct resource utilities of
    individual applications." Budgets come from the knapsack over the
    *hardware throttle path* of each app (the app-level utility curve one
    observes while capping with DVFS-style enforcement); the chosen budgets
    are then enforced along that same path.
    """

    name = "app-aware"
    needs_learning = True
    uses_esd = False

    def __init__(self, *, allocator: PowerAllocator | None = None, share_floor: float = 0.25):
        self._allocator = allocator if allocator is not None else PowerAllocator()
        self._share_floor = share_floor

    def plan(self, ctx: PolicyContext) -> AllocationPlan:
        budget = ctx.dynamic_budget_w
        if budget <= 0:
            return self._idle_plan(ctx)
        # App-Aware presets the throttle-path knob that realizes each
        # share directly (measured open-loop, like the proposed schemes),
        # so it does not pay the RAPL tracking margin - its only handicap
        # versus App+Res-Aware is the utility-blind knob mix within an app.
        path_sets = {
            name: _path_candidates(ctx.estimates[name], ctx.config) for name in ctx.apps
        }
        allocation = self._allocator.allocate(
            path_sets, budget, weights=ctx.trust_weights
        )
        if not allocation.excluded:
            knobs = {n: a.knob for n, a in allocation.apps.items()}
            return AllocationPlan(
                mode=CoordinationMode.SPACE,
                p_cap_w=ctx.p_cap_w,
                allocation=allocation,
                knobs=knobs,
            )
        on_knobs: dict[str, KnobSetting | None] = {}
        rel: dict[str, float] = {}
        for name in ctx.apps:
            cset = path_sets[name]
            idx = cset.best_index_under(budget)
            on_knobs[name] = cset.knobs[idx] if idx is not None else None
            if idx is not None:
                rel[name] = float(cset.perf[idx] / cset.perf_nocap)
        return self._weighted_time_plan(
            ctx, on_knobs, rel, share_floor=self._share_floor
        )


class AppResAwarePolicy(Policy):
    """The paper's full spatial proposal (R1 + R2).

    "It partitions power allocated to each application and recursively down
    to each of its physical resources" - the exact multiple-choice knapsack
    over every application's Pareto frontier of (f, n, m) settings.
    """

    name = "app+res-aware"
    needs_learning = True
    uses_esd = False

    def __init__(self, *, allocator: PowerAllocator | None = None, share_floor: float = 0.25):
        self._allocator = allocator if allocator is not None else PowerAllocator()
        self._share_floor = share_floor

    def plan(self, ctx: PolicyContext) -> AllocationPlan:
        budget = ctx.dynamic_budget_w
        if budget <= 0:
            return self._idle_plan(ctx)
        allocation = self._allocator.allocate(
            {n: ctx.estimates[n] for n in ctx.apps}, budget, weights=ctx.trust_weights
        )
        if not allocation.excluded:
            knobs = {n: a.knob for n, a in allocation.apps.items()}
            return AllocationPlan(
                mode=CoordinationMode.SPACE,
                p_cap_w=ctx.p_cap_w,
                allocation=allocation,
                knobs=knobs,
            )
        on_knobs: dict[str, KnobSetting | None] = {}
        rel: dict[str, float] = {}
        for name in ctx.apps:
            cset = ctx.estimates[name]
            idx = cset.best_index_under(budget)
            on_knobs[name] = cset.knobs[idx] if idx is not None else None
            if idx is not None:
                rel[name] = float(cset.perf[idx] / cset.perf_nocap)
        return self._weighted_time_plan(
            ctx, on_knobs, rel, share_floor=self._share_floor
        )


class AppResEsdAwarePolicy(Policy):
    """R1 + R2 + R4: consolidated OFF/ON duty cycling with the battery.

    "Either all applications run at the same time (amortizing P_cm), or none
    of them do (incurring no P_cm)... this scheme uses the ESD to supplement
    the draw during the ON-period, which is banked during the previous
    OFF-period."
    """

    name = "app+res+esd-aware"
    needs_learning = True
    uses_esd = True

    def __init__(self, *, allocator: PowerAllocator | None = None):
        self._allocator = allocator if allocator is not None else PowerAllocator()

    def plan(self, ctx: PolicyContext) -> AllocationPlan:
        if ctx.battery is None:
            raise ConfigurationError("AppResEsdAwarePolicy needs a battery in context")
        budget = ctx.dynamic_budget_w
        estimates = {n: ctx.estimates[n] for n in ctx.apps}
        if budget > 0:
            allocation = self._allocator.allocate(
                estimates, budget, weights=ctx.trust_weights
            )
            if not allocation.excluded:
                # Space coordination suffices; the battery stays idle (the
                # paper: "the servers use the ESD only during periods of
                # very stringent power cap").
                knobs = {n: a.knob for n, a in allocation.apps.items()}
                return AllocationPlan(
                    mode=CoordinationMode.SPACE,
                    p_cap_w=ctx.p_cap_w,
                    allocation=allocation,
                    knobs=knobs,
                )
        # Consolidated duty cycling: choose ON-phase knobs under the relaxed
        # budget the battery can physically supplement.
        cfg = ctx.config
        relaxed = (
            ctx.p_cap_w
            - cfg.p_idle_w
            - cfg.p_cm_w
            + ctx.battery.max_discharge_w
        )
        if relaxed <= 0 or ctx.p_cap_w <= cfg.p_idle_w:
            return self._idle_plan(ctx)
        allocation = self._allocator.allocate(
            estimates, relaxed, weights=ctx.trust_weights
        )
        included = allocation.included
        if not included:
            return self._idle_plan(ctx)
        knobs = {n: allocation.apps[n].knob for n in included}
        sum_app_w = allocation.total_power_w
        cycle = compute_duty_cycle(
            p_idle_w=cfg.p_idle_w,
            p_cm_w=cfg.p_cm_w,
            sum_app_w=sum_app_w,
            p_cap_w=ctx.p_cap_w,
            efficiency=ctx.battery.efficiency,
            period_s=cfg.duty_cycle_period_s,
        )
        return AllocationPlan(
            mode=CoordinationMode.ESD,
            p_cap_w=ctx.p_cap_w,
            allocation=allocation,
            knobs=knobs,
            duty_cycle=cycle,
        )


def make_policy(name: str) -> Policy:
    """Instantiate a policy by its paper name.

    Raises:
        ConfigurationError: for unknown names (listing :data:`POLICY_NAMES`).
    """
    factories: dict[str, type[Policy]] = {
        "util-unaware": UtilUnawarePolicy,
        "server+res-aware": ServerResAwarePolicy,
        "app-aware": AppAwarePolicy,
        "app+res-aware": AppResAwarePolicy,
        "app+res+esd-aware": AppResEsdAwarePolicy,
    }
    try:
        return factories[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; available: {POLICY_NAMES}"
        ) from None
