"""The paper's contribution: mediating power struggles on a shared server.

This package implements the Fig. 6 system architecture:

* **App utilities** (:mod:`~repro.core.utility` + :mod:`repro.learning`) -
  application- and resource-level power utility curves, learnt online;
* **PowerAllocator** (:mod:`~repro.core.allocator`) - apportions the server
  power budget across applications (R1) and recursively across each
  application's direct resources (R2);
* **Coordinator** (:mod:`~repro.core.coordinator`) - coordinates power draw
  in space (R3a), in time (R3b), and in space+time with energy storage (R4);
* **Accountant** (:mod:`~repro.core.accountant`) - tracks the cap, the
  scheduled applications and their status; detects events E1-E4 and triggers
  re-allocation/re-calibration;
* **Policies** (:mod:`~repro.core.policies`) - the paper's evaluated
  schemes: Util-Unaware, Server+Res-Aware, App-Aware, App+Res-Aware and
  App+Res+ESD-Aware;
* **PowerMediator** (:mod:`~repro.core.mediator`) - the top-level framework
  object tying everything to a :class:`~repro.server.server.SimulatedServer`;
* **Experiment drivers** (:mod:`~repro.core.simulation`) - steady-state and
  dynamic experiment harnesses used by the benchmarks.
"""

from repro.core.events import (
    Event,
    CapChangeEvent,
    ArrivalEvent,
    DepartureEvent,
    PhaseChangeEvent,
)
from repro.core.utility import (
    UtilityCurve,
    app_utility_curve,
    resource_marginal_utilities,
    pareto_envelope,
    CandidateSet,
)
from repro.core.allocator import PowerAllocator, Allocation, AppAllocation
from repro.core.coordinator import Coordinator, CoordinationMode, AllocationPlan, TimeSlot
from repro.core.policies import (
    Policy,
    UtilUnawarePolicy,
    ServerResAwarePolicy,
    AppAwarePolicy,
    AppResAwarePolicy,
    AppResEsdAwarePolicy,
    make_policy,
    POLICY_NAMES,
)
from repro.core.accountant import Accountant
from repro.core.mediator import PowerMediator
from repro.core.simulation import (
    MixExperimentResult,
    DynamicExperimentResult,
    run_mix_experiment,
    run_policy_comparison,
    run_dynamic_experiment,
)

__all__ = [
    "Event",
    "CapChangeEvent",
    "ArrivalEvent",
    "DepartureEvent",
    "PhaseChangeEvent",
    "UtilityCurve",
    "app_utility_curve",
    "resource_marginal_utilities",
    "pareto_envelope",
    "CandidateSet",
    "PowerAllocator",
    "Allocation",
    "AppAllocation",
    "Coordinator",
    "CoordinationMode",
    "AllocationPlan",
    "TimeSlot",
    "Policy",
    "UtilUnawarePolicy",
    "ServerResAwarePolicy",
    "AppAwarePolicy",
    "AppResAwarePolicy",
    "AppResEsdAwarePolicy",
    "make_policy",
    "POLICY_NAMES",
    "Accountant",
    "PowerMediator",
    "MixExperimentResult",
    "DynamicExperimentResult",
    "run_mix_experiment",
    "run_policy_comparison",
    "run_dynamic_experiment",
]
