"""Cross-cutting utilities shared by otherwise unrelated subsystems."""

from repro.util.retry import RetryPolicy

__all__ = ["RetryPolicy"]
