"""One retry policy, two call sites.

The mediator's actuation retrier (PR 1) and the cluster control plane's RPC
layer both need the same discipline: retry a failed operation after a
capped, exponentially growing number of ticks, give up after a bounded
number of attempts, and - when many independent retriers share a medium -
decorrelate them with seeded jitter. :class:`RetryPolicy` is that policy as
dumb data; the callers own the clocks and the pending-work bookkeeping.

Backoff is the classic ``base * 2^(attempt-1)`` capped at
``max_backoff_ticks``. Jitter, when enabled, adds a uniform integer draw
from ``[0, jitter_ticks]`` taken from the *caller's* generator, so a run's
retry timing is a pure function of its seed (the determinism contract every
subsystem in this package honours). With ``jitter_ticks=0`` the schedule is
exactly the pre-refactor actuation sequence: 1, 2, 4, 8, ... ticks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, RetryExhaustedError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with optional seeded jitter.

    Attributes:
        base_ticks: Delay before the first retry (attempt 1).
        max_backoff_ticks: Ceiling on the exponential component.
        max_attempts: Attempts (initial try included) before
            :meth:`exhausted` reports the caller should escalate or park.
        jitter_ticks: Upper bound (inclusive) of the uniform jitter added
            to every delay; 0 disables jitter entirely (no RNG draw, so
            enabling jitter never perturbs an unrelated RNG stream).
        deadline_ticks: Total tick budget across *all* attempts, measured
            by the caller from the first try; ``None`` (the default) keeps
            the historical attempts-only behaviour. With a deadline set,
            :meth:`backoff_ticks` never schedules a retry past it and
            :meth:`exhausted` reports spent once the elapsed time reaches
            it — capped per-attempt backoff alone can otherwise overshoot
            any caller-intended total bound (e.g. a lease that expires
            while attempt 4 is still backing off).
    """

    base_ticks: int = 1
    max_backoff_ticks: int = 64
    max_attempts: int = 4
    jitter_ticks: int = 0
    deadline_ticks: int | None = None

    def __post_init__(self) -> None:
        if self.base_ticks < 1:
            raise ConfigurationError("retry base_ticks must be >= 1")
        if self.max_backoff_ticks < self.base_ticks:
            raise ConfigurationError(
                "retry max_backoff_ticks must be >= base_ticks"
            )
        if self.max_attempts < 1:
            raise ConfigurationError("retry max_attempts must be >= 1")
        if self.jitter_ticks < 0:
            raise ConfigurationError("retry jitter_ticks must be non-negative")
        if self.deadline_ticks is not None and self.deadline_ticks < 1:
            raise ConfigurationError("retry deadline_ticks must be >= 1")

    def backoff_ticks(
        self,
        attempt: int,
        rng: np.random.Generator | None = None,
        *,
        elapsed_ticks: int | None = None,
    ) -> int:
        """Delay before the retry following failed attempt ``attempt`` (>= 1).

        Args:
            attempt: How many attempts have completed (1 = the initial try).
            rng: Generator for the jitter draw; required when
                ``jitter_ticks > 0`` so the caller controls determinism.
            elapsed_ticks: Ticks spent since the first try; when the policy
                carries a deadline, the returned delay is clamped so the
                retry lands on or before it (never below one tick). The
                jitter draw is taken regardless, so enabling a deadline
                never shifts a seeded RNG stream.
        """
        if attempt < 1:
            raise ConfigurationError(f"retry attempt must be >= 1, got {attempt}")
        delay = min(self.max_backoff_ticks, self.base_ticks * 2 ** (attempt - 1))
        if self.jitter_ticks > 0:
            if rng is None:
                raise ConfigurationError(
                    "a jittered RetryPolicy needs the caller's rng"
                )
            delay += int(rng.integers(0, self.jitter_ticks + 1))
        if self.deadline_ticks is not None and elapsed_ticks is not None:
            delay = min(delay, max(1, self.deadline_ticks - elapsed_ticks))
        return delay

    def exhausted(
        self, attempts: int, elapsed_ticks: int | None = None
    ) -> bool:
        """Whether the attempt count or the total deadline is used up.

        Args:
            attempts: Completed tries so far.
            elapsed_ticks: Ticks since the first try; only consulted when
                the policy carries a ``deadline_ticks`` budget.
        """
        if attempts >= self.max_attempts:
            return True
        return (
            self.deadline_ticks is not None
            and elapsed_ticks is not None
            and elapsed_ticks >= self.deadline_ticks
        )

    def require(
        self, attempts: int, elapsed_ticks: int | None = None, *, what: str
    ) -> None:
        """Raise :class:`RetryExhaustedError` when the budget is spent.

        The single-line message names the operation (``what``) and which
        budget ran out, so degrade-gracefully callers can count/log it
        before parking the work.
        """
        if attempts >= self.max_attempts:
            raise RetryExhaustedError(
                f"{what}: retry attempts exhausted "
                f"({attempts}/{self.max_attempts})"
            )
        if (
            self.deadline_ticks is not None
            and elapsed_ticks is not None
            and elapsed_ticks >= self.deadline_ticks
        ):
            raise RetryExhaustedError(
                f"{what}: retry deadline exhausted "
                f"({elapsed_ticks}/{self.deadline_ticks} ticks)"
            )
