"""repro: a reproduction of "Mediating Power Struggles on a Shared Server"
(Narayanan & Sivasubramaniam, ISPASS 2020).

Power is an *indirectly shared* resource on a consolidated server: even when
co-located applications own disjoint cores, caches and DIMMs, they contend
for the watts under the server's power cap. This package implements the
paper's full system on a simulated substrate with the same control surface
as the authors' Linux/Xeon platform:

* :mod:`repro.server` - the simulated dual-socket server (Table I): power
  and performance models, RAPL, heartbeats, DVFS/taskset/DRAM knobs, sleep
  states, and the discrete-time engine;
* :mod:`repro.workloads` - the twelve evaluation applications, Table II
  mixes, dynamic arrival schedules, and cluster demand traces;
* :mod:`repro.learning` - the online utility learning (sparse sampling +
  collaborative filtering);
* :mod:`repro.esd` - the Lead-Acid battery model and the Eq. (5) duty-cycle
  controller;
* :mod:`repro.core` - the contribution: PowerAllocator (R1+R2), Coordinator
  (R3+R4), Accountant (E1-E4), the five evaluated policies, and the
  PowerMediator framework;
* :mod:`repro.cluster` - the 10-server peak-shaving evaluation (Fig. 12);
* :mod:`repro.analysis` - metric aggregation and report formatting.

Quickstart::

    from repro import SimulatedServer, PowerMediator, make_policy, get_mix

    server = SimulatedServer()
    mediator = PowerMediator(server, make_policy("app+res-aware"), p_cap_w=100.0)
    for profile in get_mix(10).profiles():
        mediator.add_application(profile)
    mediator.run_for(60.0)
    print(mediator.server_objective())
"""

from repro.errors import (
    ReproError,
    ConfigurationError,
    KnobError,
    PowerBudgetError,
    BatteryError,
    LearningError,
    SchedulingError,
    SimulationError,
)
from repro.server import (
    ServerConfig,
    KnobSetting,
    DEFAULT_SERVER_CONFIG,
    SimulatedServer,
    PerformanceModel,
    PowerModel,
)
from repro.workloads import (
    WorkloadProfile,
    CATALOG,
    get_application,
    MIXES,
    Mix,
    get_mix,
    ArrivalSchedule,
    PhasedProfile,
    ClusterPowerTrace,
    peak_shaving_caps,
)
from repro.esd import LeadAcidBattery, EsdController, DutyCycle, compute_duty_cycle
from repro.learning import (
    PreferenceMatrix,
    CollaborativeEstimator,
    StratifiedSampler,
    RandomSampler,
    calibrate_sampling_fraction,
)
from repro.core import (
    PowerAllocator,
    Allocation,
    Coordinator,
    CoordinationMode,
    AllocationPlan,
    Policy,
    make_policy,
    POLICY_NAMES,
    Accountant,
    PowerMediator,
    CandidateSet,
    app_utility_curve,
    resource_marginal_utilities,
    run_mix_experiment,
    run_policy_comparison,
    run_dynamic_experiment,
)
from repro.cluster import ClusterSimulator, CLUSTER_POLICY_NAMES

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "KnobError",
    "PowerBudgetError",
    "BatteryError",
    "LearningError",
    "SchedulingError",
    "SimulationError",
    # server
    "ServerConfig",
    "KnobSetting",
    "DEFAULT_SERVER_CONFIG",
    "SimulatedServer",
    "PerformanceModel",
    "PowerModel",
    # workloads
    "WorkloadProfile",
    "CATALOG",
    "get_application",
    "MIXES",
    "Mix",
    "get_mix",
    "ArrivalSchedule",
    "PhasedProfile",
    "ClusterPowerTrace",
    "peak_shaving_caps",
    # esd
    "LeadAcidBattery",
    "EsdController",
    "DutyCycle",
    "compute_duty_cycle",
    # learning
    "PreferenceMatrix",
    "CollaborativeEstimator",
    "StratifiedSampler",
    "RandomSampler",
    "calibrate_sampling_fraction",
    # core
    "PowerAllocator",
    "Allocation",
    "Coordinator",
    "CoordinationMode",
    "AllocationPlan",
    "Policy",
    "make_policy",
    "POLICY_NAMES",
    "Accountant",
    "PowerMediator",
    "CandidateSet",
    "app_utility_curve",
    "resource_marginal_utilities",
    "run_mix_experiment",
    "run_policy_comparison",
    "run_dynamic_experiment",
    # cluster
    "ClusterSimulator",
    "CLUSTER_POLICY_NAMES",
]
