"""Workload models: profiles, the paper's application catalog, mixes, and traces.

The paper evaluates on real benchmarks (MineBench, GAP, STREAM, PARSEC). We do not
have those binaries or the authors' hardware, so this package models each
application as an analytic *power-performance response surface* over the knob
space ``(f, n, m)`` - exactly the information the paper's policies consume. See
``DESIGN.md`` section 2 for the substitution rationale.

Public API:

* :class:`~repro.workloads.profiles.WorkloadProfile` - the response-surface
  parameterization of one application.
* :data:`~repro.workloads.catalog.CATALOG` - the twelve paper applications.
* :data:`~repro.workloads.mixes.MIXES` - the fifteen two-application mixes of
  Table II.
* :class:`~repro.workloads.generator.ArrivalSchedule` - dynamic arrivals and
  departures (Section IV-C of the paper).
* :class:`~repro.workloads.traces.ClusterPowerTrace` - diurnal cluster power
  traces and peak-shaving caps (Fig. 12a).
"""

from repro.workloads.profiles import WorkloadProfile, WORKLOAD_CLASSES
from repro.workloads.catalog import CATALOG, get_application, application_names
from repro.workloads.mixes import MIXES, Mix, get_mix
from repro.workloads.generator import ArrivalEvent, ArrivalSchedule, PhasedProfile
from repro.workloads.population import BurstWindow, ClientOffer, OpenLoopPopulation
from repro.workloads.traces import ClusterPowerTrace, peak_shaving_caps

__all__ = [
    "WorkloadProfile",
    "WORKLOAD_CLASSES",
    "CATALOG",
    "get_application",
    "application_names",
    "MIXES",
    "Mix",
    "get_mix",
    "ArrivalEvent",
    "ArrivalSchedule",
    "BurstWindow",
    "ClientOffer",
    "OpenLoopPopulation",
    "PhasedProfile",
    "ClusterPowerTrace",
    "peak_shaving_caps",
]
