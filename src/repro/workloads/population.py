"""Open-loop client populations: indefinite, diurnally modulated arrivals.

:class:`~repro.workloads.generator.ArrivalSchedule` is *closed*: a finite,
pre-materialized list for a fixed horizon. The service mode needs the
opposite - an **open-loop** offered-load process that keeps producing
arrivals for as long as the service runs, at a rate the service cannot
influence (clients do not slow down because the mediator is busy; that is
exactly what makes backpressure necessary).

:class:`OpenLoopPopulation` draws an inhomogeneous Poisson process by
thinning: candidates arrive at the peak rate, and each survives with
probability ``rate(t) / rate_max`` where ``rate(t)`` layers a diurnal
sinusoid and configured burst windows (overload episodes) over the base
rate. Every accepted offer is attributed to one of ``clients`` simulated
client sessions, round-robin by RNG, so session-level delivery and replay
can be exercised.

The generator is incremental and checkpointable: :meth:`pull_due` advances
an internal cursor, and :meth:`state_dict` / :meth:`load_state_dict`
capture the RNG stream, cursor, and the one look-ahead candidate - so a
service restored from a checkpoint regenerates the *identical* future
offer stream, which is what makes crash recovery replay-exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.catalog import CATALOG
from repro.workloads.profiles import WorkloadProfile

__all__ = ["BurstWindow", "ClientOffer", "OpenLoopPopulation"]


@dataclass(frozen=True)
class BurstWindow:
    """A transient rate multiplier - the overload episodes of a chaos soak."""

    start_s: float
    end_s: float
    multiplier: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.start_s) and self.start_s >= 0):
            raise ConfigurationError(
                f"burst start must be finite and non-negative, got {self.start_s!r}"
            )
        if not (math.isfinite(self.end_s) and self.end_s > self.start_s):
            raise ConfigurationError("burst window must end after it starts")
        if not (math.isfinite(self.multiplier) and self.multiplier >= 1.0):
            raise ConfigurationError(
                f"burst multiplier must be >= 1, got {self.multiplier!r}"
            )

    def to_dict(self) -> dict:
        return {"start_s": self.start_s, "end_s": self.end_s, "multiplier": self.multiplier}


@dataclass(frozen=True)
class ClientOffer:
    """One offered arrival: a client asks the service to run a job."""

    time_s: float
    client: int
    profile: WorkloadProfile

    def to_dict(self) -> dict:
        return {
            "time_s": self.time_s,
            "client": self.client,
            "profile": self.profile.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClientOffer":
        return cls(
            time_s=float(data["time_s"]),
            client=int(data["client"]),
            profile=WorkloadProfile.from_dict(data["profile"]),
        )


class OpenLoopPopulation:
    """Inhomogeneous Poisson offers from a simulated client population.

    Args:
        base_rate_per_s: Mean offered rate away from bursts, at the diurnal
            midline.
        clients: Number of client sessions offers are attributed to.
        seed: RNG seed; the whole offer stream is a pure function of it.
        diurnal_amplitude: Relative swing of the diurnal sinusoid in
            ``[0, 1)``; 0 disables modulation.
        diurnal_period_s: Period of the sinusoid (a "day" in sim seconds).
        bursts: Overload windows, each multiplying the instantaneous rate.
        names: Catalog applications to draw from (default: whole catalog).
        work_scale: Factor applied to each drawn profile's ``total_work``,
            so service jobs finish (and depart) on service-soak timescales.
    """

    def __init__(
        self,
        *,
        base_rate_per_s: float,
        clients: int = 8,
        seed: int = 0,
        diurnal_amplitude: float = 0.0,
        diurnal_period_s: float = 600.0,
        bursts: tuple[BurstWindow, ...] = (),
        names: list[str] | None = None,
        work_scale: float = 1.0,
    ) -> None:
        if not (math.isfinite(base_rate_per_s) and base_rate_per_s > 0):
            raise ConfigurationError(
                f"base rate must be finite and positive, got {base_rate_per_s!r}"
            )
        if clients < 1:
            raise ConfigurationError(f"need at least one client, got {clients}")
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ConfigurationError(
                f"diurnal amplitude must be in [0, 1), got {diurnal_amplitude!r}"
            )
        if not (math.isfinite(diurnal_period_s) and diurnal_period_s > 0):
            raise ConfigurationError(
                f"diurnal period must be finite and positive, got {diurnal_period_s!r}"
            )
        if not (math.isfinite(work_scale) and work_scale > 0):
            raise ConfigurationError(
                f"work scale must be finite and positive, got {work_scale!r}"
            )
        self._pool = sorted(names) if names else sorted(CATALOG)
        for name in self._pool:
            if name not in CATALOG:
                raise ConfigurationError(f"unknown application {name!r} in pool")
        self.base_rate_per_s = float(base_rate_per_s)
        self.clients = int(clients)
        self.seed = int(seed)
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.diurnal_period_s = float(diurnal_period_s)
        self.bursts = tuple(sorted(bursts, key=lambda b: b.start_s))
        self.work_scale = float(work_scale)
        peak_burst = max((b.multiplier for b in self.bursts), default=1.0)
        self._rate_max = self.base_rate_per_s * (1.0 + self.diurnal_amplitude) * peak_burst
        self._rng = np.random.default_rng(self.seed)
        self._t = 0.0  # time of the last accepted candidate
        self._index = 0  # offers generated so far (job-name suffix)
        self._pending: ClientOffer | None = None  # look-ahead past `now_s`
        # Pull-cursor monotonicity guard only; deliberately not checkpointed
        # (a restored population restarts the guard, not the stream).
        self._last_pull_s = -math.inf

    # ------------------------------------------------------------- the rate

    def rate_at(self, t_s: float) -> float:
        """Instantaneous offered rate: base x diurnal x burst multipliers."""
        diurnal = 1.0 + self.diurnal_amplitude * math.sin(
            2.0 * math.pi * t_s / self.diurnal_period_s
        )
        burst = 1.0
        for window in self.bursts:
            if window.start_s <= t_s < window.end_s:
                burst = max(burst, window.multiplier)
        return self.base_rate_per_s * diurnal * burst

    # ----------------------------------------------------------- generation

    def _draw_offer(self) -> ClientOffer:
        t = self._t
        while True:  # thinning: candidates at rate_max, accept at rate(t)/rate_max
            t += float(self._rng.exponential(1.0 / self._rate_max))
            if float(self._rng.random()) * self._rate_max <= self.rate_at(t):
                break
        self._t = t
        client = int(self._rng.integers(self.clients))
        base = CATALOG[self._pool[int(self._rng.integers(len(self._pool)))]]
        profile = WorkloadProfile.from_dict(
            {
                **base.to_dict(),
                "name": f"{base.name}#c{client}j{self._index}",
                "total_work": base.total_work * self.work_scale,
            }
        )
        self._index += 1
        return ClientOffer(time_s=t, client=client, profile=profile)

    def pull_due(self, now_s: float) -> list[ClientOffer]:
        """Offers with ``time_s <= now_s`` not yet pulled, in time order.

        Open-loop: the stream never exhausts; each call advances the cursor
        exactly to ``now_s`` and the first over-the-horizon candidate waits
        in the look-ahead slot for the next call.
        """
        if not math.isfinite(now_s):
            raise ConfigurationError(f"pull_due time must be finite, got {now_s!r}")
        if now_s < self._last_pull_s:
            raise ConfigurationError(
                f"pull_due time went backwards: {now_s!r} after {self._last_pull_s!r}"
            )
        self._last_pull_s = now_s
        due: list[ClientOffer] = []
        while True:
            if self._pending is None:
                self._pending = self._draw_offer()
            if self._pending.time_s > now_s:
                return due
            due.append(self._pending)
            self._pending = None

    # ----------------------------------------------------------- checkpoint

    def state_dict(self) -> dict:
        """Everything needed to resume the identical offer stream."""
        return {
            "rng": self._rng.bit_generator.state,
            "t": self._t,
            "index": self._index,
            "pending": None if self._pending is None else self._pending.to_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        self._t = float(state["t"])
        self._index = int(state["index"])
        pending = state.get("pending")
        self._pending = None if pending is None else ClientOffer.from_dict(pending)
        self._last_pull_s = -math.inf  # the restored run re-pulls from its own clock
