"""Cluster power traces and peak-shaving caps (Fig. 12a substrate).

The paper replays dynamic cluster power caps derived from a publicly
available trace of connection-intensive internet services (Chen et al.,
NSDI'08) to shave 15%, 30% and 45% of the cluster's peak draw. We do not
have that proprietary trace, so :class:`ClusterPowerTrace` *generates* one
with the same structure the paper relies on: a strong diurnal cycle (login
traffic peaks in the evening, troughs before dawn), a weekday/weekend
modulation, and short-term noise. Peak shaving then derives the dynamic cap
series: the cluster may draw the forecast demand, but never more than
``(1 - shave) * peak``.

Only the *shape* matters for the experiment - what fraction of time the cap
binds, and how deeply - and that is set by the diurnal swing, which we match
to the published characterization of the NSDI'08 trace (trough around 55% of
peak).
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ClusterPowerTrace:
    """A demand trace for a cluster, in watts, on a fixed time grid.

    Attributes:
        step_s: Seconds between samples.
        demand_w: Demand samples (uncapped cluster draw if unconstrained).
    """

    step_s: float
    demand_w: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.step_s <= 0:
            raise ConfigurationError("step_s must be positive")
        if not self.demand_w:
            raise ConfigurationError("trace must have at least one sample")
        if any(v < 0 for v in self.demand_w):
            raise ConfigurationError("demand cannot be negative")

    @property
    def duration_s(self) -> float:
        return self.step_s * len(self.demand_w)

    @property
    def peak_w(self) -> float:
        return max(self.demand_w)

    @property
    def trough_w(self) -> float:
        return min(self.demand_w)

    def at(self, time_s: float) -> float:
        """Demand at ``time_s`` (zero-order hold; clamped to the trace)."""
        if time_s < 0:
            raise ConfigurationError("time must be non-negative")
        idx = min(int(time_s / self.step_s), len(self.demand_w) - 1)
        return self.demand_w[idx]

    def to_csv(self, path: str | os.PathLike) -> None:
        """Write the trace as ``time_s,demand_w`` rows (with a header).

        The format round-trips through :meth:`from_csv` and is trivially
        produced from any facility's power telemetry export.
        """
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time_s", "demand_w"])
            for i, demand in enumerate(self.demand_w):
                writer.writerow([i * self.step_s, demand])

    @classmethod
    def from_csv(cls, path: str | os.PathLike) -> "ClusterPowerTrace":
        """Load a trace written by :meth:`to_csv` (or any uniform-step
        ``time_s,demand_w`` CSV - replaying real facility telemetry is the
        point of the cluster experiments).

        Raises:
            ConfigurationError: on empty files or non-uniform time steps.
        """
        times: list[float] = []
        demands: list[float] = []
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                raise ConfigurationError(f"{path}: empty trace file")
            for row in reader:
                if not row:
                    continue
                times.append(float(row[0]))
                demands.append(float(row[1]))
        if len(demands) < 2:
            raise ConfigurationError(f"{path}: need at least two samples")
        steps = np.diff(times)
        if not np.allclose(steps, steps[0], rtol=1e-6):
            raise ConfigurationError(f"{path}: time steps are not uniform")
        return cls(step_s=float(steps[0]), demand_w=tuple(demands))

    @classmethod
    def synthetic_diurnal(
        cls,
        *,
        peak_w: float,
        days: float = 1.0,
        step_s: float = 60.0,
        trough_fraction: float = 0.55,
        noise_fraction: float = 0.02,
        peakedness: float = 2.5,
        seed: int = 0,
    ) -> "ClusterPowerTrace":
        """Generate a connection-intensive-service-shaped demand trace.

        The shape is a fundamental daily sinusoid peaking at 21:00 plus a
        second harmonic (the characteristic mid-day shoulder of messenger
        /login traffic), normalized, *peaked* by an exponent (connection
        -intensive services spend most of the day well below peak, with a
        pronounced evening spike), scaled into ``[trough, peak]``, and
        perturbed with multiplicative gaussian noise.

        Args:
            peak_w: Peak demand (e.g. 10 servers x 130 W = 1300 W).
            days: Trace length in days.
            step_s: Sample spacing.
            trough_fraction: Overnight trough as a fraction of peak.
            noise_fraction: Relative noise standard deviation.
            peakedness: Exponent on the normalized shape; 1.0 is a plain
                sinusoid, larger values concentrate time near the trough.
            seed: RNG seed.
        """
        if peak_w <= 0:
            raise ConfigurationError("peak_w must be positive")
        if not 0.0 < trough_fraction < 1.0:
            raise ConfigurationError("trough_fraction must be in (0, 1)")
        if days <= 0:
            raise ConfigurationError("days must be positive")
        if noise_fraction < 0:
            raise ConfigurationError("noise_fraction must be non-negative")
        if peakedness <= 0:
            raise ConfigurationError("peakedness must be positive")
        rng = np.random.default_rng(seed)
        n = max(2, int(round(days * 86400.0 / step_s)))
        t = np.arange(n) * step_s
        hours = (t / 3600.0) % 24.0
        # Fundamental peaking at 21:00 plus a 12 h harmonic for the mid-day
        # shoulder; combined shape normalized into [0, 1].
        fundamental = np.cos(2.0 * np.pi * (hours - 21.0) / 24.0)
        shoulder = 0.35 * np.cos(2.0 * np.pi * (hours - 14.0) / 12.0)
        shape = fundamental + shoulder
        shape = (shape - shape.min()) / (shape.max() - shape.min())
        shape = shape**peakedness
        demand = peak_w * (trough_fraction + (1.0 - trough_fraction) * shape)
        if noise_fraction > 0:
            demand = demand * (1.0 + rng.normal(0.0, noise_fraction, size=n))
        demand = np.clip(demand, 0.0, peak_w)
        return cls(step_s=step_s, demand_w=tuple(float(v) for v in demand))


def peak_shaving_caps(trace: ClusterPowerTrace, shave_fraction: float) -> ClusterPowerTrace:
    """Dynamic cap series for shaving ``shave_fraction`` of the trace's peak.

    The cap at each instant is ``min(demand, (1 - shave) * peak)`` - the
    cluster follows its demand while below the shaved ceiling and is capped
    during peak periods (Fig. 12a's plateaus).

    Raises:
        ConfigurationError: unless ``0 <= shave_fraction < 1``.
    """
    if not 0.0 <= shave_fraction < 1.0:
        raise ConfigurationError(
            f"shave_fraction must be in [0, 1), got {shave_fraction}"
        )
    ceiling = (1.0 - shave_fraction) * trace.peak_w
    capped = tuple(min(v, ceiling) for v in trace.demand_w)
    return ClusterPowerTrace(step_s=trace.step_s, demand_w=capped)
