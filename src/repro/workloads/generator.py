"""Dynamic workload generation: arrivals, departures, and phase changes.

Section IV-C of the paper evaluates the framework under dynamics: an
application arriving mid-run (event E2, Fig. 11a), departing on completion
(event E3, Fig. 11b), and changing phase internally (event E4). This module
provides the workload-side machinery for those experiments:

* :class:`ArrivalEvent` / :class:`ArrivalSchedule` - a time-ordered list of
  admissions (with optional forced departures for open-ended apps), plus a
  Poisson generator for randomized cluster-scale runs;
* :class:`PhasedProfile` - a workload whose response surface changes at given
  progress fractions, driving E4 re-calibrations.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.catalog import CATALOG
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class ArrivalEvent:
    """One scheduled admission.

    Attributes:
        time_s: Arrival time.
        profile: The application to admit. Its ``total_work`` governs the
            natural departure; ``forced_departure_s`` (if set) removes it
            earlier regardless of progress (e.g. a cancelled job).
        forced_departure_s: Optional absolute removal time.
    """

    time_s: float
    profile: WorkloadProfile
    forced_departure_s: float | None = None

    def __post_init__(self) -> None:
        # A bare ``< 0`` check lets NaN through (every comparison against
        # NaN is False), and a NaN time silently breaks the schedule's sort
        # order - so demand finiteness explicitly.
        if not math.isfinite(self.time_s):
            raise ConfigurationError(f"arrival time must be finite, got {self.time_s!r}")
        if self.time_s < 0:
            raise ConfigurationError("arrival time must be non-negative")
        if self.forced_departure_s is not None:
            if not math.isfinite(self.forced_departure_s):
                raise ConfigurationError(
                    f"forced departure must be finite, got {self.forced_departure_s!r}"
                )
            if self.forced_departure_s <= self.time_s:
                raise ConfigurationError("forced departure must follow the arrival")


@dataclass
class ArrivalSchedule:
    """A time-ordered collection of :class:`ArrivalEvent`.

    Construction sorts events by time; :meth:`pop_due` yields them to the
    simulation driver as the clock passes each arrival.
    """

    events: list[ArrivalEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events.sort(key=lambda e: e.time_s)
        self._cursor = 0

    def __len__(self) -> int:
        return len(self.events)

    @property
    def exhausted(self) -> bool:
        """``True`` when every event has been popped."""
        return self._cursor >= len(self.events)

    def pop_due(self, now_s: float) -> list[ArrivalEvent]:
        """Events with ``time_s <= now_s`` not yet delivered, in order."""
        due: list[ArrivalEvent] = []
        while self._cursor < len(self.events) and self.events[self._cursor].time_s <= now_s:
            due.append(self.events[self._cursor])
            self._cursor += 1
        return due

    def reset(self) -> None:
        """Rewind delivery (for replaying the same schedule)."""
        self._cursor = 0

    def next_time_s(self) -> float | None:
        """Time of the next undelivered event, or ``None``."""
        if self.exhausted:
            return None
        return self.events[self._cursor].time_s

    @classmethod
    def poisson(
        cls,
        *,
        rate_per_s: float,
        horizon_s: float,
        seed: int = 0,
        names: list[str] | None = None,
        unique_suffixes: bool = True,
    ) -> "ArrivalSchedule":
        """Random schedule: Poisson arrivals of uniformly-drawn catalog apps.

        Args:
            rate_per_s: Mean arrivals per second.
            horizon_s: Schedule length.
            seed: RNG seed (deterministic schedules for experiments).
            names: Catalog names to draw from (defaults to the whole catalog).
            unique_suffixes: Suffix each instance (``kmeans#3``) so repeated
                draws of the same application can co-exist on one server.

        Raises:
            ConfigurationError: on a non-positive or non-finite rate or
                horizon (``NaN <= 0`` is False, so the finite check must be
                explicit or a NaN rate would generate a NaN-timed schedule).
        """
        if not (math.isfinite(rate_per_s) and rate_per_s > 0):
            raise ConfigurationError(
                f"arrival rate must be finite and positive, got {rate_per_s!r}"
            )
        if not (math.isfinite(horizon_s) and horizon_s > 0):
            raise ConfigurationError(
                f"schedule horizon must be finite and positive, got {horizon_s!r}"
            )
        rng = np.random.default_rng(seed)
        pool = sorted(names) if names else sorted(CATALOG)
        for name in pool:
            if name not in CATALOG:
                raise ConfigurationError(f"unknown application {name!r} in pool")
        events: list[ArrivalEvent] = []
        t = 0.0
        index = 0
        while True:
            t += float(rng.exponential(1.0 / rate_per_s))
            if t >= horizon_s:
                break
            base = CATALOG[pool[int(rng.integers(len(pool)))]]
            profile = base
            if unique_suffixes:
                profile = WorkloadProfile.from_dict(
                    {**base.to_dict(), "name": f"{base.name}#{index}"}
                )
            events.append(ArrivalEvent(time_s=t, profile=profile))
            index += 1
        return cls(events)


class PhasedProfile:
    """A workload whose response surface changes with progress (event E4).

    The segments partition ``[0, 1)`` progress: segment ``i`` applies from
    its threshold until the next one's. All segments must share the same
    name and ``total_work`` (the work contract does not change mid-run, only
    the resource behaviour does).

    Example - kmeans that turns memory-hungry halfway through::

        phased = PhasedProfile([
            (0.0, CATALOG["kmeans"]),
            (0.5, memory_hungry_kmeans_variant),
        ])
    """

    def __init__(self, segments: list[tuple[float, WorkloadProfile]]) -> None:
        if not segments:
            raise ConfigurationError("need at least one segment")
        thresholds = [t for t, _ in segments]
        if thresholds[0] != 0.0:
            raise ConfigurationError("first segment must start at progress 0.0")
        if any(b <= a for a, b in zip(thresholds, thresholds[1:])):
            raise ConfigurationError("segment thresholds must strictly increase")
        if any(not 0.0 <= t < 1.0 for t in thresholds):
            raise ConfigurationError("thresholds must lie in [0, 1)")
        names = {p.name for _, p in segments}
        if len(names) != 1:
            raise ConfigurationError(f"segments must share one name, got {sorted(names)}")
        works = {p.total_work for _, p in segments}
        if len(works) != 1:
            raise ConfigurationError("segments must share total_work")
        self._thresholds = thresholds
        self._profiles = [p for _, p in segments]

    @property
    def name(self) -> str:
        return self._profiles[0].name

    @property
    def initial(self) -> WorkloadProfile:
        """The segment in force at admission."""
        return self._profiles[0]

    @property
    def segment_count(self) -> int:
        return len(self._profiles)

    @property
    def segments(self) -> list[tuple[float, WorkloadProfile]]:
        """The ``(threshold, profile)`` pairs this profile was built from.

        The profile objects are the stored instances, not copies:
        :meth:`phase_boundary_crossed` compares segments by identity, so a
        consumer restoring state from a serialized form must re-link its
        references to these exact objects.
        """
        return list(zip(self._thresholds, self._profiles))

    def profile_at(self, progress_fraction: float) -> WorkloadProfile:
        """The profile in force at ``progress_fraction`` of total work."""
        if not 0.0 <= progress_fraction <= 1.0:
            raise ConfigurationError(
                f"progress fraction must be in [0, 1], got {progress_fraction}"
            )
        idx = bisect.bisect_right(self._thresholds, progress_fraction) - 1
        return self._profiles[max(0, idx)]

    def phase_boundary_crossed(self, before: float, after: float) -> bool:
        """Did progress move into a new segment between two observations?

        The mediator polls progress and fires E4 exactly when this is true.
        """
        return self.profile_at(before) is not self.profile_at(after)
