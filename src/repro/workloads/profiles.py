"""Analytic workload profiles: the power-performance response surface of one app.

The paper's framework never inspects an application's code. It observes two
signals - power draw (via RAPL) and performance (via heartbeats) - as functions
of three allocation knobs:

* ``f`` - per-core DVFS frequency (GHz),
* ``n`` - number of cores the application is consolidated onto,
* ``m`` - DRAM power allocated to the application's DIMM (watts).

A :class:`WorkloadProfile` captures everything the simulated server needs to
produce those two signals for an application:

* a *compute side*: base single-core rate, an Amdahl parallel fraction that
  governs core scaling, and a DVFS sensitivity exponent that governs frequency
  scaling;
* a *memory side*: bytes of DRAM traffic per unit of work, which converts a
  bandwidth allowance (set by ``m``) into a work rate, plus a per-core limit on
  how much bandwidth one core can pull;
* a *power side*: an activity factor scaling core dynamic power (memory-stalled
  cores clock-gate and draw less than busy ones).

The actual response-surface arithmetic lives in
:mod:`repro.server.perf_model` and :mod:`repro.server.power_model`, because it
also depends on server parameters (peak per-core power, DRAM static power,
bandwidth per watt). The profile is pure data plus validation plus a couple of
derived conveniences (e.g. :meth:`WorkloadProfile.amdahl_speedup`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.errors import ConfigurationError

#: The workload classes that appear in Table II of the paper.
WORKLOAD_CLASSES = (
    "memory",  # STREAM-style bandwidth streaming
    "analytics",  # MineBench data mining (kmeans, APR)
    "graph",  # GAP graph analytics (BFS, CC, TC, SSSP, BC)
    "search",  # search indexing (PageRank)
    "media",  # PARSEC media processing (x264, facesim, ferret)
)


@dataclass(frozen=True)
class WorkloadProfile:
    """Response-surface parameterization of one application.

    Attributes:
        name: Unique identifier, e.g. ``"stream"`` or ``"kmeans"``.
        wclass: One of :data:`WORKLOAD_CLASSES`; used for reporting and for
            the migration interference model at cluster scale.
        parallel_fraction: Amdahl parallel fraction ``p`` in ``[0, 1]``.
            Governs how much adding cores helps: the compute rate on ``n``
            cores is ``base_rate * 1 / ((1 - p) + p / n)``.
        base_rate: Work units per second on one core at the reference
            frequency (2.0 GHz) when fully compute-bound. Purely a scale
            factor; normalized metrics divide it out.
        dvfs_sensitivity: Exponent ``s`` in ``[0, 1]`` applied to relative
            frequency: compute rate scales with ``(f / f_ref) ** s``. Memory
            -bound codes have low values (frequency does not move DRAM).
        mem_gb_per_work: DRAM traffic, in gigabytes, generated per work unit.
            Converts a bandwidth allowance into a memory-side work rate. Zero
            means the app never touches DRAM beyond caches (fully
            compute-bound).
        activity_factor: Fraction of peak core dynamic power the app draws
            when *not* stalled, in ``(0, 1]``. Stall-induced reduction on top
            of this is computed by the power model from the achieved rate.
        total_work: Work units to completion; used for departures (event E3)
            and for finite experiments. ``float("inf")`` for open-ended apps.
        description: Human-readable provenance note.

    The defaults are deliberately absent - every field except ``description``
    must be specified, because a silently defaulted profile is a mis-calibrated
    experiment.
    """

    name: str
    wclass: str
    parallel_fraction: float
    base_rate: float
    dvfs_sensitivity: float
    mem_gb_per_work: float
    activity_factor: float
    total_work: float
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("workload name must be non-empty")
        if self.wclass not in WORKLOAD_CLASSES:
            raise ConfigurationError(
                f"unknown workload class {self.wclass!r}; expected one of {WORKLOAD_CLASSES}"
            )
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ConfigurationError(
                f"parallel_fraction must be in [0, 1], got {self.parallel_fraction}"
            )
        if self.base_rate <= 0:
            raise ConfigurationError(f"base_rate must be positive, got {self.base_rate}")
        if not 0.0 <= self.dvfs_sensitivity <= 1.0:
            raise ConfigurationError(
                f"dvfs_sensitivity must be in [0, 1], got {self.dvfs_sensitivity}"
            )
        if self.mem_gb_per_work < 0:
            raise ConfigurationError(
                f"mem_gb_per_work must be non-negative, got {self.mem_gb_per_work}"
            )
        if not 0.0 < self.activity_factor <= 1.0:
            raise ConfigurationError(
                f"activity_factor must be in (0, 1], got {self.activity_factor}"
            )
        if self.total_work <= 0:
            raise ConfigurationError(f"total_work must be positive, got {self.total_work}")

    def amdahl_speedup(self, cores: int) -> float:
        """Amdahl speedup of this workload on ``cores`` cores relative to one.

        >>> WorkloadProfile("x", "graph", 0.5, 1.0, 1.0, 0.0, 1.0, 1.0).amdahl_speedup(2)
        1.3333333333333333
        """
        if cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {cores}")
        p = self.parallel_fraction
        return 1.0 / ((1.0 - p) + p / cores)

    @property
    def is_memory_bound_leaning(self) -> bool:
        """Heuristic tag: does the app generate enough traffic that DRAM
        allocation materially affects it? Used only for reporting."""
        return self.mem_gb_per_work > 0.5

    def with_total_work(self, total_work: float) -> "WorkloadProfile":
        """Copy of this profile with a different amount of total work.

        Experiments with dynamic departures shorten ``total_work`` so an
        application finishes mid-run; this keeps the catalog immutable.
        """
        return replace(self, total_work=total_work)

    def scaled(self, *, base_rate_factor: float = 1.0) -> "WorkloadProfile":
        """Copy of this profile with its base rate scaled.

        The cluster experiments replicate an application across servers with
        slight heterogeneity; scaling the base rate models input-size
        differences without touching the shape of the response surface.
        """
        if base_rate_factor <= 0:
            raise ConfigurationError("base_rate_factor must be positive")
        return replace(self, base_rate=self.base_rate * base_rate_factor)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form used by the reporting layer."""
        return {
            "name": self.name,
            "wclass": self.wclass,
            "parallel_fraction": self.parallel_fraction,
            "base_rate": self.base_rate,
            "dvfs_sensitivity": self.dvfs_sensitivity,
            "mem_gb_per_work": self.mem_gb_per_work,
            "activity_factor": self.activity_factor,
            "total_work": self.total_work,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadProfile":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        known = {
            "name",
            "wclass",
            "parallel_fraction",
            "base_rate",
            "dvfs_sensitivity",
            "mem_gb_per_work",
            "activity_factor",
            "total_work",
            "description",
        }
        return cls(**{k: v for k, v in data.items() if k in known})
