"""The paper's application catalog, calibrated as analytic profiles.

Twelve applications appear in Table II, drawn from four suites:

* **MineBench** data analytics: ``kmeans``, ``apr`` (a-priori rule mining);
* **GAP** graph analytics: ``bfs``, ``connected``, ``triangle``, ``sssp``,
  ``betweenness``, and ``pagerank`` (which the paper files under search
  indexing);
* **STREAM** memory streaming: ``stream``;
* **PARSEC** media processing: ``x264``, ``facesim``, ``ferret``.

Calibration rationale (see DESIGN.md section 2 for the substitution
argument): each profile's parameters are chosen so its *qualitative* power
-performance behaviour matches the suite's published characterization -

* ``stream`` saturates DRAM bandwidth: its relative performance tracks the
  DRAM allocation ``m`` and the core count needed to pull that bandwidth,
  and is nearly flat in frequency;
* ``kmeans`` / ``pagerank`` are compute-bound and frequency-hungry (the
  paper's mix-10 discussion: "compute bound PageRank and kmeans ... better
  allocated for CPU cores");
* ``sssp`` scales poorly with cores but strongly with frequency - in the
  paper's Fig. 11a it keeps 2 GHz and consolidates 6 cores down to 3;
* ``x264`` is pipeline-parallel: it scales well with cores and tolerates
  lower frequency - in Fig. 11a it keeps its cores and drops to 1.4 GHz;
* graph codes sit in between, limited by memory latency (modelled as a mix
  of moderate Amdahl fractions and per-work DRAM traffic).

Absolute rates (``base_rate``) are scale factors and never affect normalized
metrics; ``total_work`` values give each app a 5-15 minute uncapped runtime
so steady-state experiments do not see spurious departures.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.workloads.profiles import WorkloadProfile


def _make_catalog() -> dict[str, WorkloadProfile]:
    """Build the calibrated catalog (kept in a function for readability)."""
    entries = [
        WorkloadProfile(
            name="stream",
            wclass="memory",
            parallel_fraction=0.95,
            base_rate=3.0,
            dvfs_sensitivity=0.15,
            mem_gb_per_work=2.0,
            activity_factor=0.75,
            total_work=3000.0,
            description="STREAM triad: DRAM-bandwidth saturating [McCalpin 1995]",
        ),
        WorkloadProfile(
            name="kmeans",
            wclass="analytics",
            parallel_fraction=0.75,
            base_rate=1.0,
            dvfs_sensitivity=0.75,
            mem_gb_per_work=0.15,
            activity_factor=1.0,
            total_work=2000.0,
            description="MineBench k-means clustering: compute-bound, scales with cores",
        ),
        WorkloadProfile(
            name="apr",
            wclass="analytics",
            parallel_fraction=0.55,
            base_rate=1.2,
            dvfs_sensitivity=0.9,
            mem_gb_per_work=0.45,
            activity_factor=0.9,
            total_work=2200.0,
            description="MineBench a-priori rule mining: mixed compute/memory",
        ),
        WorkloadProfile(
            name="bfs",
            wclass="graph",
            parallel_fraction=0.6,
            base_rate=2.0,
            dvfs_sensitivity=0.3,
            mem_gb_per_work=1.3,
            activity_factor=0.65,
            total_work=1500.0,
            description="GAP breadth-first search: memory-latency bound",
        ),
        WorkloadProfile(
            name="connected",
            wclass="graph",
            parallel_fraction=0.6,
            base_rate=2.0,
            dvfs_sensitivity=0.5,
            mem_gb_per_work=0.95,
            activity_factor=0.72,
            total_work=1900.0,
            description="GAP connected components: irregular memory access",
        ),
        WorkloadProfile(
            name="triangle",
            wclass="graph",
            parallel_fraction=0.9,
            base_rate=0.9,
            dvfs_sensitivity=0.65,
            mem_gb_per_work=0.5,
            activity_factor=0.95,
            total_work=2100.0,
            description="GAP triangle counting: compute-heavy graph kernel",
        ),
        WorkloadProfile(
            name="sssp",
            wclass="graph",
            parallel_fraction=0.45,
            base_rate=2.0,
            dvfs_sensitivity=1.0,
            mem_gb_per_work=0.55,
            activity_factor=0.95,
            total_work=2200.0,
            description=(
                "GAP single-source shortest paths: poor core scaling, "
                "frequency-sensitive (keeps 2 GHz, sheds cores in Fig. 11a)"
            ),
        ),
        WorkloadProfile(
            name="betweenness",
            wclass="graph",
            parallel_fraction=0.65,
            base_rate=1.0,
            dvfs_sensitivity=0.9,
            mem_gb_per_work=0.7,
            activity_factor=0.82,
            total_work=1800.0,
            description="GAP betweenness centrality",
        ),
        WorkloadProfile(
            name="pagerank",
            wclass="search",
            parallel_fraction=0.9,
            base_rate=1.0,
            dvfs_sensitivity=1.0,
            mem_gb_per_work=0.35,
            activity_factor=0.88,
            total_work=2200.0,
            description="GAP PageRank (search indexing): compute-bound iteration",
        ),
        WorkloadProfile(
            name="x264",
            wclass="media",
            parallel_fraction=0.93,
            base_rate=1.0,
            dvfs_sensitivity=0.5,
            mem_gb_per_work=0.25,
            activity_factor=0.92,
            total_work=2600.0,
            description=(
                "PARSEC x264 encoding: pipeline-parallel, keeps cores and "
                "sheds frequency (2 -> 1.4 GHz in Fig. 11a)"
            ),
        ),
        WorkloadProfile(
            name="facesim",
            wclass="media",
            parallel_fraction=0.55,
            base_rate=1.0,
            dvfs_sensitivity=0.85,
            mem_gb_per_work=0.6,
            activity_factor=0.85,
            total_work=1700.0,
            description="PARSEC facesim physics simulation",
        ),
        WorkloadProfile(
            name="ferret",
            wclass="media",
            parallel_fraction=0.85,
            base_rate=1.1,
            dvfs_sensitivity=0.8,
            mem_gb_per_work=0.3,
            activity_factor=0.85,
            total_work=2400.0,
            description="PARSEC ferret content-similarity search pipeline",
        ),
    ]
    return {profile.name: profile for profile in entries}


#: Name -> profile for the twelve paper applications. Immutable entries; use
#: :meth:`~repro.workloads.profiles.WorkloadProfile.with_total_work` and
#: friends to derive experiment-specific variants.
CATALOG: dict[str, WorkloadProfile] = _make_catalog()


def application_names() -> list[str]:
    """Catalog names, sorted."""
    return sorted(CATALOG)


def get_application(name: str) -> WorkloadProfile:
    """Look up a catalog application.

    Raises:
        ConfigurationError: for names outside the catalog, listing what is
            available (typos in experiment scripts should fail loudly).
    """
    try:
        return CATALOG[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown application {name!r}; catalog has {application_names()}"
        ) from None
