"""Table II: the fifteen two-application mixes of the paper's evaluation.

The paper randomly chose 15 pairs from its application catalog; Table II
lists them with their suite types. They are reproduced verbatim here, in the
paper's numbering (mix ids 1-15). The first seven pair a data-intensive app
with a compute-leaning one; later mixes include media/media and
analytics/media combinations, giving the evaluation a spread of app-level and
resource-level utility contrast (Fig. 9 dissects mixes 1, 10 and 14).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workloads.catalog import get_application
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class Mix:
    """One co-location pair from Table II.

    Attributes:
        mix_id: The paper's mix number (1-15).
        app1 / app2: Catalog names of the two applications.
    """

    mix_id: int
    app1: str
    app2: str

    def profiles(self) -> tuple[WorkloadProfile, WorkloadProfile]:
        """The two catalog profiles, in Table II order."""
        return (get_application(self.app1), get_application(self.app2))

    def names(self) -> tuple[str, str]:
        return (self.app1, self.app2)

    def __str__(self) -> str:
        return f"mix-{self.mix_id}({self.app1}+{self.app2})"


#: Table II, verbatim. Key is the paper's mix id.
MIXES: dict[int, Mix] = {
    1: Mix(1, "stream", "kmeans"),
    2: Mix(2, "connected", "kmeans"),
    3: Mix(3, "stream", "bfs"),
    4: Mix(4, "facesim", "bfs"),
    5: Mix(5, "ferret", "betweenness"),
    6: Mix(6, "ferret", "pagerank"),
    7: Mix(7, "facesim", "betweenness"),
    8: Mix(8, "x264", "triangle"),
    9: Mix(9, "apr", "connected"),
    10: Mix(10, "pagerank", "kmeans"),
    11: Mix(11, "ferret", "sssp"),
    12: Mix(12, "facesim", "x264"),
    13: Mix(13, "apr", "kmeans"),
    14: Mix(14, "x264", "sssp"),
    15: Mix(15, "apr", "x264"),
}


def get_mix(mix_id: int) -> Mix:
    """Look up a Table II mix by the paper's number.

    Raises:
        ConfigurationError: for ids outside 1-15.
    """
    try:
        return MIXES[mix_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown mix id {mix_id}; Table II defines mixes {sorted(MIXES)}"
        ) from None


def all_mixes() -> list[Mix]:
    """All fifteen mixes in Table II order."""
    return [MIXES[i] for i in sorted(MIXES)]
