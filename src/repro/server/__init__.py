"""Simulated server substrate: the hardware surface the paper's policies drive.

The paper runs on a dual-socket Intel Xeon-2620 (Table I) controlled through
Linux interfaces: per-core DVFS via ``cpupower``, core consolidation via
``taskset``, socket/DRAM power via the RAPL sysfs interface, package deep
sleep (PC6), and task suspend/continue. This package provides a discrete-time
simulation of that surface with the same observation and actuation contract:

* :class:`~repro.server.config.ServerConfig` - Table I parameters and the
  discrete knob space ``(f, n, m)``.
* :class:`~repro.server.topology.ServerTopology` - sockets, cores, DIMMs, and
  core-group assignment (the ``taskset`` substrate).
* :mod:`~repro.server.power_model` / :mod:`~repro.server.perf_model` - the
  component power model and the bottleneck performance model.
* :class:`~repro.server.rapl.RaplInterface` - energy counters and power-cap
  domains mirroring Intel RAPL semantics.
* :class:`~repro.server.heartbeats.HeartbeatMonitor` - application heartbeats.
* :class:`~repro.server.server.SimulatedServer` - the discrete-time engine.
"""

from repro.server.config import (
    ServerConfig,
    KnobSetting,
    DEFAULT_SERVER_CONFIG,
)
from repro.server.topology import ServerTopology, CoreGroup
from repro.server.power_model import PowerModel, PowerBreakdown
from repro.server.perf_model import PerformanceModel
from repro.server.rapl import RaplInterface, RaplDomain
from repro.server.heartbeats import HeartbeatMonitor, HeartbeatRecord
from repro.server.sleep import SleepController, SleepState
from repro.server.knobs import KnobController, hardware_throttle_path
from repro.server.powercap import HardwarePowercap, PowercapZone
from repro.server.server import SimulatedServer, ApplicationHandle

__all__ = [
    "ServerConfig",
    "KnobSetting",
    "DEFAULT_SERVER_CONFIG",
    "ServerTopology",
    "CoreGroup",
    "PowerModel",
    "PowerBreakdown",
    "PerformanceModel",
    "RaplInterface",
    "RaplDomain",
    "HeartbeatMonitor",
    "HeartbeatRecord",
    "SleepController",
    "SleepState",
    "KnobController",
    "hardware_throttle_path",
    "HardwarePowercap",
    "PowercapZone",
    "SimulatedServer",
    "ApplicationHandle",
]
