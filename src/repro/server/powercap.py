"""Fine-grained hardware power isolation: per-application powercap zones.

The paper's future-work item (ii): "hardware mechanisms for fine-grained
power isolation in these shared servers". Today's RAPL exposes package- and
DRAM-level limits; this module models the natural next step - a *per
-application* power zone with hardware closed-loop enforcement, analogous to
the Linux powercap framework's constraint objects but scoped to one core
group + DIMM share.

Each :class:`PowercapZone` watches its application's measured draw over a
sliding window and walks the utility-blind throttle path (DVFS first, then
idle injection, then DRAM) one step at a time:

* sustained draw above the limit -> throttle one step;
* sustained draw below the limit minus a hysteresis margin -> unthrottle
  one step (the zone recovers performance when headroom appears).

:class:`HardwarePowercap` runs one zone per application against a
:class:`~repro.server.server.SimulatedServer`. It gives the *isolation*
half of the paper's story without any software policy: with zones set, a
misbehaving application physically cannot steal budget from its neighbours.
What hardware zones cannot do - and the benchmark shows it - is choose
*good* limits or knob mixes: that remains the mediator's job, which is
exactly the paper's division of labour between mechanism and policy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError, SchedulingError
from repro.server.config import KnobSetting, ServerConfig
from repro.server.knobs import hardware_throttle_path
from repro.server.server import SimulatedServer, TickResult


@dataclass
class ZoneStats:
    """Lifetime counters of one zone (reporting).

    Attributes:
        throttle_steps: Times the controller stepped down the path.
        unthrottle_steps: Times it stepped back up.
        violation_ticks: Ticks whose instantaneous draw exceeded the limit
            (transients the closed loop subsequently corrected).
        failed_actuations: Knob writes that did not verify on readback
            (actuation faults); the loop re-asserts them every tick until
            one sticks.
    """

    throttle_steps: int = 0
    unthrottle_steps: int = 0
    violation_ticks: int = 0
    failed_actuations: int = 0


class PowercapZone:
    """Closed-loop power limit for one application.

    Args:
        app: The application this zone encloses.
        limit_w: Average-power limit for the zone.
        config: Knob space (provides the throttle path).
        window_s: Averaging window of the control loop.
        hysteresis: Fractional band below the limit in which the controller
            holds (no unthrottling); prevents limit-cycling.
        max_width: The app's core-group width; path knobs needing more
            cores are skipped.
    """

    def __init__(
        self,
        app: str,
        limit_w: float,
        config: ServerConfig,
        *,
        window_s: float = 1.0,
        hysteresis: float = 0.08,
        max_width: int | None = None,
    ) -> None:
        if limit_w <= 0:
            raise ConfigurationError("zone limit must be positive")
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if not 0.0 <= hysteresis < 1.0:
            raise ConfigurationError("hysteresis must be in [0, 1)")
        self.app = app
        self._limit_w = limit_w
        self._window_s = window_s
        self._hysteresis = hysteresis
        width = max_width if max_width is not None else config.cores_max
        self._path = [
            knob for knob in hardware_throttle_path(config) if knob.cores <= width
        ]
        if not self._path:
            raise ConfigurationError("no feasible knobs for this zone width")
        self._position = 0
        self._samples: deque[tuple[float, float]] = deque()
        self.stats = ZoneStats()

    @property
    def limit_w(self) -> float:
        return self._limit_w

    @limit_w.setter
    def limit_w(self, value: float) -> None:
        if value <= 0:
            raise ConfigurationError("zone limit must be positive")
        self._limit_w = value

    @property
    def position(self) -> int:
        """Current index on the throttle path (0 = unthrottled)."""
        return self._position

    @property
    def knob(self) -> KnobSetting:
        """The setting the zone currently enforces."""
        return self._path[self._position]

    def observe(self, time_s: float, power_w: float) -> KnobSetting | None:
        """Feed one measured sample; returns a new knob when the loop acts.

        The controller acts at most once per full window of samples, like
        RAPL's windowed average enforcement.
        """
        if power_w > self._limit_w + 1e-9:
            self.stats.violation_ticks += 1
        self._samples.append((time_s, power_w))
        cutoff = time_s - self._window_s
        while self._samples and self._samples[0][0] <= cutoff:
            self._samples.popleft()
        span = time_s - self._samples[0][0]
        if span < self._window_s * 0.9:
            return None  # not enough history yet
        average = sum(p for _, p in self._samples) / len(self._samples)
        if average > self._limit_w and self._position + 1 < len(self._path):
            self._position += 1
            self.stats.throttle_steps += 1
            self._samples.clear()
            return self.knob
        if (
            average < self._limit_w * (1.0 - self._hysteresis)
            and self._position > 0
        ):
            self._position -= 1
            self.stats.unthrottle_steps += 1
            self._samples.clear()
            return self.knob
        return None


class HardwarePowercap:
    """Per-application zones enforced against one simulated server.

    Drive it from the simulation loop::

        powercap = HardwarePowercap(server)
        powercap.set_zone("kmeans", 12.0)
        while ...:
            result = server.tick(dt)
            powercap.on_tick(result)

    Zones act through the same knob controller as everything else, so a
    zone and a software policy must not manage the same application at the
    same time (the same restriction real RAPL zones have against userspace
    governors).
    """

    def __init__(self, server: SimulatedServer) -> None:
        self._server = server
        self._zones: dict[str, PowercapZone] = {}

    @property
    def zones(self) -> dict[str, PowercapZone]:
        return dict(self._zones)

    def set_zone(self, app: str, limit_w: float, **zone_kwargs) -> PowercapZone:
        """Create (or replace) the zone around ``app`` and apply its
        starting knob.

        Raises:
            SchedulingError: when the app is not on the server.
        """
        self._server.handle_of(app)  # raises for unknown apps
        width = self._server.topology.group_of(app).width
        zone = PowercapZone(
            app, limit_w, self._server.config, max_width=width, **zone_kwargs
        )
        self._zones[app] = zone
        self._server.knobs.set_knob(app, zone.knob)
        return zone

    def clear_zone(self, app: str) -> None:
        """Remove the zone (the app keeps its last enforced knob)."""
        if app not in self._zones:
            raise SchedulingError(f"no zone around {app!r}")
        del self._zones[app]

    def on_tick(self, result: TickResult) -> None:
        """Feed one tick's measurements into every zone's control loop.

        Hardware control loops do not give up: when a knob write fails to
        verify (an actuation fault dropped or tore it), the divergence is
        counted and the zone's setting is re-asserted on every subsequent
        tick until the substrate accepts it.
        """
        for app, zone in self._zones.items():
            power = result.breakdown.app_w.get(app)
            if power is None:
                continue  # suspended or completed: nothing to control
            if self._server.handle_of(app).completed:
                continue
            new_knob = zone.observe(result.time_s, power)
            if new_knob is None and self._server.knobs.readback(app) != zone.knob:
                new_knob = zone.knob  # re-assert a previously failed write
            if new_knob is not None and not self._server.knobs.set_knob(app, new_knob):
                zone.stats.failed_actuations += 1

    def total_limit_w(self) -> float:
        """Sum of zone limits - the budget hardware isolation guarantees."""
        return sum(zone.limit_w for zone in self._zones.values())
