"""Bottleneck performance model: work rate as a function of the (f, n, m) knobs.

The model is roofline-style. An application has two candidate rates:

* a **compute rate** - how fast its cores could retire work if DRAM were
  infinitely fast: ``base_rate * amdahl_speedup(n) * (f / f_max) ** s`` where
  ``s`` is the profile's DVFS sensitivity;
* a **memory rate** - how fast DRAM could feed it: the usable bandwidth under
  the DRAM allocation ``m`` (and under the cores' ability to generate requests)
  divided by the profile's bytes-per-work.

The achieved rate is a *smooth minimum* of the two. A hard ``min`` would make
utility curves piecewise-linear with a kink exactly at the crossover; real
machines overlap computation with memory traffic imperfectly, so the smooth
minimum (a p-norm blend with exponent ``bottleneck_sharpness``) produces the
rounded knees visible in the paper's Fig. 2 utility curves.

Crucially, co-located applications do **not** interact through this model:
the paper's premise (Section II-A) is that direct resources are partitioned -
each app has its own cores, LLC slice and DIMM - so all interference flows
through the shared power budget. That isolation is what makes the power
struggle the quantity under study.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.server.config import KnobSetting, ServerConfig
from repro.workloads.profiles import WorkloadProfile


class PerformanceModel:
    """Evaluates application work rates on a given server configuration.

    Args:
        config: The server whose DVFS range, DRAM calibration and bottleneck
            sharpness parameterize the model.
    """

    def __init__(self, config: ServerConfig) -> None:
        self._config = config

    @property
    def config(self) -> ServerConfig:
        """The server configuration this model was built for."""
        return self._config

    # -------------------------------------------------------------- elements

    def compute_rate(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        """Work rate (units/s) if the app were purely compute-bound.

        Scales with Amdahl speedup over ``knob.cores`` and with relative
        frequency raised to the profile's DVFS sensitivity.
        """
        cfg = self._config
        freq_factor = (knob.freq_ghz / cfg.freq_max_ghz) ** profile.dvfs_sensitivity
        return profile.base_rate * profile.amdahl_speedup(knob.cores) * freq_factor

    def usable_bandwidth_gbs(self, knob: KnobSetting) -> float:
        """DRAM bandwidth (GB/s) available under the allocation ``m``.

        The DRAM RAPL allocation first covers the DIMM's background power;
        the remainder buys bandwidth at ``dram_w_per_gbs``. Independently,
        ``n`` cores at frequency ``f`` can only generate a finite request
        stream, modelled as ``n * core_bw_gbs`` scaled by a weak frequency
        factor (memory requests issue from the core pipeline, so the slowest
        DVFS state still sustains 80% of peak per-core traffic).
        """
        cfg = self._config
        allocation_bw = max(0.0, knob.dram_power_w - cfg.dram_static_w) / cfg.dram_w_per_gbs
        freq_factor = 0.5 + 0.5 * (knob.freq_ghz / cfg.freq_max_ghz)
        core_pull_bw = knob.cores * cfg.core_bw_gbs * freq_factor
        return min(allocation_bw, core_pull_bw)

    def memory_rate(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        """Work rate (units/s) if the app were purely bandwidth-bound.

        ``float("inf")`` for profiles that generate no DRAM traffic.
        """
        if profile.mem_gb_per_work == 0.0:
            return float("inf")
        return self.usable_bandwidth_gbs(knob) / profile.mem_gb_per_work

    # -------------------------------------------------------------- combined

    def rate(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        """Achieved work rate (units/s): smooth minimum of compute and memory.

        With sharpness ``s`` the blend is ``(rc^-s + rm^-s)^(-1/s)``, which
        approaches ``min(rc, rm)`` as ``s`` grows and never exceeds it... by
        more than the overlap the exponent allows. A zero memory rate (DRAM
        allocation at or below background power for a traffic-generating app)
        yields zero.
        """
        rc = self.compute_rate(profile, knob)
        rm = self.memory_rate(profile, knob)
        if rm == float("inf"):
            return rc
        if rm <= 0.0 or rc <= 0.0:
            return 0.0
        s = self._config.bottleneck_sharpness
        return (rc ** (-s) + rm ** (-s)) ** (-1.0 / s)

    def core_utilization(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        """Fraction of compute capability actually used, in ``[0, 1]``.

        The power model scales core dynamic power by this: cores stalled on
        DRAM clock-gate and draw less. Equal to ``rate / compute_rate``.
        """
        rc = self.compute_rate(profile, knob)
        if rc <= 0.0:
            return 0.0
        return min(1.0, self.rate(profile, knob) / rc)

    def achieved_bandwidth_gbs(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        """DRAM traffic (GB/s) actually generated at the achieved rate."""
        return self.rate(profile, knob) * profile.mem_gb_per_work

    def peak_rate(self, profile: WorkloadProfile) -> float:
        """Rate at the uncapped knob setting (f_max, n_max, m_max).

        This is the paper's ``Perf_nocap`` denominator: performance on the
        consolidated server in the absence of power caps (direct resources
        are partitioned, so the uncapped co-located rate equals the uncapped
        isolated rate).
        """
        return self.rate(profile, self._config.max_knob)

    def relative_performance(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        """``rate(knob) / rate(max_knob)``, the per-app term of objective (1)."""
        peak = self.peak_rate(profile)
        if peak <= 0.0:
            raise ConfigurationError(
                f"profile {profile.name!r} has zero peak rate on this server; "
                "it cannot make progress even uncapped"
            )
        return self.rate(profile, knob) / peak

    def completion_time_s(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        """Seconds to finish ``profile.total_work`` at a steady knob setting."""
        r = self.rate(profile, knob)
        if r <= 0.0:
            return float("inf")
        return profile.total_work / r
