"""Server configuration: Table I of the paper, plus the discrete knob space.

The paper's platform (Table I):

======================  =====================
Processor               Xeon-2620 (dual socket)
Cores                   12 (6 per socket)
Frequency               1.2 - 2.0 GHz
Frequency steps         9 (100 MHz grain)
LLC                     15 MB per socket
Memory                  8 GB DDR3, one DIMM + memory controller per socket
NUMA                    2 nodes
P_idle                  50 W
P_cm                    20 W
P_dynamic (max)         60 W
======================  =====================

and the per-application allocation knobs (Section II-B):

* ``f`` in {1.2, 1.3, ..., 2.0} GHz (per-core DVFS),
* ``n`` in {1, ..., 6} cores (core consolidation; one socket per app),
* ``m`` in {3, 4, ..., 10} W (DRAM RAPL power for the app's DIMM).

:class:`ServerConfig` also carries the power/performance model calibration
constants that the paper leaves implicit (peak per-core dynamic power, DRAM
bandwidth per watt, ...). The defaults are chosen so the worked examples in
Section II of the paper come out right: an application running alone draws
about 20 W of dynamic power (server total 90 W), and the cheapest runnable
configuration of an application needs about 10 W.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ConfigurationError, KnobError
from repro.units import frange


@dataclass(frozen=True, order=True)
class KnobSetting:
    """One point in the per-application allocation-knob space.

    Attributes:
        freq_ghz: Per-core DVFS frequency ``f`` of the app's cores.
        cores: Number of cores ``n`` the app is consolidated onto.
        dram_power_w: DRAM RAPL power allocation ``m`` for the app's DIMM.
    """

    freq_ghz: float
    cores: int
    dram_power_w: float

    def __str__(self) -> str:
        return f"(f={self.freq_ghz:.1f}GHz, n={self.cores}, m={self.dram_power_w:.0f}W)"

    def to_json(self) -> list:
        """The compact ``[f, n, m]`` form used by checkpoints and journals."""
        return [self.freq_ghz, self.cores, self.dram_power_w]

    @classmethod
    def from_json(cls, data: list) -> "KnobSetting":
        """Inverse of :meth:`to_json`."""
        f, n, m = data
        return cls(freq_ghz=float(f), cores=int(n), dram_power_w=float(m))


@dataclass(frozen=True)
class ServerConfig:
    """Immutable description of the simulated server. Defaults match Table I.

    Structural parameters:

    Attributes:
        sockets: Number of CPU sockets (NUMA nodes).
        cores_per_socket: Cores on each socket.
        llc_mb_per_socket: Last-level cache size per socket (reporting only).
        memory_gb: Installed DRAM (reporting only).
        freq_min_ghz / freq_max_ghz / freq_step_ghz: The DVFS range; the
            defaults yield the paper's 9 steps between 1.2 and 2.0 GHz.
        cores_min / cores_max: Core-consolidation range per application.
        dram_power_min_w / dram_power_max_w / dram_power_step_w: DRAM RAPL
            allocation range per DIMM.

    Power-model calibration (see :mod:`repro.server.power_model`):

    Attributes:
        p_idle_w: Baseline server draw with all sockets in package sleep -
            fans, disks, DRAM self-refresh, LLC leakage.
        p_cm_w: Chip-maintenance power: uncore components (LLC, on-chip
            network, memory controllers, QPI) that turn on when *any* core
            runs, shared across all co-located applications.
        p_dynamic_max_w: Headroom above ``p_idle + p_cm`` at full load; with
            the defaults the server peaks at 130 W.
        p_core_peak_w: Dynamic power of one fully-active core at
            ``freq_max_ghz``.
        core_power_exponent: Exponent of ``(f / f_max)`` in per-core dynamic
            power. The 1.2-2.0 GHz knob range of the Xeon-2620 sits at or
            below the part's nominal voltage point, where voltage barely
            scales with frequency, so power is close to linear in f (~1.5).
        p_app_floor_w: Power to keep an application's core group schedulable
            at all - private-cache leakage out of sleep, core wake overhead.
            This is why the cheapest runnable configuration costs about 10 W
            (floor + one slow core + minimum DRAM), matching Section IV-B.
        dram_static_w: DRAM background power per active DIMM (always spent
            when the app's DIMM is out of self-refresh); counted against the
            app's DRAM allocation ``m``.
        dram_w_per_gbs: Incremental DRAM watts per GB/s of traffic. Together
            with ``dram_static_w`` this converts the allocation ``m`` into a
            usable bandwidth.
        core_bw_gbs: Peak DRAM bandwidth one core can generate at
            ``freq_max_ghz``; scales with frequency. Makes core consolidation
            a real trade-off for bandwidth-hungry applications.
        bottleneck_sharpness: Exponent of the smooth-min combining compute
            and memory rates in the performance model; larger is closer to a
            hard ``min``.
        rapl_guard_band: Fractional undershoot of hardware RAPL enforcement.
            RAPL meets an *average* limit with a windowed control loop and
            therefore tracks conservatively below it; policies that enforce
            budgets by direct knob selection (cpupower/taskset) do not pay
            this margin. Applied wherever the throttle-path emulation acts.

    Timing parameters:

    Attributes:
        pc6_wake_latency_s: Package deep-sleep wake latency (hundreds of
            microseconds per the paper's reference [47]).
        reallocation_latency_s: End-to-end latency of a power re-allocation
            (the paper measures ~800 ms on their server for Fig. 11a).
        duty_cycle_period_s: Period of one ON/OFF duty cycle used by the
            temporal coordinator.
        resume_penalty_s: Work time lost when a suspended application
            resumes - its private-cache state was flushed during the OFF
            period (the paper's stated drawback of time coordination, R3b).
    """

    sockets: int = 2
    cores_per_socket: int = 6
    llc_mb_per_socket: float = 15.0
    memory_gb: float = 8.0

    freq_min_ghz: float = 1.2
    freq_max_ghz: float = 2.0
    freq_step_ghz: float = 0.1
    cores_min: int = 1
    cores_max: int = 6
    dram_power_min_w: float = 3.0
    dram_power_max_w: float = 10.0
    dram_power_step_w: float = 1.0

    p_idle_w: float = 50.0
    p_cm_w: float = 20.0
    p_dynamic_max_w: float = 60.0
    p_core_peak_w: float = 2.5
    core_power_exponent: float = 1.5
    p_app_floor_w: float = 4.5
    dram_static_w: float = 2.5
    dram_w_per_gbs: float = 0.75
    core_bw_gbs: float = 3.0
    bottleneck_sharpness: float = 4.0

    rapl_guard_band: float = 0.06

    pc6_wake_latency_s: float = 300e-6
    reallocation_latency_s: float = 0.8
    duty_cycle_period_s: float = 10.0
    resume_penalty_s: float = 0.05

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ConfigurationError("server must have at least one socket and core")
        if self.freq_min_ghz <= 0 or self.freq_max_ghz < self.freq_min_ghz:
            raise ConfigurationError(
                f"invalid frequency range [{self.freq_min_ghz}, {self.freq_max_ghz}]"
            )
        if self.freq_step_ghz <= 0:
            raise ConfigurationError("freq_step_ghz must be positive")
        if not 1 <= self.cores_min <= self.cores_max <= self.cores_per_socket:
            raise ConfigurationError(
                "core range must satisfy 1 <= cores_min <= cores_max <= cores_per_socket"
            )
        if self.dram_power_min_w <= 0 or self.dram_power_max_w < self.dram_power_min_w:
            raise ConfigurationError("invalid DRAM power range")
        if self.dram_power_min_w < self.dram_static_w:
            raise ConfigurationError(
                "dram_power_min_w below dram_static_w would make the minimum "
                "DRAM allocation unable to cover background power"
            )
        for name in ("p_idle_w", "p_cm_w", "p_core_peak_w", "p_app_floor_w"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.dram_w_per_gbs <= 0 or self.core_bw_gbs <= 0:
            raise ConfigurationError("DRAM bandwidth calibration must be positive")
        if self.bottleneck_sharpness <= 0:
            raise ConfigurationError("bottleneck_sharpness must be positive")
        if not 0.0 <= self.rapl_guard_band < 1.0:
            raise ConfigurationError("rapl_guard_band must be in [0, 1)")
        if self.duty_cycle_period_s <= 0:
            raise ConfigurationError("duty_cycle_period_s must be positive")

    # ------------------------------------------------------------------ knobs

    @property
    def total_cores(self) -> int:
        """Total cores across all sockets (12 on the paper's platform)."""
        return self.sockets * self.cores_per_socket

    @property
    def frequencies_ghz(self) -> list[float]:
        """The discrete DVFS steps, ascending (9 steps by default)."""
        return frange(self.freq_min_ghz, self.freq_max_ghz, self.freq_step_ghz)

    @property
    def core_counts(self) -> list[int]:
        """The discrete core-consolidation settings, ascending."""
        return list(range(self.cores_min, self.cores_max + 1))

    @property
    def dram_powers_w(self) -> list[float]:
        """The discrete DRAM RAPL allocations, ascending (1 W grain)."""
        return frange(self.dram_power_min_w, self.dram_power_max_w, self.dram_power_step_w)

    def knob_space(self) -> list[KnobSetting]:
        """Every ``(f, n, m)`` combination, in deterministic order.

        This is the column space of the collaborative-filtering preference
        matrices; its order must be stable across runs, so it is defined once
        here (f-major, then n, then m: 9 x 6 x 8 = 432 columns by default).
        """
        return [
            KnobSetting(f, n, m)
            for f in self.frequencies_ghz
            for n in self.core_counts
            for m in self.dram_powers_w
        ]

    def iter_knob_space(self) -> Iterator[KnobSetting]:
        """Lazy variant of :meth:`knob_space`."""
        for f in self.frequencies_ghz:
            for n in self.core_counts:
                for m in self.dram_powers_w:
                    yield KnobSetting(f, n, m)

    @property
    def max_knob(self) -> KnobSetting:
        """The uncapped setting: fastest frequency, all cores, full DRAM power."""
        return KnobSetting(self.freq_max_ghz, self.cores_max, self.dram_power_max_w)

    @property
    def min_knob(self) -> KnobSetting:
        """The cheapest runnable setting: slowest frequency, one core, min DRAM."""
        return KnobSetting(self.freq_min_ghz, self.cores_min, self.dram_power_min_w)

    def validate_knob(self, knob: KnobSetting) -> None:
        """Raise :class:`~repro.errors.KnobError` unless ``knob`` is a point
        of the discrete knob space."""
        freqs = self.frequencies_ghz
        if not any(abs(knob.freq_ghz - f) < 1e-9 for f in freqs):
            raise KnobError(
                f"frequency {knob.freq_ghz} GHz not in supported steps {freqs}"
            )
        if knob.cores not in self.core_counts:
            raise KnobError(f"core count {knob.cores} not in {self.core_counts}")
        if not any(abs(knob.dram_power_w - m) < 1e-9 for m in self.dram_powers_w):
            raise KnobError(
                f"DRAM power {knob.dram_power_w} W not in supported steps "
                f"{self.dram_powers_w}"
            )

    # ------------------------------------------------------------ power caps

    @property
    def uncapped_power_w(self) -> float:
        """Rated server power: idle + chip maintenance + full dynamic headroom."""
        return self.p_idle_w + self.p_cm_w + self.p_dynamic_max_w

    def dynamic_budget_w(self, p_cap_w: float) -> float:
        """Watts left for application dynamic power under ``p_cap_w``.

        This is the quantity the :class:`~repro.core.allocator.PowerAllocator`
        divides: ``P_cap - P_idle - P_cm`` (Eq. 2 with the ESD terms zero).
        Negative values mean not even chip-maintenance power fits, i.e. the
        server cannot run anything without an ESD.
        """
        return p_cap_w - self.p_idle_w - self.p_cm_w


#: The paper's platform, used by every experiment unless overridden.
DEFAULT_SERVER_CONFIG = ServerConfig()
