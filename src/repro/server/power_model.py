"""Component power model: watts as a function of the (f, n, m) knobs.

Server power decomposes exactly as in the paper's Section II-A and Eq. (2):

``P_server = P_idle + P_cm + sum_X P_X + ESD_charge - ESD_discharge``

* ``P_idle`` (50 W) is always spent - fan, disks, DRAM self-refresh, LLC
  leakage - whether or not anything runs.
* ``P_cm`` (20 W) is the chip-maintenance power of the uncore (LLC, on-chip
  network, memory controllers, QPI). It switches on when *any* application
  runs and is shared - this is the non-convexity the ESD coordination of
  Requirement R4 exploits: running two apps together pays ``P_cm`` once.
* ``P_X`` is each application's attributable dynamic power, itself the sum of

  - an **activation floor** (``p_app_floor_w``): private caches out of sleep,
    core wake overhead for the app's core group;
  - **core dynamic power**: ``n * p_core_peak * (f / f_max) ** alpha`` scaled
    by the profile's activity factor and by achieved core utilization (cores
    stalled on DRAM clock-gate);
  - **DRAM power**: the DIMM's background power plus watts proportional to
    the traffic actually generated - never exceeding the allocation ``m``,
    because the performance model already limited bandwidth to what ``m``
    buys.

The model is deliberately *consistent* with the performance model: reducing
``m`` throttles bandwidth (performance falls) and the DRAM power falls with
the achieved traffic, exactly like DRAM RAPL capping behaves on real parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError
from repro.server.config import KnobSetting, ServerConfig
from repro.server.perf_model import PerformanceModel
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class PowerBreakdown:
    """Itemized server power at one instant.

    Attributes:
        idle_w: Always-on baseline (``P_idle``).
        cm_w: Chip-maintenance power (``P_cm``); zero when no app is active.
        app_w: Attributable dynamic power per application name (``P_X``).
        esd_charge_w: Power flowing into the energy-storage device.
        esd_discharge_w: Power supplied by the energy-storage device.
    """

    idle_w: float
    cm_w: float
    app_w: Mapping[str, float] = field(default_factory=dict)
    esd_charge_w: float = 0.0
    esd_discharge_w: float = 0.0

    @property
    def dynamic_w(self) -> float:
        """Total application dynamic power (sum of ``P_X``)."""
        return sum(self.app_w.values())

    @property
    def wall_w(self) -> float:
        """Power drawn from the wall: Eq. (2)'s left-hand side.

        Discharge *offsets* wall draw - the served load can exceed the wall
        draw while the battery covers the difference.
        """
        return (
            self.idle_w
            + self.cm_w
            + self.dynamic_w
            + self.esd_charge_w
            - self.esd_discharge_w
        )

    @property
    def served_w(self) -> float:
        """Power consumed by the server itself (excluding ESD flows)."""
        return self.idle_w + self.cm_w + self.dynamic_w


class PowerModel:
    """Evaluates application and server power on a given server configuration.

    Args:
        config: The server whose calibration constants parameterize the model.
        perf_model: Performance model used to derive core utilization and
            achieved DRAM traffic. If omitted, one is built from ``config``.
    """

    def __init__(self, config: ServerConfig, perf_model: PerformanceModel | None = None) -> None:
        if perf_model is not None and perf_model.config is not config:
            raise ConfigurationError(
                "perf_model was built for a different ServerConfig instance"
            )
        self._config = config
        self._perf = perf_model if perf_model is not None else PerformanceModel(config)

    @property
    def config(self) -> ServerConfig:
        """The server configuration this model was built for."""
        return self._config

    @property
    def perf_model(self) -> PerformanceModel:
        """The performance model used for utilization/traffic coupling."""
        return self._perf

    # ------------------------------------------------------------- per app

    def core_power_w(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        """Dynamic power of the app's cores at this knob setting."""
        cfg = self._config
        per_core = cfg.p_core_peak_w * (knob.freq_ghz / cfg.freq_max_ghz) ** cfg.core_power_exponent
        utilization = self._perf.core_utilization(profile, knob)
        return knob.cores * per_core * profile.activity_factor * utilization

    def dram_power_w(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        """Power of the app's DIMM: background plus traffic-proportional.

        Bounded above by the allocation ``m`` because the performance model
        limits achieved bandwidth to what ``m`` buys.
        """
        cfg = self._config
        traffic = self._perf.achieved_bandwidth_gbs(profile, knob)
        power = cfg.dram_static_w + traffic * cfg.dram_w_per_gbs
        # Guard against float drift pushing a hair over the allocation.
        return min(power, knob.dram_power_w)

    def app_power_w(self, profile: WorkloadProfile, knob: KnobSetting) -> float:
        """Total attributable dynamic power ``P_X`` of one running application."""
        return (
            self._config.p_app_floor_w
            + self.core_power_w(profile, knob)
            + self.dram_power_w(profile, knob)
        )

    def min_app_power_w(self, profile: WorkloadProfile) -> float:
        """``P_X`` at the cheapest runnable knob (the ~10 W of Section IV-B)."""
        return self.app_power_w(profile, self._config.min_knob)

    def max_app_power_w(self, profile: WorkloadProfile) -> float:
        """``P_X`` at the uncapped knob - the app's unconstrained demand."""
        return self.app_power_w(profile, self._config.max_knob)

    # ------------------------------------------------------------- server

    def server_breakdown(
        self,
        running: Mapping[str, tuple[WorkloadProfile, KnobSetting]],
        *,
        esd_charge_w: float = 0.0,
        esd_discharge_w: float = 0.0,
        deep_sleep: bool = False,
    ) -> PowerBreakdown:
        """Itemized server power with the given set of running applications.

        Args:
            running: Applications currently *executing* (suspended apps draw
                nothing), mapped to their profile and knob setting.
            esd_charge_w: Power currently charging the ESD (adds to wall draw).
            esd_discharge_w: Power currently supplied by the ESD (offsets wall
                draw).
            deep_sleep: When ``True`` and nothing is running, the sockets are
                in package PC6 - ``P_cm`` is zero. When ``False`` with nothing
                running, the uncore is still awake and ``P_cm`` is charged
                (the paper's coordinator explicitly requests deep sleep during
                collective OFF periods; a merely-idle uncore does not sleep).

        Raises:
            ConfigurationError: if both ESD flows are positive (a physical
                battery cannot charge and discharge at the same instant), or
                if ``deep_sleep`` is requested while applications run.
        """
        if esd_charge_w < 0 or esd_discharge_w < 0:
            raise ConfigurationError("ESD power flows must be non-negative")
        if esd_charge_w > 0 and esd_discharge_w > 0:
            raise ConfigurationError("ESD cannot charge and discharge simultaneously")
        if deep_sleep and running:
            raise ConfigurationError("cannot deep-sleep sockets with applications running")
        cfg = self._config
        any_active = bool(running)
        if any_active:
            cm_w = cfg.p_cm_w
        else:
            # Idle but awake: the uncore stays powered; only PC6 drops P_cm.
            cm_w = 0.0 if deep_sleep else cfg.p_cm_w
        app_w = {
            name: self.app_power_w(profile, knob)
            for name, (profile, knob) in running.items()
        }
        return PowerBreakdown(
            idle_w=cfg.p_idle_w,
            cm_w=cm_w,
            app_w=app_w,
            esd_charge_w=esd_charge_w,
            esd_discharge_w=esd_discharge_w,
        )

    def server_power_w(
        self,
        running: Mapping[str, tuple[WorkloadProfile, KnobSetting]],
        *,
        esd_charge_w: float = 0.0,
        esd_discharge_w: float = 0.0,
        deep_sleep: bool = False,
    ) -> float:
        """Wall power (Eq. 2 left-hand side) - convenience over
        :meth:`server_breakdown`."""
        return self.server_breakdown(
            running,
            esd_charge_w=esd_charge_w,
            esd_discharge_w=esd_discharge_w,
            deep_sleep=deep_sleep,
        ).wall_w
