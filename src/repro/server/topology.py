"""Server topology: sockets, cores, DIMMs, and per-application core groups.

This is the substrate behind the paper's use of ``taskset``: every admitted
application is pinned to a *core group* - a set of cores on a single socket -
and associated with that socket's DIMM/memory controller. Direct resources are
therefore partitioned (the paper's premise): two co-located applications own
disjoint cores, disjoint LLC slices (implicitly, by socket) and, when each has
a socket to itself, their own DIMM.

Core consolidation (the ``n`` knob) changes how many of the group's cores are
*active*; the group itself (the maximum footprint reserved at admission) is
fixed so consolidation never migrates an app across sockets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SchedulingError
from repro.server.config import ServerConfig


@dataclass(frozen=True)
class CoreGroup:
    """The direct-resource footprint reserved for one application.

    Attributes:
        app: Application name the group belongs to.
        socket: Socket index hosting the group.
        cores: Tuple of global core ids reserved (disjoint from all other
            groups), all on ``socket``.
        dedicated_dimm: ``True`` when the app is the only one on its socket
            and therefore owns the socket's DIMM outright.
    """

    app: str
    socket: int
    cores: tuple[int, ...]
    dedicated_dimm: bool

    @property
    def width(self) -> int:
        """Number of cores reserved (the maximum of the ``n`` knob)."""
        return len(self.cores)


class ServerTopology:
    """Tracks core/DIMM ownership for the applications admitted to a server.

    Placement policy: each new application goes to the socket with the most
    free cores (ties broken by lower socket index), mirroring a NUMA-aware
    scheduler. An application never spans sockets - the paper's knob space
    caps ``n`` at one socket's core count for exactly this reason.

    Args:
        config: Server structural parameters (socket and core counts).
    """

    def __init__(self, config: ServerConfig) -> None:
        self._config = config
        self._groups: dict[str, CoreGroup] = {}

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def groups(self) -> dict[str, CoreGroup]:
        """Live view of current reservations, keyed by application name."""
        return dict(self._groups)

    def state_dict(self) -> dict:
        """Snapshot every reservation for checkpointing."""
        return {
            "groups": {
                name: {
                    "socket": group.socket,
                    "cores": list(group.cores),
                    "dedicated_dimm": group.dedicated_dimm,
                }
                for name, group in self._groups.items()
            }
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly.

        Groups are rebuilt directly rather than re-admitted: the placement
        policy picks sockets by *current* free-core counts, so replaying
        admissions in dictionary order could place an app on a different
        socket than the original arrival order did.
        """
        self._groups = {
            name: CoreGroup(
                app=name,
                socket=int(fields["socket"]),
                cores=tuple(int(c) for c in fields["cores"]),
                dedicated_dimm=bool(fields["dedicated_dimm"]),
            )
            for name, fields in state["groups"].items()
        }

    def free_cores_on_socket(self, socket: int) -> list[int]:
        """Global core ids on ``socket`` not reserved by any group."""
        if not 0 <= socket < self._config.sockets:
            raise ConfigurationError(f"socket {socket} out of range")
        per = self._config.cores_per_socket
        socket_cores = set(range(socket * per, (socket + 1) * per))
        for group in self._groups.values():
            socket_cores -= set(group.cores)
        return sorted(socket_cores)

    def total_free_cores(self) -> int:
        """Unreserved cores across all sockets."""
        return sum(len(self.free_cores_on_socket(s)) for s in range(self._config.sockets))

    def apps_on_socket(self, socket: int) -> list[str]:
        """Names of applications whose group lives on ``socket``."""
        return sorted(
            name for name, group in self._groups.items() if group.socket == socket
        )

    def admit(self, app: str, *, width: int | None = None) -> CoreGroup:
        """Reserve a core group for ``app`` and return it.

        Args:
            app: Application name; must not already be admitted.
            width: Cores to reserve; defaults to the knob space's maximum
                (``cores_max``), so consolidation has full range.

        Raises:
            SchedulingError: when the app is already admitted or no socket
                has ``width`` free cores.
        """
        if app in self._groups:
            raise SchedulingError(f"application {app!r} is already admitted")
        if width is None:
            width = self._config.cores_max
        if not self._config.cores_min <= width <= self._config.cores_per_socket:
            raise ConfigurationError(
                f"group width {width} outside [{self._config.cores_min}, "
                f"{self._config.cores_per_socket}]"
            )
        candidates = [
            (len(self.free_cores_on_socket(s)), -s, s) for s in range(self._config.sockets)
        ]
        free, _, socket = max(candidates)
        if free < width:
            raise SchedulingError(
                f"no socket has {width} free cores for {app!r} "
                f"(best has {free}); the server is fully consolidated"
            )
        cores = tuple(self.free_cores_on_socket(socket)[:width])
        group = CoreGroup(
            app=app,
            socket=socket,
            cores=cores,
            dedicated_dimm=len(self.apps_on_socket(socket)) == 0,
        )
        self._groups[app] = group
        self._refresh_dimm_flags(socket)
        return group

    def release(self, app: str) -> None:
        """Release ``app``'s reservation (its departure, event E3).

        Raises:
            SchedulingError: if the app holds no reservation.
        """
        group = self._groups.pop(app, None)
        if group is None:
            raise SchedulingError(f"application {app!r} holds no core group")
        self._refresh_dimm_flags(group.socket)

    def group_of(self, app: str) -> CoreGroup:
        """The reservation of ``app``.

        Raises:
            SchedulingError: if the app holds no reservation.
        """
        try:
            return self._groups[app]
        except KeyError:
            raise SchedulingError(f"application {app!r} holds no core group") from None

    def taskset_mask(self, app: str, active_cores: int) -> tuple[int, ...]:
        """The cores ``app`` runs on when consolidated to ``active_cores``.

        This is the simulated equivalent of ``taskset -pc <cores> <pid>``:
        the first ``active_cores`` cores of the group, deterministically.

        Raises:
            ConfigurationError: when ``active_cores`` exceeds the group width.
        """
        group = self.group_of(app)
        if not 1 <= active_cores <= group.width:
            raise ConfigurationError(
                f"{app!r} asked for {active_cores} active cores but its group "
                f"has width {group.width}"
            )
        return group.cores[:active_cores]

    def _refresh_dimm_flags(self, socket: int) -> None:
        """Keep ``dedicated_dimm`` consistent after admissions/releases."""
        apps = self.apps_on_socket(socket)
        dedicated = len(apps) == 1
        for name in apps:
            old = self._groups[name]
            if old.dedicated_dimm != dedicated:
                self._groups[name] = CoreGroup(
                    app=old.app,
                    socket=old.socket,
                    cores=old.cores,
                    dedicated_dimm=dedicated,
                )
