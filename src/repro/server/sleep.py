"""Core and package sleep states, with wake latencies.

The paper's temporal coordination relies on two hardware facilities:

* **core power gating** - consolidating an application onto fewer cores
  power-gates the rest (the ``n`` knob); this is instantaneous at the
  simulation's time scale;
* **package deep sleep (PC6)** - during the collective OFF periods of the
  ESD-aware coordinator, all sockets enter PC6, dropping chip-maintenance
  power to zero; wake-up costs hundreds of microseconds (paper reference
  [47]), which the engine charges as lost work time on the first tick after
  wake.

:class:`SleepController` tracks the package state machine and accounts wake
penalties. It deliberately refuses transitions that physical hardware refuses
(entering PC6 with runnable tasks).
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError, SimulationError
from repro.server.config import ServerConfig


class SleepState(enum.Enum):
    """Package-level power state of the server's sockets (collectively).

    The paper's platform supports *coordinated* socket sleep: PC6 is entered
    by all sockets together when applications collectively go OFF, so a single
    state machine suffices.
    """

    ACTIVE = "active"  # at least one core may run; P_cm is drawn
    PC6 = "pc6"  # all sockets deep-sleeping; P_cm is zero


class SleepController:
    """Package sleep state machine with wake-latency accounting.

    Args:
        config: Provides the PC6 wake latency.
    """

    def __init__(self, config: ServerConfig) -> None:
        self._config = config
        self._state = SleepState.ACTIVE
        self._pending_wake_penalty_s = 0.0
        self._total_wake_penalty_s = 0.0
        self._pc6_entries = 0
        self._time_in_pc6_s = 0.0

    @property
    def state(self) -> SleepState:
        return self._state

    @property
    def in_deep_sleep(self) -> bool:
        """``True`` while the package is in PC6 (``P_cm == 0``)."""
        return self._state is SleepState.PC6

    @property
    def pc6_entries(self) -> int:
        """How many times PC6 was entered (for reporting)."""
        return self._pc6_entries

    @property
    def time_in_pc6_s(self) -> float:
        """Cumulative seconds spent in PC6."""
        return self._time_in_pc6_s

    @property
    def total_wake_penalty_s(self) -> float:
        """Cumulative work time lost to PC6 wake-ups."""
        return self._total_wake_penalty_s

    def state_dict(self) -> dict:
        """Snapshot the sleep state machine for checkpointing."""
        return {
            "state": self._state.value,
            "pending_wake_penalty_s": self._pending_wake_penalty_s,
            "total_wake_penalty_s": self._total_wake_penalty_s,
            "pc6_entries": self._pc6_entries,
            "time_in_pc6_s": self._time_in_pc6_s,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly."""
        self._state = SleepState(state["state"])
        self._pending_wake_penalty_s = float(state["pending_wake_penalty_s"])
        self._total_wake_penalty_s = float(state["total_wake_penalty_s"])
        self._pc6_entries = int(state["pc6_entries"])
        self._time_in_pc6_s = float(state["time_in_pc6_s"])

    def enter_pc6(self, runnable_apps: int) -> None:
        """Put all sockets into PC6.

        Args:
            runnable_apps: Number of applications currently *executing*.
                Must be zero - hardware will not enter package sleep with
                busy cores; the coordinator must suspend everything first.

        Raises:
            SimulationError: when called with running applications.
        """
        if runnable_apps > 0:
            raise SimulationError(
                f"cannot enter PC6 with {runnable_apps} application(s) executing"
            )
        if self._state is SleepState.PC6:
            return
        self._state = SleepState.PC6
        self._pc6_entries += 1

    def wake(self) -> float:
        """Wake the package; returns the wake latency charged (seconds).

        The latency is also queued so :meth:`consume_wake_penalty` can charge
        it against the first post-wake tick's useful work.
        """
        if self._state is SleepState.ACTIVE:
            return 0.0
        self._state = SleepState.ACTIVE
        latency = self._config.pc6_wake_latency_s
        self._pending_wake_penalty_s += latency
        self._total_wake_penalty_s += latency
        return latency

    def consume_wake_penalty(self, dt_s: float) -> float:
        """Return the fraction of ``dt_s`` usable for work after wake costs.

        The engine calls this once per tick; pending wake latency eats into
        the tick (never below zero - a latency longer than the tick spills
        into subsequent ticks).

        Raises:
            ConfigurationError: for a non-positive tick.
        """
        if dt_s <= 0:
            raise ConfigurationError("tick duration must be positive")
        if self._pending_wake_penalty_s <= 0.0:
            return 1.0
        consumed = min(self._pending_wake_penalty_s, dt_s)
        self._pending_wake_penalty_s -= consumed
        return (dt_s - consumed) / dt_s

    def advance(self, dt_s: float) -> None:
        """Engine hook: accumulate PC6 residency statistics."""
        if dt_s < 0:
            raise ConfigurationError("time cannot move backwards")
        if self._state is SleepState.PC6:
            self._time_in_pc6_s += dt_s
