"""Simulated Intel RAPL: energy counters and power-capping domains.

Real RAPL exposes, per domain (package, DRAM), a monotonically increasing
energy counter and a settable average-power limit that the hardware enforces
by throttling. The paper uses both sides: counters for *measuring* socket and
DRAM power of an application (to populate the utility matrices) and limits for
*enforcing* per-application caps in the Util-Unaware baseline and DRAM
allocations in all policies.

This module reproduces that contract:

* :class:`RaplDomain` - one counter + one limit;
* :class:`RaplInterface` - the per-server set of domains, advanced by the
  simulation engine each tick with the true per-component powers, optionally
  perturbed by measurement noise (counters on real parts have update jitter
  and quantization; the collaborative-filtering pipeline must cope with it).

Enforcement of *package* limits is performed by the engine/policies via DVFS
(as hardware RAPL effectively does); the domain here records the limit and
reports violations, mirroring how the sysfs interface behaves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Wrap range of the hardware ``energy_uj`` counter: 2^32 microjoules.
#: At an 80 W draw the counter wraps roughly every 54 seconds, so any
#: realistic run crosses it many times - consumers must difference counters
#: with :func:`energy_delta_j`, never by raw subtraction.
ENERGY_WRAP_J = 2**32 * 1e-6


def energy_delta_j(later_j: float, earlier_j: float, *, wrap_range_j: float = ENERGY_WRAP_J) -> float:
    """Wraparound-safe difference between two energy-counter readings.

    Mirrors how real RAPL consumers (e.g. ``turbostat``) difference the
    32-bit ``energy_uj`` counter: a later reading that is numerically smaller
    than the earlier one means the counter wrapped (assumed at most once per
    sampling interval, which holds for any sane sampling rate).

    Args:
        later_j: The more recent counter reading.
        earlier_j: The older counter reading.
        wrap_range_j: Counter modulus in joules.

    Returns:
        The energy accumulated between the two readings, in joules.
    """
    if wrap_range_j <= 0:
        raise ConfigurationError(f"wrap range must be positive, got {wrap_range_j}")
    delta = later_j - earlier_j
    if delta < 0:
        delta += wrap_range_j
    return delta


@dataclass
class RaplDomain:
    """One RAPL domain: an energy counter plus a power limit.

    The counter emulates the 32-bit ``energy_uj`` register of real parts: it
    accumulates modulo :attr:`wrap_range_j` (about 4294.97 J), so readers must
    use :func:`energy_delta_j` to difference two samples.

    Attributes:
        name: Domain name, e.g. ``"package-0"`` or ``"dram-1"``.
        energy_j: Energy counter in joules, modulo :attr:`wrap_range_j`.
        power_limit_w: Current average-power limit; ``None`` means uncapped.
        last_power_w: Most recent instantaneous power written by the engine.
        wrap_range_j: Counter modulus; the hardware's 2^32 uJ by default.
    """

    name: str
    energy_j: float = 0.0
    power_limit_w: float | None = None
    last_power_w: float = 0.0
    wrap_range_j: float = ENERGY_WRAP_J

    def advance(self, power_w: float, dt_s: float) -> None:
        """Accumulate ``power_w`` watts over ``dt_s`` seconds (with wrap)."""
        if power_w < 0:
            raise ConfigurationError(f"negative power {power_w} on domain {self.name}")
        if dt_s < 0:
            raise ConfigurationError("time cannot move backwards")
        self.energy_j = (self.energy_j + power_w * dt_s) % self.wrap_range_j
        self.last_power_w = power_w

    @property
    def violating(self) -> bool:
        """``True`` when the last recorded power exceeds the limit."""
        return self.power_limit_w is not None and self.last_power_w > self.power_limit_w + 1e-9


class RaplInterface:
    """The set of RAPL domains of one server and a window-based power meter.

    Domains created: one ``package-<s>`` and one ``dram-<s>`` per socket, plus
    a synthetic ``psys`` domain for full-server wall power (matching modern
    platforms' PSys plane, which the paper's wall-power measurements stand in
    for).

    Args:
        sockets: Number of sockets.
        noise_std_w: Standard deviation of gaussian measurement noise applied
            by :meth:`read_power_w`. Zero gives exact readings.
        seed: Seed for the noise generator, so experiments are reproducible.
    """

    def __init__(self, sockets: int, *, noise_std_w: float = 0.0, seed: int = 0) -> None:
        if sockets < 1:
            raise ConfigurationError("need at least one socket")
        if noise_std_w < 0:
            raise ConfigurationError("noise_std_w must be non-negative")
        self._domains: dict[str, RaplDomain] = {}
        for s in range(sockets):
            self._domains[f"package-{s}"] = RaplDomain(f"package-{s}")
            self._domains[f"dram-{s}"] = RaplDomain(f"dram-{s}")
        self._domains["psys"] = RaplDomain("psys")
        self._noise_std_w = noise_std_w
        self._rng = np.random.default_rng(seed)

    @property
    def domain_names(self) -> list[str]:
        """All domain names, sorted."""
        return sorted(self._domains)

    def domain(self, name: str) -> RaplDomain:
        """Look up a domain.

        Raises:
            ConfigurationError: for unknown names (like a bad sysfs path).
        """
        try:
            return self._domains[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown RAPL domain {name!r}; have {self.domain_names}"
            ) from None

    # ----------------------------------------------------------- persistence

    def state_dict(self) -> dict:
        """Snapshot every domain plus the noise RNG for checkpointing.

        The RNG state (``numpy`` bit-generator dict) is included so noisy
        power readings after a restore draw the exact values the
        uninterrupted run would have drawn.
        """
        return {
            "domains": {
                name: {
                    "energy_j": dom.energy_j,
                    "power_limit_w": dom.power_limit_w,
                    "last_power_w": dom.last_power_w,
                }
                for name, dom in self._domains.items()
            },
            "rng": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly."""
        for name, fields in state["domains"].items():
            dom = self.domain(name)
            dom.energy_j = float(fields["energy_j"])
            limit = fields["power_limit_w"]
            dom.power_limit_w = None if limit is None else float(limit)
            dom.last_power_w = float(fields["last_power_w"])
        self._rng.bit_generator.state = state["rng"]

    # ----------------------------------------------------------- engine side

    def advance(self, powers_w: dict[str, float], dt_s: float) -> None:
        """Engine hook: accumulate true per-domain powers over one tick.

        Domains absent from ``powers_w`` accumulate zero watts.
        """
        for name, dom in self._domains.items():
            dom.advance(powers_w.get(name, 0.0), dt_s)

    # ----------------------------------------------------------- client side

    def read_energy_j(self, name: str) -> float:
        """Read a domain's energy counter (exact; counters do not drift)."""
        return self.domain(name).energy_j

    def read_power_w(self, name: str) -> float:
        """Read a domain's instantaneous power, with measurement noise.

        Noise is truncated at zero (a counter-difference power estimate is
        never negative).
        """
        true = self.domain(name).last_power_w
        if self._noise_std_w == 0.0:
            return true
        return max(0.0, true + float(self._rng.normal(0.0, self._noise_std_w)))

    def set_power_limit(self, name: str, limit_w: float | None) -> None:
        """Set (or clear, with ``None``) a domain's average-power limit.

        Raises:
            ConfigurationError: for non-positive limits.
        """
        if limit_w is not None and limit_w <= 0:
            raise ConfigurationError(f"power limit must be positive, got {limit_w}")
        self.domain(name).power_limit_w = limit_w

    def power_limit(self, name: str) -> float | None:
        """Current limit of a domain (``None`` when uncapped)."""
        return self.domain(name).power_limit_w

    def violations(self) -> list[str]:
        """Names of domains whose last recorded power exceeded their limit."""
        return [name for name, dom in sorted(self._domains.items()) if dom.violating]
