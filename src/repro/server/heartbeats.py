"""Application heartbeats: the performance-observation side of the framework.

The paper measures application performance with the open-source Application
Heartbeats interface [41]: an instrumented application emits a heartbeat per
unit of completed work, and observers read windowed heart *rates*. Our
simulated applications emit fractional heartbeats equal to the work completed
each tick; the monitor exposes the same windowed-rate query the real library
provides, plus cumulative counts for throughput accounting.

Measurement noise is optional and seeded, for the same reason as in
:mod:`repro.server.rapl`: the collaborative-filtering calibration (Fig. 7)
must be exercised against imperfect observations.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SchedulingError


@dataclass(frozen=True)
class HeartbeatRecord:
    """One window entry: work completed in one tick.

    Attributes:
        time_s: Simulation time at the *end* of the tick.
        beats: Work units completed during the tick (fractional).
    """

    time_s: float
    beats: float


class HeartbeatMonitor:
    """Windowed heart-rate monitor for the applications on one server.

    Args:
        window_s: Length of the sliding window used by :meth:`heart_rate`.
        noise_relative_std: Relative (multiplicative) gaussian noise applied
            to rate readings; zero for exact readings.
        seed: Noise generator seed.
    """

    def __init__(
        self,
        *,
        window_s: float = 2.0,
        noise_relative_std: float = 0.0,
        seed: int = 0,
    ) -> None:
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if noise_relative_std < 0:
            raise ConfigurationError("noise_relative_std must be non-negative")
        self._window_s = window_s
        self._noise = noise_relative_std
        self._rng = np.random.default_rng(seed)
        self._histories: dict[str, deque[HeartbeatRecord]] = {}
        self._totals: dict[str, float] = {}
        self._blackout = False
        self._frozen_rates: dict[str, float] = {}
        self._last_emit_s: dict[str, float] = {}

    @property
    def window_s(self) -> float:
        return self._window_s

    def register(self, app: str) -> None:
        """Start tracking ``app``.

        Raises:
            SchedulingError: if already registered.
        """
        if app in self._histories:
            raise SchedulingError(f"application {app!r} already registered for heartbeats")
        self._histories[app] = deque()
        self._totals[app] = 0.0

    def unregister(self, app: str) -> None:
        """Stop tracking ``app`` (on departure). Its totals are discarded."""
        self._history_of(app)
        del self._histories[app]
        del self._totals[app]
        self._frozen_rates.pop(app, None)
        self._last_emit_s.pop(app, None)

    def registered(self) -> list[str]:
        """Currently tracked application names, sorted."""
        return sorted(self._histories)

    # ----------------------------------------------------------- persistence

    def state_dict(self) -> dict:
        """Snapshot registrations, windows, totals, and the noise RNG."""
        return {
            "histories": {
                app: [[rec.time_s, rec.beats] for rec in history]
                for app, history in self._histories.items()
            },
            "totals": dict(self._totals),
            "blackout": self._blackout,
            "frozen_rates": dict(self._frozen_rates),
            "last_emit_s": dict(self._last_emit_s),
            "rng": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly.

        Replaces the full registration set: apps present only in the
        snapshot are (re-)registered, apps missing from it are dropped.
        """
        self._histories = {
            app: deque(
                HeartbeatRecord(time_s=float(t), beats=float(b)) for t, b in window
            )
            for app, window in state["histories"].items()
        }
        self._totals = {app: float(v) for app, v in state["totals"].items()}
        self._blackout = bool(state["blackout"])
        self._frozen_rates = {
            app: float(v) for app, v in state["frozen_rates"].items()
        }
        # Pre-hardening checkpoints lack emission clocks: reconstruct them
        # from the windows so duplicate-tick detection survives a restore.
        self._last_emit_s = {
            app: float(v) for app, v in state.get("last_emit_s", {}).items()
        }
        for app, history in self._histories.items():
            if history and app not in self._last_emit_s:
                self._last_emit_s[app] = history[-1].time_s
        self._rng.bit_generator.state = state["rng"]

    # ----------------------------------------------------------- engine side

    def emit(self, app: str, time_s: float, beats: float) -> None:
        """Engine hook: record ``beats`` work units completed by ``app``.

        Zero-beat ticks are recorded too - a suspended application's heart
        rate must decay to zero, which only happens if the window sees its
        silence.

        Raises:
            ConfigurationError: for NaN/non-finite/negative beat counts, a
                non-finite timestamp, or a report at or before the app's
                previous emission time (a duplicate-tick report would
                double-count progress silently; rejecting it makes the
                corruption loud).
        """
        if not math.isfinite(beats):
            raise ConfigurationError(f"non-finite heartbeat count {beats}")
        if beats < 0:
            raise ConfigurationError(f"negative heartbeat count {beats}")
        if not math.isfinite(time_s):
            raise ConfigurationError(f"non-finite heartbeat timestamp {time_s}")
        history = self._history_of(app)
        last = self._last_emit_s.get(app)
        if last is not None and time_s <= last:
            raise ConfigurationError(
                f"duplicate heartbeat report for {app!r} at {time_s} s "
                f"(already reported through {last} s)"
            )
        self._last_emit_s[app] = time_s
        history.append(HeartbeatRecord(time_s=time_s, beats=beats))
        self._totals[app] += beats
        cutoff = time_s - self._window_s
        while history and history[0].time_s <= cutoff:
            history.popleft()

    # ---------------------------------------------------------- fault surface

    def set_blackout(self, active: bool) -> None:
        """Enter or leave a telemetry blackout.

        During a blackout :meth:`heart_rate` serves the rate each app had
        when the blackout began (a stuck monitoring agent keeps reporting
        its cached value) instead of fresh window data. Engine-side
        :meth:`emit` keeps recording, so rates snap back to truth on
        recovery. Used by the fault injector; clients can also consult
        :attr:`in_blackout` to distrust readings.
        """
        if active and not self._blackout:
            self._frozen_rates = {app: self._fresh_rate(app) for app in self._histories}
        if not active:
            self._frozen_rates = {}
        self._blackout = active

    @property
    def in_blackout(self) -> bool:
        """Whether rate readings are currently frozen."""
        return self._blackout

    # ----------------------------------------------------------- client side

    def heart_rate(self, app: str) -> float:
        """Windowed work rate (beats/s) of ``app``, with optional noise.

        During a blackout (see :meth:`set_blackout`) this returns the stale
        pre-blackout rate; apps registered mid-blackout read as zero.
        """
        self._history_of(app)
        if self._blackout:
            return self._frozen_rates.get(app, 0.0)
        return self._fresh_rate(app)

    def exact_rate(self, app: str) -> float:
        """The windowed rate without measurement noise; draws no RNG.

        Monitoring-side cross-checks (the mediator's TrustScorer) use this
        so that enabling defenses never perturbs the noise stream a run
        with defenses disabled would consume. Blackout semantics match
        :meth:`heart_rate`.
        """
        self._history_of(app)
        if self._blackout:
            return self._frozen_rates.get(app, 0.0)
        return self._window_rate(app)

    def _window_rate(self, app: str) -> float:
        history = self._history_of(app)
        if not history:
            return 0.0
        span = max(self._window_s, history[-1].time_s - history[0].time_s)
        return sum(record.beats for record in history) / span

    def _fresh_rate(self, app: str) -> float:
        rate = self._window_rate(app)
        if self._noise == 0.0 or rate == 0.0:
            return rate
        return max(0.0, rate * (1.0 + float(self._rng.normal(0.0, self._noise))))

    def total_beats(self, app: str) -> float:
        """Cumulative work units completed by ``app`` since registration."""
        self._history_of(app)
        return self._totals[app]

    def _history_of(self, app: str) -> deque[HeartbeatRecord]:
        try:
            return self._histories[app]
        except KeyError:
            raise SchedulingError(
                f"application {app!r} is not registered for heartbeats"
            ) from None
