"""Knob actuation: the simulated ``cpupower`` / ``taskset`` / DRAM-RAPL /
``kill -STOP|-CONT`` surface.

The paper enforces allocations with four Linux mechanisms (Section III-B):

* ``cpupower frequency-set`` - per-core DVFS (the ``f`` knob);
* ``taskset`` - core consolidation (the ``n`` knob);
* DRAM RAPL sysfs - per-DIMM power allocation (the ``m`` knob);
* ``SIGSTOP`` / ``SIGCONT`` - suspending and resuming applications for
  temporal coordination.

:class:`KnobController` is the single mutation point for all four. Policies
never poke the server state directly; they produce desired settings and the
controller validates and applies them, mirroring how the real framework shells
out to the OS tools. It also forwards DRAM allocations to the RAPL interface
so the capping domain limits stay consistent with what the policy requested.

Fault surface
-------------

Real sysfs knob writes fail: the write races a firmware update, the MSR is
stuck, or the value read back is a cached pre-write one. The controller
models this with two injectable hooks:

* ``actuation_hook(app, requested, current) -> applied | None`` - decides
  what actually lands when a knob is written (``None`` = write dropped);
* ``readback_hook(app, true_knob) -> reported`` - what a client sees when it
  reads the knob back (stale-readback faults lie here).

:meth:`KnobController.set_knob` *verifies* every write by readback and
returns ``False`` when the observed setting differs from the request; failed
writes are parked in a registry that the mediator's actuation retrier drains
with exponential backoff. ``suspend``/``resume`` are signal-based
(``SIGSTOP``/``SIGCONT``) and deliberately bypass both hooks - that is the
emergency path's guarantee when RAPL actuation is down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import KnobError, SchedulingError
from repro.server.config import KnobSetting, ServerConfig
from repro.server.rapl import RaplInterface
from repro.server.topology import ServerTopology


def hardware_throttle_path(config: ServerConfig) -> list[KnobSetting]:
    """The fixed order in which hardware enforcement sheds power.

    1. DVFS steps down (all cores, full DRAM) - what package RAPL does;
    2. core reduction at the floor frequency (idle injection, as Linux's
       ``intel_powerclamp`` does when DVFS alone cannot meet the limit);
    3. DRAM allocation steps down at the minimum compute configuration.

    The path is identical for every application - that blindness is what
    distinguishes hardware capping (and the paper's baselines, which use
    it) from the utility-aware schemes.
    """
    freqs = config.frequencies_ghz
    nmax, mmax = config.cores_max, config.dram_power_max_w
    path = [KnobSetting(f, nmax, mmax) for f in reversed(freqs)]
    path += [
        KnobSetting(freqs[0], n, mmax)
        for n in range(nmax - 1, config.cores_min - 1, -1)
    ]
    path += [
        KnobSetting(freqs[0], config.cores_min, m)
        for m in reversed(config.dram_powers_w[:-1])
    ]
    return path


@dataclass
class AppControlState:
    """Mutable actuation state of one admitted application.

    Attributes:
        knob: Current ``(f, n, m)`` setting.
        suspended: ``True`` while the app is SIGSTOPped (draws no dynamic
            power, makes no progress, and its private-cache state decays).
    """

    knob: KnobSetting
    suspended: bool = False


class KnobController:
    """Validated actuation of per-application power knobs.

    Args:
        config: The knob space to validate against.
        topology: Core-group reservations; consolidation cannot exceed an
            app's reserved group width.
        rapl: RAPL interface whose per-socket DRAM domains receive the ``m``
            limits.
    """

    def __init__(
        self,
        config: ServerConfig,
        topology: ServerTopology,
        rapl: RaplInterface,
    ) -> None:
        self._config = config
        self._topology = topology
        self._rapl = rapl
        self._states: dict[str, AppControlState] = {}
        #: Fault hooks (installed by a FaultInjector, None when healthy).
        self.actuation_hook: Optional[
            Callable[[str, KnobSetting, KnobSetting], Optional[KnobSetting]]
        ] = None
        self.readback_hook: Optional[Callable[[str, KnobSetting], KnobSetting]] = None
        self._failed_writes: dict[str, KnobSetting] = {}

    # ------------------------------------------------------------ lifecycle

    def attach(self, app: str, initial: KnobSetting | None = None) -> AppControlState:
        """Begin controlling ``app`` (it must already hold a core group).

        Args:
            app: Application name.
            initial: Starting knob; defaults to the uncapped maximum.

        Raises:
            SchedulingError: if already attached or not admitted.
        """
        if app in self._states:
            raise SchedulingError(f"application {app!r} is already attached")
        self._topology.group_of(app)  # raises SchedulingError when absent
        knob = initial if initial is not None else self._config.max_knob
        self._validate(app, knob)
        state = AppControlState(knob=knob)
        self._states[app] = state
        self._push_dram_limit(app)
        return state

    def detach(self, app: str) -> None:
        """Stop controlling ``app`` (on departure)."""
        self._state_of(app)
        del self._states[app]
        self._failed_writes.pop(app, None)

    def attached(self) -> list[str]:
        """Names under control, sorted."""
        return sorted(self._states)

    # ---------------------------------------------------------- persistence

    def state_dict(self) -> dict:
        """Snapshot per-app control state and the failed-write registry.

        Fault hooks are *not* captured - they are closures owned by the
        fault injector, which reinstalls them after its own restore.
        """
        return {
            "states": {
                app: {"knob": state.knob.to_json(), "suspended": state.suspended}
                for app, state in self._states.items()
            },
            "failed_writes": {
                app: knob.to_json() for app, knob in self._failed_writes.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly.

        Settings are written directly, bypassing :meth:`set_knob`: actuation
        hooks must not fire during a restore, and the DRAM RAPL limits are
        restored verbatim by the RAPL interface's own snapshot rather than
        re-derived here.
        """
        self._states = {
            app: AppControlState(
                knob=KnobSetting.from_json(fields["knob"]),
                suspended=bool(fields["suspended"]),
            )
            for app, fields in state["states"].items()
        }
        self._failed_writes = {
            app: KnobSetting.from_json(raw)
            for app, raw in state["failed_writes"].items()
        }

    # ------------------------------------------------------------ actuation

    def set_knob(self, app: str, knob: KnobSetting) -> bool:
        """Apply a full ``(f, n, m)`` setting to ``app`` and verify it.

        Equivalent to one ``cpupower`` + one ``taskset`` + one DRAM-RAPL
        write followed by a readback. Raises
        :class:`~repro.errors.KnobError` for settings outside the discrete
        knob space or beyond the app's reserved core group.

        Returns:
            ``True`` when the readback matches the request; ``False`` when
            the write was dropped, landed partially, or reads back stale
            (the desired setting is then parked in :meth:`failed_writes`
            for the retry machinery).
        """
        self._validate(app, knob)
        state = self._state_of(app)
        applied: KnobSetting | None = knob
        if self.actuation_hook is not None:
            applied = self.actuation_hook(app, knob, state.knob)
        if applied is not None:
            state.knob = applied
        self._push_dram_limit(app)
        if self.readback(app) == knob:
            self._failed_writes.pop(app, None)
            return True
        self._failed_writes[app] = knob
        return False

    def set_frequency(self, app: str, freq_ghz: float) -> None:
        """DVFS-only change (``cpupower frequency-set``)."""
        state = self._state_of(app)
        self.set_knob(app, KnobSetting(freq_ghz, state.knob.cores, state.knob.dram_power_w))

    def set_cores(self, app: str, cores: int) -> None:
        """Consolidation-only change (``taskset``)."""
        state = self._state_of(app)
        self.set_knob(app, KnobSetting(state.knob.freq_ghz, cores, state.knob.dram_power_w))

    def set_dram_power(self, app: str, dram_power_w: float) -> None:
        """DRAM-allocation-only change (DRAM RAPL sysfs write)."""
        state = self._state_of(app)
        self.set_knob(app, KnobSetting(state.knob.freq_ghz, state.knob.cores, dram_power_w))

    def suspend(self, app: str) -> None:
        """``SIGSTOP`` the app: it stops drawing dynamic power and making
        progress. Idempotent."""
        self._state_of(app).suspended = True

    def resume(self, app: str) -> None:
        """``SIGCONT`` the app. Idempotent."""
        self._state_of(app).suspended = False

    # ------------------------------------------------------------- queries

    def knob_of(self, app: str) -> KnobSetting:
        """True current setting of ``app`` (the engine-side ground truth)."""
        return self._state_of(app).knob

    def readback(self, app: str) -> KnobSetting:
        """Client-visible setting of ``app`` (what a sysfs read returns).

        Identical to :meth:`knob_of` on a healthy controller; under a
        stale-readback fault it may lag the true setting.
        """
        true = self._state_of(app).knob
        if self.readback_hook is not None:
            return self.readback_hook(app, true)
        return true

    def failed_writes(self) -> dict[str, KnobSetting]:
        """Desired settings whose last write did not verify, by app name."""
        return dict(self._failed_writes)

    def clear_failed_write(self, app: str) -> None:
        """Drop ``app`` from the failed-writes registry (give up retrying)."""
        self._failed_writes.pop(app, None)

    def is_suspended(self, app: str) -> bool:
        """Whether ``app`` is currently SIGSTOPped."""
        return self._state_of(app).suspended

    def running_apps(self) -> list[str]:
        """Attached apps that are not suspended, sorted."""
        return sorted(name for name, s in self._states.items() if not s.suspended)

    # ------------------------------------------------------------- internal

    def _state_of(self, app: str) -> AppControlState:
        try:
            return self._states[app]
        except KeyError:
            raise SchedulingError(f"application {app!r} is not attached") from None

    def _validate(self, app: str, knob: KnobSetting) -> None:
        self._config.validate_knob(knob)
        group = self._topology.group_of(app)
        if knob.cores > group.width:
            raise KnobError(
                f"{app!r} asked for {knob.cores} cores but its core group "
                f"has width {group.width}"
            )

    def _push_dram_limit(self, app: str) -> None:
        """Mirror the app's ``m`` into its socket's DRAM RAPL domain.

        When two apps share a socket, the domain limit is the sum of their
        allocations (each app's share is enforced by the model's per-app
        bandwidth accounting; the physical domain caps the DIMM total).
        """
        group = self._topology.group_of(app)
        total = 0.0
        for name in self._topology.apps_on_socket(group.socket):
            if name in self._states:
                total += self._states[name].knob.dram_power_w
        self._rapl.set_power_limit(f"dram-{group.socket}", total if total > 0 else None)
