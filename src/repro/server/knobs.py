"""Knob actuation: the simulated ``cpupower`` / ``taskset`` / DRAM-RAPL /
``kill -STOP|-CONT`` surface.

The paper enforces allocations with four Linux mechanisms (Section III-B):

* ``cpupower frequency-set`` - per-core DVFS (the ``f`` knob);
* ``taskset`` - core consolidation (the ``n`` knob);
* DRAM RAPL sysfs - per-DIMM power allocation (the ``m`` knob);
* ``SIGSTOP`` / ``SIGCONT`` - suspending and resuming applications for
  temporal coordination.

:class:`KnobController` is the single mutation point for all four. Policies
never poke the server state directly; they produce desired settings and the
controller validates and applies them, mirroring how the real framework shells
out to the OS tools. It also forwards DRAM allocations to the RAPL interface
so the capping domain limits stay consistent with what the policy requested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KnobError, SchedulingError
from repro.server.config import KnobSetting, ServerConfig
from repro.server.rapl import RaplInterface
from repro.server.topology import ServerTopology


def hardware_throttle_path(config: ServerConfig) -> list[KnobSetting]:
    """The fixed order in which hardware enforcement sheds power.

    1. DVFS steps down (all cores, full DRAM) - what package RAPL does;
    2. core reduction at the floor frequency (idle injection, as Linux's
       ``intel_powerclamp`` does when DVFS alone cannot meet the limit);
    3. DRAM allocation steps down at the minimum compute configuration.

    The path is identical for every application - that blindness is what
    distinguishes hardware capping (and the paper's baselines, which use
    it) from the utility-aware schemes.
    """
    freqs = config.frequencies_ghz
    nmax, mmax = config.cores_max, config.dram_power_max_w
    path = [KnobSetting(f, nmax, mmax) for f in reversed(freqs)]
    path += [
        KnobSetting(freqs[0], n, mmax)
        for n in range(nmax - 1, config.cores_min - 1, -1)
    ]
    path += [
        KnobSetting(freqs[0], config.cores_min, m)
        for m in reversed(config.dram_powers_w[:-1])
    ]
    return path


@dataclass
class AppControlState:
    """Mutable actuation state of one admitted application.

    Attributes:
        knob: Current ``(f, n, m)`` setting.
        suspended: ``True`` while the app is SIGSTOPped (draws no dynamic
            power, makes no progress, and its private-cache state decays).
    """

    knob: KnobSetting
    suspended: bool = False


class KnobController:
    """Validated actuation of per-application power knobs.

    Args:
        config: The knob space to validate against.
        topology: Core-group reservations; consolidation cannot exceed an
            app's reserved group width.
        rapl: RAPL interface whose per-socket DRAM domains receive the ``m``
            limits.
    """

    def __init__(
        self,
        config: ServerConfig,
        topology: ServerTopology,
        rapl: RaplInterface,
    ) -> None:
        self._config = config
        self._topology = topology
        self._rapl = rapl
        self._states: dict[str, AppControlState] = {}

    # ------------------------------------------------------------ lifecycle

    def attach(self, app: str, initial: KnobSetting | None = None) -> AppControlState:
        """Begin controlling ``app`` (it must already hold a core group).

        Args:
            app: Application name.
            initial: Starting knob; defaults to the uncapped maximum.

        Raises:
            SchedulingError: if already attached or not admitted.
        """
        if app in self._states:
            raise SchedulingError(f"application {app!r} is already attached")
        self._topology.group_of(app)  # raises SchedulingError when absent
        knob = initial if initial is not None else self._config.max_knob
        self._validate(app, knob)
        state = AppControlState(knob=knob)
        self._states[app] = state
        self._push_dram_limit(app)
        return state

    def detach(self, app: str) -> None:
        """Stop controlling ``app`` (on departure)."""
        self._state_of(app)
        del self._states[app]

    def attached(self) -> list[str]:
        """Names under control, sorted."""
        return sorted(self._states)

    # ------------------------------------------------------------ actuation

    def set_knob(self, app: str, knob: KnobSetting) -> None:
        """Apply a full ``(f, n, m)`` setting to ``app``.

        Equivalent to one ``cpupower`` + one ``taskset`` + one DRAM-RAPL
        write. Raises :class:`~repro.errors.KnobError` for settings outside
        the discrete knob space or beyond the app's reserved core group.
        """
        self._validate(app, knob)
        self._state_of(app).knob = knob
        self._push_dram_limit(app)

    def set_frequency(self, app: str, freq_ghz: float) -> None:
        """DVFS-only change (``cpupower frequency-set``)."""
        state = self._state_of(app)
        self.set_knob(app, KnobSetting(freq_ghz, state.knob.cores, state.knob.dram_power_w))

    def set_cores(self, app: str, cores: int) -> None:
        """Consolidation-only change (``taskset``)."""
        state = self._state_of(app)
        self.set_knob(app, KnobSetting(state.knob.freq_ghz, cores, state.knob.dram_power_w))

    def set_dram_power(self, app: str, dram_power_w: float) -> None:
        """DRAM-allocation-only change (DRAM RAPL sysfs write)."""
        state = self._state_of(app)
        self.set_knob(app, KnobSetting(state.knob.freq_ghz, state.knob.cores, dram_power_w))

    def suspend(self, app: str) -> None:
        """``SIGSTOP`` the app: it stops drawing dynamic power and making
        progress. Idempotent."""
        self._state_of(app).suspended = True

    def resume(self, app: str) -> None:
        """``SIGCONT`` the app. Idempotent."""
        self._state_of(app).suspended = False

    # ------------------------------------------------------------- queries

    def knob_of(self, app: str) -> KnobSetting:
        """Current setting of ``app``."""
        return self._state_of(app).knob

    def is_suspended(self, app: str) -> bool:
        """Whether ``app`` is currently SIGSTOPped."""
        return self._state_of(app).suspended

    def running_apps(self) -> list[str]:
        """Attached apps that are not suspended, sorted."""
        return sorted(name for name, s in self._states.items() if not s.suspended)

    # ------------------------------------------------------------- internal

    def _state_of(self, app: str) -> AppControlState:
        try:
            return self._states[app]
        except KeyError:
            raise SchedulingError(f"application {app!r} is not attached") from None

    def _validate(self, app: str, knob: KnobSetting) -> None:
        self._config.validate_knob(knob)
        group = self._topology.group_of(app)
        if knob.cores > group.width:
            raise KnobError(
                f"{app!r} asked for {knob.cores} cores but its core group "
                f"has width {group.width}"
            )

    def _push_dram_limit(self, app: str) -> None:
        """Mirror the app's ``m`` into its socket's DRAM RAPL domain.

        When two apps share a socket, the domain limit is the sum of their
        allocations (each app's share is enforced by the model's per-app
        bandwidth accounting; the physical domain caps the DIMM total).
        """
        group = self._topology.group_of(app)
        total = 0.0
        for name in self._topology.apps_on_socket(group.socket):
            if name in self._states:
                total += self._states[name].knob.dram_power_w
        self._rapl.set_power_limit(f"dram-{group.socket}", total if total > 0 else None)
