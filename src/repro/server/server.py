"""The discrete-time server engine tying the substrate together.

:class:`SimulatedServer` owns one of everything from this package - topology,
power model, performance model, RAPL interface, heartbeat monitor, sleep
controller and knob controller - and advances them coherently one tick at a
time. Policies and coordinators interact with it exactly as the paper's
framework interacts with a Linux box:

* **admit / remove** applications (which reserves/releases core groups and
  registers heartbeats) - the arrival (E2) and departure (E3) substrate;
* **actuate** knobs through :attr:`SimulatedServer.knobs`;
* **observe** power through :attr:`SimulatedServer.rapl` and performance
  through :attr:`SimulatedServer.heartbeats`;
* **advance** time with :meth:`SimulatedServer.tick`, optionally declaring
  ESD charge/discharge flows and package deep sleep for that tick.

The engine never makes policy decisions. It faithfully reports what the
hardware would do given the current actuation state, including the costs the
paper calls out: PC6 wake latency and the private-cache penalty on resuming a
suspended application.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.engine import VectorPerformanceModel, VectorPowerModel, validate_engine
from repro.errors import ConfigurationError, SchedulingError, SimulationError
from repro.server.config import KnobSetting, ServerConfig, DEFAULT_SERVER_CONFIG
from repro.server.heartbeats import HeartbeatMonitor
from repro.server.knobs import KnobController
from repro.server.perf_model import PerformanceModel
from repro.server.power_model import PowerBreakdown, PowerModel
from repro.server.rapl import RaplInterface
from repro.server.sleep import SleepController
from repro.server.topology import ServerTopology
from repro.workloads.profiles import WorkloadProfile


@dataclass
class ApplicationHandle:
    """Lifecycle record of one admitted application.

    Attributes:
        name: Unique name on this server (an app may appear once).
        profile: Its workload profile (response surface + total work).
        admitted_at_s: Simulation time of admission.
        work_done: Work units completed so far.
        completed: ``True`` once ``work_done >= profile.total_work``.
        completed_at_s: Completion time, or ``None``.
        resume_debt_s: Outstanding private-cache refill time to charge
            against the next executing ticks (set on resume-after-suspend).
        resumes: Number of suspend->resume transitions (reporting).
        hung: ``True`` while the process is live-locked: it keeps drawing
            its allocated power but completes zero work (the nastiest
            fault class for a utility-aware allocator, which sees spend
            without progress). Set/cleared by the fault injector.
    """

    name: str
    profile: WorkloadProfile
    admitted_at_s: float
    work_done: float = 0.0
    completed: bool = False
    completed_at_s: float | None = None
    resume_debt_s: float = 0.0
    resumes: int = 0
    hung: bool = False

    @property
    def remaining_work(self) -> float:
        """Work units left until completion (never negative)."""
        return max(0.0, self.profile.total_work - self.work_done)

    @property
    def progress_fraction(self) -> float:
        """Completed fraction in ``[0, 1]`` (0 for infinite workloads)."""
        if self.profile.total_work == float("inf"):
            return 0.0
        return min(1.0, self.work_done / self.profile.total_work)


@dataclass(frozen=True)
class TickResult:
    """What happened during one engine tick.

    Attributes:
        time_s: Simulation time at the *end* of the tick.
        dt_s: Tick duration.
        breakdown: Itemized server power during the tick.
        progressed: Work units completed per running application.
        completed: Applications that finished during this tick, sorted.
    """

    time_s: float
    dt_s: float
    breakdown: PowerBreakdown
    progressed: dict[str, float] = field(default_factory=dict)
    completed: tuple[str, ...] = ()


class SimulatedServer:
    """One power-managed server. See the module docstring for the contract.

    Args:
        config: Hardware parameters; defaults to the paper's Table I.
        power_noise_std_w: Gaussian noise on RAPL power readings.
        perf_noise_relative_std: Relative noise on heartbeat rates.
        seed: Seed for both noise sources (reproducibility).
        engine: ``"scalar"`` for the reference Python models, ``"vector"``
            for the surface-cached fast path (:mod:`repro.engine`). The two
            are bit-identical - same trace hashes, same state dicts - so the
            choice is purely a speed knob; it is construction-time config
            (like the noise parameters) and not part of :meth:`state_dict`.
    """

    def __init__(
        self,
        config: ServerConfig = DEFAULT_SERVER_CONFIG,
        *,
        power_noise_std_w: float = 0.0,
        perf_noise_relative_std: float = 0.0,
        seed: int = 0,
        engine: str = "scalar",
    ) -> None:
        self._config = config
        self._engine = validate_engine(engine)
        self._topology = ServerTopology(config)
        if self._engine == "vector":
            self._perf: PerformanceModel = VectorPerformanceModel(config)
            self._power: PowerModel = VectorPowerModel(config, self._perf)
        else:
            self._perf = PerformanceModel(config)
            self._power = PowerModel(config, self._perf)
        self._rapl = RaplInterface(config.sockets, noise_std_w=power_noise_std_w, seed=seed)
        self._heartbeats = HeartbeatMonitor(
            noise_relative_std=perf_noise_relative_std, seed=seed + 1
        )
        self._sleep = SleepController(config)
        self._knobs = KnobController(config, self._topology, self._rapl)
        self._handles: dict[str, ApplicationHandle] = {}
        self._now_s = 0.0
        # Strategic-tenant hooks (repro.adversary): extra watts a tenant's
        # parasitic threads burn while it runs, and the factor by which it
        # over-reports heartbeat progress. Empty for honest populations.
        self._parasitic_w: dict[str, float] = {}
        self._hb_inflation: dict[str, float] = {}

    # ------------------------------------------------------------ accessors

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def engine(self) -> str:
        """Which model implementation backs this server (``scalar``/``vector``)."""
        return self._engine

    @property
    def topology(self) -> ServerTopology:
        return self._topology

    @property
    def perf_model(self) -> PerformanceModel:
        return self._perf

    @property
    def power_model(self) -> PowerModel:
        return self._power

    @property
    def rapl(self) -> RaplInterface:
        return self._rapl

    @property
    def heartbeats(self) -> HeartbeatMonitor:
        return self._heartbeats

    @property
    def sleep(self) -> SleepController:
        return self._sleep

    @property
    def knobs(self) -> KnobController:
        return self._knobs

    @property
    def now_s(self) -> float:
        """Current simulation time (seconds since construction)."""
        return self._now_s

    # ---------------------------------------------------------- persistence

    def state_dict(self) -> dict:
        """Snapshot the whole substrate for checkpointing.

        Composes the per-component snapshots (topology, RAPL, heartbeats,
        sleep, knobs) with the engine's own lifecycle records and clock. The
        models (:class:`PowerModel`, :class:`PerformanceModel`) are pure
        functions of the config and carry no state.
        """
        return {
            "now_s": self._now_s,
            "handles": {
                name: {
                    "profile": handle.profile.to_dict(),
                    "admitted_at_s": handle.admitted_at_s,
                    "work_done": handle.work_done,
                    "completed": handle.completed,
                    "completed_at_s": handle.completed_at_s,
                    "resume_debt_s": handle.resume_debt_s,
                    "resumes": handle.resumes,
                    "hung": handle.hung,
                }
                for name, handle in self._handles.items()
            },
            "topology": self._topology.state_dict(),
            "rapl": self._rapl.state_dict(),
            "heartbeats": self._heartbeats.state_dict(),
            "sleep": self._sleep.state_dict(),
            "knobs": self._knobs.state_dict(),
            "parasitic_w": dict(self._parasitic_w),
            "hb_inflation": dict(self._hb_inflation),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly.

        Handles are rebuilt rather than re-admitted - admission has placement
        side effects (socket choice, initial knobs, heartbeat registration)
        that the component snapshots already capture verbatim. Callers that
        track phased profiles must re-link ``handle.profile`` to their own
        segment instances afterwards (see the mediator's restore).
        """
        self._now_s = float(state["now_s"])
        self._handles = {}
        for name, fields in state["handles"].items():
            completed_at = fields["completed_at_s"]
            self._handles[name] = ApplicationHandle(
                name=name,
                profile=WorkloadProfile.from_dict(fields["profile"]),
                admitted_at_s=float(fields["admitted_at_s"]),
                work_done=float(fields["work_done"]),
                completed=bool(fields["completed"]),
                completed_at_s=None if completed_at is None else float(completed_at),
                resume_debt_s=float(fields["resume_debt_s"]),
                resumes=int(fields["resumes"]),
                hung=bool(fields["hung"]),
            )
        self._topology.load_state_dict(state["topology"])
        self._rapl.load_state_dict(state["rapl"])
        self._heartbeats.load_state_dict(state["heartbeats"])
        self._sleep.load_state_dict(state["sleep"])
        self._knobs.load_state_dict(state["knobs"])
        # Pre-adversary checkpoints lack these keys: default to honest.
        self._parasitic_w = {
            k: float(v) for k, v in state.get("parasitic_w", {}).items()
        }
        self._hb_inflation = {
            k: float(v) for k, v in state.get("hb_inflation", {}).items()
        }

    # ------------------------------------------------------------ lifecycle

    def admit(
        self,
        profile: WorkloadProfile,
        *,
        initial_knob: KnobSetting | None = None,
        start_suspended: bool = False,
        group_width: int | None = None,
    ) -> ApplicationHandle:
        """Admit an application: reserve cores, register heartbeats, attach
        knobs. This is the substrate of arrival event E2.

        Args:
            profile: The application to admit; ``profile.name`` must be
                unique on this server.
            initial_knob: Starting knob (defaults to the uncapped maximum,
                clamped to the group width when one is given).
            start_suspended: Admit in the suspended state - used when a
                coordinator wants to stage the app into a duty-cycle slot.
            group_width: Cores to reserve (defaults to the knob space's
                maximum). Narrower groups let more than one application per
                socket co-exist with full direct-resource isolation - e.g.
                four 3-core applications on the Table I platform.

        Raises:
            SchedulingError: duplicate name or no core group available.
        """
        if profile.name in self._handles:
            raise SchedulingError(
                f"application {profile.name!r} is already on this server"
            )
        group = self._topology.admit(profile.name, width=group_width)
        if initial_knob is None and group.width < self._config.cores_max:
            initial_knob = KnobSetting(
                self._config.freq_max_ghz, group.width, self._config.dram_power_max_w
            )
        try:
            self._knobs.attach(profile.name, initial_knob)
            self._heartbeats.register(profile.name)
        except Exception:
            # Roll back the reservation so a failed admit leaves no residue.
            self._topology.release(profile.name)
            raise
        if start_suspended:
            self._knobs.suspend(profile.name)
        handle = ApplicationHandle(
            name=profile.name, profile=profile, admitted_at_s=self._now_s
        )
        self._handles[profile.name] = handle
        return handle

    def remove(self, app: str) -> ApplicationHandle:
        """Remove an application and release its resources (event E3).

        Returns the final handle (with completion statistics).
        """
        handle = self.handle_of(app)
        self._knobs.detach(app)
        self._heartbeats.unregister(app)
        self._topology.release(app)
        del self._handles[app]
        self._parasitic_w.pop(app, None)
        self._hb_inflation.pop(app, None)
        return handle

    def handle_of(self, app: str) -> ApplicationHandle:
        """Lifecycle record of an admitted application.

        Raises:
            SchedulingError: when the app is not on this server.
        """
        try:
            return self._handles[app]
        except KeyError:
            raise SchedulingError(f"application {app!r} is not on this server") from None

    def applications(self) -> list[str]:
        """Names of all admitted applications, sorted."""
        return sorted(self._handles)

    def active_applications(self) -> list[str]:
        """Admitted, not suspended, not completed - the apps that will
        execute on the next tick."""
        return [
            name
            for name in self._knobs.running_apps()
            if not self._handles[name].completed
        ]

    # -------------------------------------------------------- suspend/resume

    def suspend(self, app: str) -> None:
        """Suspend ``app`` (temporal coordination OFF period)."""
        self.handle_of(app)
        self._knobs.suspend(app)

    def resume(self, app: str) -> None:
        """Resume ``app``, charging the private-cache refill penalty.

        A resume of an app that was not suspended is a no-op (idempotent,
        like ``SIGCONT``) and charges nothing.
        """
        handle = self.handle_of(app)
        if self._knobs.is_suspended(app) and not handle.completed:
            handle.resume_debt_s += self._config.resume_penalty_s
            handle.resumes += 1
        self._knobs.resume(app)

    # ------------------------------------------------------ adversary hooks

    def set_parasitic_power_w(self, app: str, watts: float) -> None:
        """Declare extra watts ``app`` burns beyond its knob-implied draw.

        This is the substrate of contention-probe / power-spike / free-ride
        attacks: the tenant spins parasitic threads the mediator never
        allocated. The draw shows up in the tick's power breakdown (and so
        in RAPL and the wall meter) attributed to ``app``, but only while
        the app actually executes - a suspended process burns nothing.
        Setting 0 restores honesty. Idempotent.

        Raises:
            ConfigurationError: negative or non-finite watts.
            SchedulingError: app not admitted.
        """
        if not math.isfinite(watts) or watts < 0.0:
            raise ConfigurationError(
                f"parasitic power must be finite and non-negative, got {watts}"
            )
        self.handle_of(app)
        if watts == 0.0:
            self._parasitic_w.pop(app, None)
        else:
            self._parasitic_w[app] = watts

    def set_heartbeat_inflation(self, app: str, factor: float) -> None:
        """Scale the heartbeat progress ``app`` reports by ``factor``.

        A factor above 1 is the heartbeat-inflation attack: the app claims
        more progress than its power draw supports. True work accounting
        (``handle.work_done``, completion) is untouched - only the *report*
        lies. Setting 1.0 restores honesty. Idempotent.

        Raises:
            ConfigurationError: non-finite or negative factor.
            SchedulingError: app not admitted.
        """
        if not math.isfinite(factor) or factor < 0.0:
            raise ConfigurationError(
                f"heartbeat inflation factor must be finite and non-negative, got {factor}"
            )
        self.handle_of(app)
        if factor == 1.0:
            self._hb_inflation.pop(app, None)
        else:
            self._hb_inflation[app] = factor

    def parasitic_power_of(self, app: str) -> float:
        """Current parasitic draw declared for ``app`` (0 when honest)."""
        return self._parasitic_w.get(app, 0.0)

    def heartbeat_inflation_of(self, app: str) -> float:
        """Current heartbeat inflation factor for ``app`` (1 when honest)."""
        return self._hb_inflation.get(app, 1.0)

    # -------------------------------------------------------------- the tick

    def tick(
        self,
        dt_s: float,
        *,
        esd_charge_w: float = 0.0,
        esd_discharge_w: float = 0.0,
        deep_sleep: bool = False,
    ) -> TickResult:
        """Advance the server by ``dt_s`` seconds.

        Args:
            dt_s: Tick duration (positive).
            esd_charge_w / esd_discharge_w: ESD power flows the coordinator
                scheduled for this tick; they enter the wall-power equation.
            deep_sleep: Put (or keep) the package in PC6 for this tick.
                Requires no active applications.

        Returns:
            A :class:`TickResult` with the power breakdown and progress.

        Raises:
            SimulationError / ConfigurationError: on physically impossible
                requests (deep sleep with running apps, negative flows, ...).
        """
        if dt_s <= 0:
            raise ConfigurationError("tick duration must be positive")

        active = self.active_applications()
        if deep_sleep:
            self._sleep.enter_pc6(len(active))
        elif self._sleep.in_deep_sleep:
            self._sleep.wake()
        usable_fraction = self._sleep.consume_wake_penalty(dt_s)

        running = {
            name: (self._handles[name].profile, self._knobs.knob_of(name))
            for name in active
        }
        breakdown = self._power.server_breakdown(
            running,
            esd_charge_w=esd_charge_w,
            esd_discharge_w=esd_discharge_w,
            deep_sleep=deep_sleep and not active,
        )
        # Parasitic threads burn real power on top of the knob-implied draw.
        # They are attributed to their owner, so the wall meter, RAPL and
        # per-app attribution all see the true (inflated) consumption.
        parasites = {
            name: self._parasitic_w[name]
            for name in running
            if self._parasitic_w.get(name, 0.0) > 0.0
        }
        if parasites:
            app_w = dict(breakdown.app_w)
            for name, extra in parasites.items():
                app_w[name] = app_w.get(name, 0.0) + extra
            breakdown = PowerBreakdown(
                idle_w=breakdown.idle_w,
                cm_w=breakdown.cm_w,
                app_w=app_w,
                esd_charge_w=breakdown.esd_charge_w,
                esd_discharge_w=breakdown.esd_discharge_w,
            )

        end_time = self._now_s + dt_s
        progressed: dict[str, float] = {}
        completed: list[str] = []
        for name, (profile, knob) in running.items():
            handle = self._handles[name]
            useful_s = dt_s * usable_fraction
            if handle.resume_debt_s > 0.0:
                refill = min(handle.resume_debt_s, useful_s)
                handle.resume_debt_s -= refill
                useful_s -= refill
            # A hung process burns its whole allocation but completes nothing.
            work = 0.0 if handle.hung else self._perf.rate(profile, knob) * useful_s
            work = min(work, handle.remaining_work)
            handle.work_done += work
            progressed[name] = work
            if handle.remaining_work <= 0.0 and not handle.completed:
                handle.completed = True
                handle.completed_at_s = end_time
                completed.append(name)
                # A finished process exits: stop scheduling it.
                self._knobs.suspend(name)

        # Heartbeats: every registered app emits (zero when not progressing),
        # so windowed rates decay naturally during OFF periods. An inflating
        # tenant scales its *report* here; true work accounting above is
        # untouched.
        for name in self._handles:
            beats = progressed.get(name, 0.0)
            factor = self._hb_inflation.get(name)
            if factor is not None:
                beats *= factor
            self._heartbeats.emit(name, end_time, beats)

        self._rapl.advance(self._domain_powers(running, breakdown), dt_s)
        self._sleep.advance(dt_s)
        self._now_s = end_time
        return TickResult(
            time_s=end_time,
            dt_s=dt_s,
            breakdown=breakdown,
            progressed=progressed,
            completed=tuple(sorted(completed)),
        )

    # ------------------------------------------------------------ utilities

    def true_response(
        self, app: str, knob: KnobSetting
    ) -> tuple[float, float]:
        """Oracle ``(P_X watts, work rate)`` of ``app`` at ``knob``.

        Used by tests and by exhaustive-oracle baselines; the online learning
        pipeline instead *runs* the app at sampled knobs and reads the noisy
        RAPL/heartbeat observations.
        """
        profile = self.handle_of(app).profile
        return (
            self._power.app_power_w(profile, knob),
            self._perf.rate(profile, knob),
        )

    def assert_within_cap(self, cap_w: float, *, tolerance_w: float = 1e-6) -> None:
        """Raise :class:`SimulationError` when the last tick's wall power
        exceeded ``cap_w``. Policies call this as a self-check."""
        last = self._rapl.domain("psys").last_power_w
        if last > cap_w + tolerance_w:
            raise SimulationError(
                f"wall power {last:.3f} W exceeded the cap {cap_w:.3f} W"
            )

    def _domain_powers(
        self,
        running: dict[str, tuple[WorkloadProfile, KnobSetting]],
        breakdown: PowerBreakdown,
    ) -> dict[str, float]:
        """Attribute component powers to RAPL domains for counter updates."""
        powers: dict[str, float] = {"psys": breakdown.wall_w}
        per_socket_cm = breakdown.cm_w / self._config.sockets
        for s in range(self._config.sockets):
            pkg = per_socket_cm
            dram = 0.0
            for name in self._topology.apps_on_socket(s):
                if name not in running:
                    continue
                profile, knob = running[name]
                pkg += self._config.p_app_floor_w + self._power.core_power_w(profile, knob)
                # Parasitic threads live on the owner's cores: package domain.
                pkg += self._parasitic_w.get(name, 0.0)
                dram += self._power.dram_power_w(profile, knob)
            powers[f"package-{s}"] = pkg
            powers[f"dram-{s}"] = dram
        return powers
