"""The cap-distribution control plane: safety, leases, epochs, recovery."""

import pytest

from repro.cluster.controlplane import (
    CapAck,
    ClusterController,
    ControlPlaneConfig,
    NodeAgent,
    SetCapCmd,
    run_control_plane,
)
from repro.errors import NetworkError
from repro.netsim import CONTROLLER, NetConfig, PartitionWindow, SimNetwork
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import (
    CONTROL_PLANE_KINDS,
    TraceBus,
    verify_trace,
)


def clean_run(n_nodes=4, budget_w=400.0, steps=30, **kwargs):
    defaults = dict(
        n_nodes=n_nodes,
        budget_w=budget_w,
        loaded_counts=[n_nodes] * steps,
        net=NetConfig(seed=1),
        quantum_w=2.0,
    )
    defaults.update(kwargs)
    return run_control_plane(**defaults)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lease_steps": 1},
            {"renew_before_steps": 0},
            {"renew_before_steps": 10, "lease_steps": 10},
            {"heartbeat_every_steps": 0},
            {"suspect_after_steps": 2, "heartbeat_every_steps": 2},
            {"safe_guard_band": 0.0},
            {"safe_guard_band": 1.0},
        ],
    )
    def test_bad_config(self, kwargs):
        with pytest.raises(NetworkError):
            ControlPlaneConfig(**kwargs)

    def test_bad_schedules(self):
        with pytest.raises(NetworkError):
            run_control_plane(
                n_nodes=2, budget_w=100.0, loaded_counts=[], net=NetConfig()
            )
        with pytest.raises(NetworkError):
            run_control_plane(
                n_nodes=2, budget_w=100.0, loaded_counts=[3], net=NetConfig()
            )
        with pytest.raises(NetworkError):
            run_control_plane(
                n_nodes=2,
                budget_w=100.0,
                loaded_counts=[1, 1],
                down_sets=[frozenset()],
                net=NetConfig(),
            )


class TestCleanNetwork:
    def test_converges_to_even_full_budget_split(self):
        out = clean_run()
        assert out.safe_cap_w == 90.0  # quantized (1-0.1)*400/4
        assert out.caps_w[0] == (90.0,) * 4  # nothing granted yet: safe caps
        assert out.caps_w[-1] == (100.0,) * 4  # full budget distributed
        assert out.max_total_cap_w <= out.budget_w + 1e-6

    def test_epochs_are_unique_and_monotone_per_node(self):
        out = clean_run()
        assert len(set(out.node_epochs)) == len(out.node_epochs)
        assert all(0 < e <= out.final_epoch for e in out.node_epochs)

    def test_unloaded_nodes_hold_safe_cap_only(self):
        out = clean_run(loaded_counts=[2] * 30)
        final = out.caps_w[-1]
        assert final[2] == final[3] == out.safe_cap_w
        assert final[0] == final[1] > out.safe_cap_w

    def test_rated_cap_clamps_grants(self):
        out = clean_run(rated_cap_w=95.0)
        assert out.caps_w[-1] == (95.0,) * 4
        assert out.max_total_cap_w <= out.budget_w + 1e-6

    def test_deterministic_replay(self):
        assert clean_run() == clean_run()


class TestLeasesAndEpochs:
    def test_partitioned_node_falls_back_to_safe_cap(self):
        # Node 0 is cut off for long enough that its lease must lapse.
        out = clean_run(
            steps=60,
            net=NetConfig(partitions=(PartitionWindow(20, 50, (0,)),), seed=1),
        )
        mid = out.caps_w[40]
        assert mid[0] == out.safe_cap_w  # lease expired behind the cut
        assert out.caps_w[-1][0] > out.safe_cap_w  # re-granted after heal
        assert out.max_total_cap_w <= out.budget_w + 1e-6

    def test_budget_never_exceeded_during_redistribution(self):
        # While the cut node's lease is still live its extra must NOT be
        # re-granted; the sum stays bounded through the whole handover.
        out = clean_run(
            steps=80,
            net=NetConfig(partitions=(PartitionWindow(20, 60, (0, 1)),), seed=3),
        )
        for row in out.caps_w:
            assert sum(row) <= out.budget_w + 1e-6

    def test_stale_epoch_rejected_by_agent(self):
        config = ControlPlaneConfig()
        metrics = MetricsRegistry()
        net = SimNetwork(NetConfig(), n_nodes=1)
        agent = NodeAgent(
            0, safe_cap_w=50.0, rated_cap_w=100.0, config=config, metrics=metrics
        )
        net.send(CONTROLLER, 0, SetCapCmd(0, epoch=5, extra_w=10.0, lease_expiry_step=20), 0)
        agent.step(1, net)
        assert agent.epoch == 5 and agent.extra_w == 10.0
        # A delayed lower-epoch command must not roll the node back.
        net.send(CONTROLLER, 0, SetCapCmd(0, epoch=3, extra_w=40.0, lease_expiry_step=30), 1)
        agent.step(2, net)
        assert agent.epoch == 5 and agent.extra_w == 10.0
        assert metrics.counter("controlplane.epoch_rejections").value == 1
        # The rejection ack reports the node's true state.
        acks = [m for _, m in net.deliver(CONTROLLER, 3) if isinstance(m, CapAck)]
        assert acks[-1].rejected and acks[-1].epoch == 5

    def test_lease_expiry_on_agent_clock(self):
        agent = NodeAgent(
            0, safe_cap_w=50.0, rated_cap_w=100.0, config=ControlPlaneConfig()
        )
        net = SimNetwork(NetConfig(), n_nodes=1)
        net.send(CONTROLLER, 0, SetCapCmd(0, epoch=1, extra_w=10.0, lease_expiry_step=5), 0)
        agent.step(1, net)
        assert agent.effective_cap_w(4) == 60.0
        assert agent.effective_cap_w(5) == 50.0  # absolute expiry
        agent.step(5, net)
        assert agent.extra_w == 0.0


class TestLeaseExpiryEdges:
    """The awkward ticks: expiry meeting heal, flapping, stale duplicates."""

    def test_renewal_on_expiry_tick_replaces_dead_lease_atomically(self):
        # A heal that delivers the renewal on the very tick the old lease
        # dies must never produce a step where both grants count - and
        # never a gap where the node is stuck at safe cap despite the
        # renewal having landed.
        agent = NodeAgent(
            0, safe_cap_w=50.0, rated_cap_w=200.0, config=ControlPlaneConfig()
        )
        net = SimNetwork(NetConfig(), n_nodes=1)
        net.send(CONTROLLER, 0, SetCapCmd(0, epoch=1, extra_w=30.0, lease_expiry_step=10), 0)
        agent.step(1, net)
        assert agent.effective_cap_w(9) == 80.0
        # Dead on the agent's own clock at exactly the expiry step.
        assert agent.effective_cap_w(10) == 50.0
        net.send(CONTROLLER, 0, SetCapCmd(0, epoch=2, extra_w=40.0, lease_expiry_step=25), 9)
        agent.step(10, net)
        assert agent.epoch == 2
        assert agent.live_extra_w(10) == 40.0
        assert agent.effective_cap_w(10) == 90.0

    def test_pool_frees_on_the_exact_tick_the_lease_dies(self):
        # Both sides use strict ``expiry > step``: the controller reclaims
        # the watts on the same tick the agent stops enforcing them, so
        # there is neither a double-spend window nor a dead-watt gap.
        config = ControlPlaneConfig()
        controller = ClusterController(
            2, 200.0, quantum_w=2.0, rated_cap_w=200.0, config=config
        )
        net = SimNetwork(NetConfig(), n_nodes=2)
        controller.step(0, net, loaded=frozenset({0, 1}))
        expiry = config.lease_steps  # grants issued at step 0
        assert controller.outstanding_w(0, expiry - 1) > 0
        assert controller.outstanding_w(0, expiry) == 0.0

    def test_heartbeat_flapping_across_detection_threshold(self):
        # Node 0 blinks in bursts shorter and longer than the suspicion
        # threshold. Whatever the detector decides on each blink, the
        # budget must hold every step and the fleet must settle evenly
        # once the flapping stops.
        steps = 120
        blinks = [(40, 44), (48, 55), (58, 61), (64, 72)]
        down = [
            frozenset({0}) if any(a <= t < b for a, b in blinks) else frozenset()
            for t in range(steps)
        ]
        metrics = MetricsRegistry()
        out = clean_run(
            steps=steps, down_sets=down, net=NetConfig(seed=6), metrics=metrics
        )
        for row in out.caps_w:
            assert sum(row) <= out.budget_w + 1e-6
        # The long blinks cross the threshold; each suspicion must be
        # matched by a reintegration once the node blinks back on.
        assert metrics.counter("controlplane.suspects").value >= 1
        assert (
            metrics.counter("controlplane.reintegrations").value
            == metrics.counter("controlplane.suspects").value
        )
        assert out.caps_w[-1] == (100.0,) * 4

    def test_duplicate_ack_after_epoch_bump_is_a_no_op(self):
        # The network duplicates the epoch-1 ack and delivers the copy
        # after the node already acked the epoch-2 renewal. The stale
        # duplicate is not evidence of a lost grant: no reconciliation
        # reissue, no epoch churn.
        config = ControlPlaneConfig()
        controller = ClusterController(
            1, 100.0, quantum_w=2.0, rated_cap_w=100.0, config=config
        )
        net = SimNetwork(NetConfig(), n_nodes=1)

        def pump(step):
            """Play the node: ack every command, heartbeat the rest."""
            acks = []
            for _, m in net.deliver(0, step):
                if isinstance(m, SetCapCmd):
                    ack = CapAck(
                        node=0,
                        epoch=m.epoch,
                        extra_w=m.extra_w,
                        lease_expiry_step=m.lease_expiry_step,
                    )
                    net.send(0, CONTROLLER, ack, step)
                    acks.append(ack)
            return acks

        acked = []
        for step in range(9):
            acked += pump(step)
            controller.step(step, net, loaded=frozenset({0}))
        # The initial grant was acked, then its renewal under a new epoch.
        assert len(acked) >= 2 and acked[-1].epoch > acked[0].epoch
        settled_epoch = controller.issued_epoch(0)
        assert settled_epoch == acked[-1].epoch
        # Deliver the duplicate of the old ack after the bump.
        net.send(0, CONTROLLER, acked[0], 8)
        controller.step(9, net, loaded=frozenset({0}))
        assert controller.issued_epoch(0) == settled_epoch
        reissues = [
            m
            for _, m in net.deliver(0, 11)
            if isinstance(m, SetCapCmd) and m.epoch > settled_epoch
        ]
        assert reissues == []


class TestFailureDetection:
    def test_dead_node_is_suspected_and_pool_reclaimed(self):
        steps = 60
        down = [
            frozenset({0}) if 20 <= t < 45 else frozenset() for t in range(steps)
        ]
        metrics = MetricsRegistry()
        out = run_control_plane(
            n_nodes=4,
            budget_w=400.0,
            loaded_counts=[4] * steps,
            down_sets=down,
            net=NetConfig(seed=2),
            quantum_w=2.0,
            metrics=metrics,
        )
        assert metrics.counter("controlplane.suspects").value >= 1
        assert metrics.counter("controlplane.reintegrations").value >= 1
        # While node 0 is dead its expired extras flow to the survivors.
        mid = out.caps_w[40]
        assert mid[0] == out.safe_cap_w
        assert mid[1] > out.caps_w[10][1]
        # After recovery the fleet re-balances evenly.
        assert out.caps_w[-1] == (100.0,) * 4

    def test_outage_knowledge_is_inferred_not_oracle(self):
        # The controller's suspicion must lag the actual death by the
        # heartbeat silence window - instant reaction means oracle leakage.
        steps = 40
        down = [frozenset({1}) if t >= 10 else frozenset() for t in range(steps)]
        trace = TraceBus()
        run_control_plane(
            n_nodes=3,
            budget_w=300.0,
            loaded_counts=[3] * steps,
            down_sets=down,
            net=NetConfig(seed=0),
            quantum_w=2.0,
            trace_bus=trace,
        )
        suspects = [
            e for e in trace.events if e.kind == "cp-suspect" and e.payload["node"] == 1
        ]
        assert suspects and suspects[0].payload["step"] > 10


class TestObservability:
    def test_trace_verifies_and_covers_protocol_kinds(self):
        trace = TraceBus()
        clean_run(
            steps=60,
            net=NetConfig(
                loss=0.2, partitions=(PartitionWindow(15, 45, (0,)),), seed=4
            ),
            trace_bus=trace,
        )
        verify_trace(trace.events)
        kinds = {e.kind for e in trace.events}
        assert "cp-command" in kinds and "cp-ack" in kinds
        assert kinds & CONTROL_PLANE_KINDS
        assert "cp-lease-expired" in kinds  # the 30-step cut outlives a lease

    def test_trace_hash_is_seed_deterministic(self):
        def hash_of(seed):
            trace = TraceBus()
            clean_run(net=NetConfig(loss=0.3, seed=seed), trace_bus=trace)
            return trace.content_hash()

        assert hash_of(5) == hash_of(5)
        assert hash_of(5) != hash_of(6)

    def test_retry_metrics_flow_under_loss(self):
        metrics = MetricsRegistry()
        clean_run(steps=60, net=NetConfig(loss=0.4, seed=8), metrics=metrics)
        assert metrics.counter("controlplane.commands").value > 0
        assert metrics.counter("controlplane.retries").value > 0
        assert metrics.counter("netsim.dropped_loss").value > 0


class TestControllerAccounting:
    def test_outstanding_tracks_unacked_grants(self):
        controller = ClusterController(
            2,
            200.0,
            quantum_w=2.0,
            rated_cap_w=200.0,
            config=ControlPlaneConfig(),
        )
        net = SimNetwork(NetConfig(), n_nodes=2)
        controller.step(0, net, loaded=frozenset({0, 1}))
        # Commands issued but unacked: the extras count as outstanding.
        assert controller.outstanding_w(0, 1) > 0
        assert (
            controller.outstanding_w(0, 1) + controller.outstanding_w(1, 1)
            <= controller.extras_pool_w + 1e-9
        )

    def test_restart_hold_is_visible_and_bounded(self):
        # During the hold the outstanding accounting may under-count the
        # dead incarnation's grants, so callers (the hierarchy's deferred
        # shrink gate) must be able to see exactly when it ends.
        config = ControlPlaneConfig()
        controller = ClusterController(
            2, 200.0, quantum_w=2.0, rated_cap_w=200.0, config=config
        )
        assert not controller.in_safe_hold(0)
        controller.restart(5, epochs_to_skip=4)
        assert controller.in_safe_hold(5)
        assert controller.in_safe_hold(5 + config.lease_steps - 1)
        assert not controller.in_safe_hold(5 + config.lease_steps)

    def test_grow_waits_for_free_pool(self):
        # One node holds the whole pool; the controller must not grow the
        # other node's grant until the first shrinks or expires.
        config = ControlPlaneConfig()
        controller = ClusterController(
            2, 200.0, quantum_w=2.0, rated_cap_w=200.0, config=config
        )
        net = SimNetwork(NetConfig(), n_nodes=2)
        agents = [
            NodeAgent(i, safe_cap_w=controller.safe_cap_w, rated_cap_w=200.0, config=config)
            for i in range(2)
        ]
        # Only node 0 loaded: it gets the whole pool.
        for step in range(10):
            for agent in agents:
                agent.step(step, net)
            controller.step(step, net, loaded=frozenset({0}))
        whole_pool = controller.extras_pool_w
        assert agents[0].live_extra_w(9) == whole_pool
        # Now both loaded: node 1's target is half the pool, but the watts
        # must be freed by node 0's acked shrink (or expiry) first.
        for step in range(10, 30):
            for agent in agents:
                agent.step(step, net)
            controller.step(step, net, loaded=frozenset({0, 1}))
            total_out = controller.outstanding_w(0, step) + controller.outstanding_w(1, step)
            assert total_out <= whole_pool + 1e-9
        assert agents[0].live_extra_w(29) == agents[1].live_extra_w(29)
