"""Consolidation planner and trace walker."""

import pytest

from repro.errors import ConfigurationError
from repro.cluster.migration import ConsolidationPlanner, ConsolidationWalker
from repro.workloads.catalog import CATALOG
from repro.workloads.mixes import all_mixes
from repro.workloads.profiles import WorkloadProfile


def apps_for(k):
    result = []
    for idx, mix in enumerate(all_mixes()[:k]):
        for p in mix.profiles():
            result.append(WorkloadProfile.from_dict({**p.to_dict(), "name": f"{p.name}@{idx}"}))
    return result


@pytest.fixture()
def planner(config):
    return ConsolidationPlanner(config)


class TestServerLoad:
    def test_two_native_apps(self, planner, config):
        power, perfs = planner.server_load(list(all_mixes()[0].profiles()))
        assert len(perfs) == 2
        assert all(v == pytest.approx(1.0) for v in perfs.values())
        assert power <= config.uncapped_power_w

    def test_empty_server_is_idle(self, planner, config):
        power, perfs = planner.server_load([])
        assert power == config.p_idle_w
        assert perfs == {}

    def test_isolation_limit_enforced(self, planner):
        with pytest.raises(ConfigurationError):
            planner.server_load(apps_for(2))  # 4 apps > 2-socket limit


class TestPlanning:
    def test_unconstrained_budget_is_native(self, planner, config):
        apps = apps_for(10)
        plan = planner.plan(apps, cluster_cap_w=10 * config.uncapped_power_w, n_servers=10)
        assert len(plan.servers) == 10
        assert plan.dropped == ()
        assert plan.aggregate_perf == pytest.approx(20.0, rel=0.01)

    def test_budget_quantizes_at_rated_power(self, planner, config):
        apps = apps_for(10)
        cap = 4.5 * config.uncapped_power_w  # affords exactly 4 rated servers
        plan = planner.plan(apps, cap, n_servers=10)
        assert len(plan.servers) == 4
        assert len(plan.dropped) == 12  # 20 offered, 8 hosted

    def test_actual_draw_fits_budget(self, planner, config):
        apps = apps_for(10)
        for cap in (300.0, 600.0, 900.0):
            plan = planner.plan(apps, cap, n_servers=10)
            assert plan.total_power_w <= cap + 1e-9

    def test_zero_affordable_servers(self, planner, config):
        plan = planner.plan(apps_for(2), cluster_cap_w=100.0, n_servers=10)
        assert plan.servers == ()
        assert plan.aggregate_perf == 0.0

    def test_invalid_cap_rejected(self, planner):
        with pytest.raises(ConfigurationError):
            planner.plan(apps_for(1), 0.0, n_servers=10)


class TestMigrationCounting:
    def test_no_migrations_from_cold_start(self, planner):
        plan = planner.plan(apps_for(3), 1000.0, n_servers=10)
        assert planner.migrations_between(None, plan) == 0

    def test_identical_plans_have_no_migrations(self, planner):
        a = planner.plan(apps_for(3), 1000.0, n_servers=10)
        b = planner.plan(apps_for(3), 1000.0, n_servers=10)
        assert planner.migrations_between(a, b) == 0

    def test_shrinking_budget_causes_migrations(self, planner, config):
        wide = planner.plan(apps_for(5), 5 * config.uncapped_power_w, n_servers=10)
        narrow = planner.plan(apps_for(5), 3 * config.uncapped_power_w, n_servers=10)
        assert planner.migrations_between(wide, narrow) > 0


class TestWalker:
    def test_steady_state_replans_once(self, planner):
        walker = ConsolidationWalker(planner, 10, replan_interval_s=600.0)
        apps = apps_for(4)
        for _ in range(5):
            perf, power = walker.step(apps, 2000.0, 60.0)
            assert perf > 0
        assert walker.total_migrations == 0

    def test_emergency_shedding_on_cap_drop(self, planner, config):
        walker = ConsolidationWalker(planner, 10, replan_interval_s=3600.0)
        apps = apps_for(6)
        perf_before, power_before = walker.step(apps, 2000.0, 60.0)
        # The cap collapses mid-interval: the walker cannot replan yet and
        # must shed servers immediately.
        perf_after, power_after = walker.step(apps, 2 * config.uncapped_power_w, 60.0)
        assert power_after <= 2 * config.uncapped_power_w + 1e-9
        assert perf_after < perf_before

    def test_boot_latency_charged_on_expansion(self, planner, config):
        walker = ConsolidationWalker(
            planner, 10, replan_interval_s=0.0, boot_latency_s=30.0
        )
        walker.step(apps_for(2), 2000.0, 60.0)
        perf, _ = walker.step(apps_for(6), 2000.0, 60.0)
        steady, _ = walker.step(apps_for(6), 2000.0, 60.0)
        assert perf < steady  # newly powered servers were booting

    def test_invalid_construction_rejected(self, planner):
        with pytest.raises(ConfigurationError):
            ConsolidationWalker(planner, 0)
        with pytest.raises(ConfigurationError):
            ConsolidationWalker(planner, 10, replan_interval_s=-1.0)

    def test_invalid_step_rejected(self, planner):
        walker = ConsolidationWalker(planner, 10)
        with pytest.raises(ConfigurationError):
            walker.step(apps_for(1), 1000.0, 0.0)
