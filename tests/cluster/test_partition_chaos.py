"""Partition-chaos soaks and the netsim-integrated cluster experiment.

The quick tier always runs a handful of composed schedules; the full
acceptance matrix (20 seeds, loss up to 30%, partitions up to 25% of the
trace, composed with node kills) is opt-in via ``REPRO_SOAK=1`` and runs in
CI's soak job.
"""

import os

import pytest

from repro.chaos import (
    kill_outages,
    partition_schedule,
    run_partition_chaos,
    run_partition_soak,
)
from repro.cluster.cluster import ClusterSimulator, NodeOutage, validate_outages
from repro.errors import ChaosError, ConfigurationError
from repro.netsim import NetConfig, PartitionWindow
from repro.workloads.mixes import all_mixes
from repro.workloads.traces import ClusterPowerTrace

SOAK = os.environ.get("REPRO_SOAK") == "1"


class TestSchedules:
    def test_partition_schedule_respects_bounds(self):
        for seed in range(10):
            windows = partition_schedule(
                100, 10, windows=2, max_fraction=0.25, seed=seed
            )
            for w in windows:
                assert w.end_step - w.start_step <= 25
                assert 1 <= len(w.nodes) <= 5  # never a fleet majority
                assert w.end_step <= 100 + 25

    def test_partition_schedule_deterministic(self):
        a = partition_schedule(100, 10, windows=3, max_fraction=0.2, seed=7)
        assert a == partition_schedule(100, 10, windows=3, max_fraction=0.2, seed=7)

    def test_kill_outages_never_overlap_per_node(self):
        for seed in range(10):
            outages = kill_outages(120, 4, kills=6, max_down_steps=30, seed=seed)
            # validate_outages raising would mean same-node overlap.
            validate_outages(outages, n_steps=120, n_servers=4)
            assert all(o.end_step <= 120 for o in outages)

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            partition_schedule(100, 10, windows=1, max_fraction=1.5, seed=0)
        with pytest.raises(ConfigurationError):
            run_partition_chaos(seed=0, loss=1.0)
        with pytest.raises(ConfigurationError):
            run_partition_soak(seeds=[])


class TestQuickChaos:
    def test_composed_run_holds_the_invariant(self):
        result = run_partition_chaos(seed=1, n_steps=80)
        assert result.headroom_w >= 0.0
        assert result.outcome.zombie_free
        assert result.partition_steps > 0
        assert result.killed_node_steps > 0

    def test_small_severity_sweep(self):
        soak = run_partition_soak(seeds=[0, 1, 2, 3], n_steps=80)
        assert len(soak.runs) == 4
        assert soak.min_headroom_w >= 0.0
        # The sweep actually ramps severity.
        assert soak.runs[0].loss < soak.runs[-1].loss == pytest.approx(0.3)

    def test_zombie_detection_raises_chaoserror(self, monkeypatch):
        import repro.chaos.partition as partition_mod

        class FakeOutcome:
            zombie_free = False

        def fake_run(**kwargs):
            return FakeOutcome()

        monkeypatch.setattr(partition_mod, "run_control_plane", fake_run)
        with pytest.raises(ChaosError, match="zombie|extra"):
            run_partition_chaos(seed=0)


class TestClusterIntegration:
    @pytest.fixture(scope="class")
    def small(self):
        sim = ClusterSimulator(mixes=all_mixes()[:3], cap_grid_w=6.0)
        trace = ClusterPowerTrace.synthetic_diurnal(
            peak_w=sim.uncapped_cluster_power_w(), days=0.15, step_s=600.0, seed=3
        )
        return sim, trace

    def run(self, sim, trace, **kwargs):
        return sim.run(
            trace=trace,
            shave_fractions=(0.30,),
            duration_s=6.0,
            warmup_s=2.0,
            seed=1,
            **kwargs,
        )

    def test_netsim_none_is_the_oracle_path(self, small):
        sim, trace = small
        a = self.run(sim, trace)
        b = self.run(sim, trace, netsim=None)
        assert a.results == b.results

    def test_netsim_degrades_but_stays_valid(self, small):
        sim, trace = small
        oracle = self.run(sim, trace)
        net = NetConfig(
            loss=0.2,
            jitter_steps=1,
            partitions=(PartitionWindow(3, 8, (1,)),),
            seed=5,
        )
        lossy = self.run(
            sim,
            trace,
            netsim=net,
            outages=(NodeOutage(server=0, start_step=6, end_step=10),),
        )
        for policy in ("equal-rapl", "equal-ours"):
            o = oracle.results[0.30][policy]
            n = lossy.results[0.30][policy]
            assert 0.0 <= n.aggregate_performance <= o.aggregate_performance + 1e-9
        # Consolidation keeps its oracle placement either way.
        assert (
            lossy.results[0.30]["consolidation-migration"].aggregate_performance
            == oracle.results[0.30]["consolidation-migration"].aggregate_performance
        )

    def test_netsim_run_is_deterministic(self, small):
        sim, trace = small
        net = NetConfig(loss=0.25, jitter_steps=2, seed=9)
        a = self.run(sim, trace, netsim=net)
        b = self.run(sim, trace, netsim=net)
        assert a.results == b.results


@pytest.mark.skipif(not SOAK, reason="set REPRO_SOAK=1 to run the full soak")
class TestAcceptanceSoak:
    def test_twenty_seeds_full_severity(self):
        # The acceptance matrix: >= 20 seeded schedules, loss up to 30%,
        # partitions up to 25% of the trace, composed with node kills.
        soak = run_partition_soak(
            seeds=list(range(20)),
            n_nodes=10,
            n_steps=120,
            max_loss=0.3,
            partition_fraction=0.25,
            kills=2,
        )
        assert len(soak.runs) == 20
        assert soak.min_headroom_w >= 0.0
        assert soak.total_partition_steps > 0
        assert soak.total_killed_node_steps > 0
