"""Power-aware job placement (the paper's future-work extension)."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.cluster.scheduler import PLACEMENT_POLICIES, PowerAwareScheduler
from repro.workloads.catalog import CATALOG


def scheduler(config, caps=(100.0, 100.0), **kwargs):
    return PowerAwareScheduler(config, list(caps), **kwargs)


class TestConstruction:
    def test_strategies_enumerated(self):
        assert "power-aware" in PLACEMENT_POLICIES
        assert "first-fit" in PLACEMENT_POLICIES

    def test_empty_cluster_rejected(self, config):
        with pytest.raises(ConfigurationError):
            PowerAwareScheduler(config, [])

    def test_invalid_cap_rejected(self, config):
        with pytest.raises(ConfigurationError):
            PowerAwareScheduler(config, [0.0])

    def test_unknown_strategy_rejected(self, config):
        with pytest.raises(ConfigurationError):
            scheduler(config, strategy="tetris")


class TestPlacement:
    def test_place_and_remove(self, config):
        sched = scheduler(config)
        placement = sched.place(CATALOG["kmeans"])
        assert placement.server is not None
        sched.remove("kmeans")
        assert all(not s.apps for s in sched.servers)

    def test_duplicate_placement_rejected(self, config):
        sched = scheduler(config)
        sched.place(CATALOG["kmeans"])
        with pytest.raises(SchedulingError):
            sched.place(CATALOG["kmeans"])

    def test_remove_unknown_rejected(self, config):
        with pytest.raises(SchedulingError):
            scheduler(config).remove("ghost")

    def test_full_cluster_returns_none(self, config):
        sched = scheduler(config, caps=(100.0,), capacity=1)
        sched.place(CATALOG["kmeans"])
        placement = sched.place(CATALOG["stream"])
        assert placement.server is None

    def test_capacity_respected(self, config):
        sched = scheduler(config, caps=(100.0,), capacity=2)
        for name in ("kmeans", "stream"):
            assert sched.place(CATALOG[name]).server == 0
        assert sched.place(CATALOG["sssp"]).server is None

    def test_round_robin_cycles(self, config):
        sched = scheduler(config, caps=(100.0, 100.0, 100.0), strategy="round-robin")
        targets = [sched.place(CATALOG[n]).server for n in ("kmeans", "stream", "sssp")]
        assert targets == [0, 1, 2]

    def test_first_fit_fills_in_order(self, config):
        sched = scheduler(config, caps=(100.0, 100.0), strategy="first-fit")
        targets = [sched.place(CATALOG[n]).server for n in ("kmeans", "stream", "sssp")]
        assert targets == [0, 0, 1]


class TestPowerAwareness:
    def test_prefers_the_slack_cap(self, config):
        """An empty tight-capped server loses to an empty loose one."""
        sched = scheduler(config, caps=(75.0, 120.0))
        placement = sched.place(CATALOG["kmeans"])
        assert placement.server == 1

    def test_avoids_crowding_a_struggling_server(self, config):
        """With a tight cap, joining the loaded server scores below taking
        an empty one - even though both have free cores."""
        sched = scheduler(config, caps=(90.0, 90.0))
        sched.place(CATALOG["kmeans"])
        second = sched.place(CATALOG["pagerank"])
        assert second.server != sched.servers[0].index or not sched.servers[0].apps

    def test_marginal_gain_is_nonnegative_for_free_budget(self, config):
        sched = scheduler(config, caps=(130.0,))
        gain = sched.marginal_gain(sched.servers[0], CATALOG["kmeans"])
        assert gain == pytest.approx(1.0, abs=0.05)  # uncapped newcomer

    def test_zero_budget_scores_zero(self, config):
        sched = scheduler(config, caps=(60.0,))
        gain = sched.marginal_gain(sched.servers[0], CATALOG["kmeans"])
        assert gain == 0.0

    def test_cap_update_changes_choices(self, config):
        sched = scheduler(config, caps=(100.0, 100.0))
        sched.set_cap(0, 70.0)
        placement = sched.place(CATALOG["kmeans"])
        assert placement.server == 1

    def test_beats_first_fit_under_heterogeneous_caps(self, config):
        """The headline property of the extension (averaged, seeded)."""
        import numpy as np

        names = sorted(CATALOG)
        rng = np.random.default_rng(7)
        totals = {"power-aware": 0.0, "first-fit": 0.0}
        for _ in range(8):
            order = list(rng.choice(names, size=4, replace=False))
            caps = list(rng.choice([75.0, 85.0, 100.0, 120.0], size=4))
            for strategy in totals:
                sched = PowerAwareScheduler(config, caps, strategy=strategy)
                for name in order:
                    sched.place(CATALOG[name])
                totals[strategy] += sched.cluster_objective()
        assert totals["power-aware"] > totals["first-fit"] * 1.1

    def test_cluster_objective_sums_servers(self, config):
        sched = scheduler(config, caps=(100.0, 100.0))
        sched.place(CATALOG["kmeans"])
        sched.place(CATALOG["stream"])
        total = sum(sched.server_objective(s) for s in sched.servers)
        assert sched.cluster_objective() == pytest.approx(total)
