"""Cluster-manager per-bin evaluators."""

import pytest

from repro.errors import ConfigurationError
from repro.cluster.manager import evaluate_equal_policy_bin
from repro.workloads.mixes import all_mixes


class TestEqualPolicyBin:
    def test_unknown_strategy_rejected(self, config):
        with pytest.raises(ConfigurationError):
            evaluate_equal_policy_bin(
                "round-robin", all_mixes()[:1], 90.0, config=config, cache={}
            )

    def test_uncapped_fast_path_skips_simulation(self, config):
        cache = {}
        evaluation = evaluate_equal_policy_bin(
            "equal-rapl",
            all_mixes()[:2],
            130.0,
            config=config,
            cache=cache,
            loaded_powers_w=[108.0, 110.0],
        )
        assert evaluation.aggregate_perf == pytest.approx(4.0)
        assert cache == {}  # nothing simulated

    def test_sub_idle_cap_parks_at_idle(self, config):
        cache = {}
        evaluation = evaluate_equal_policy_bin(
            "equal-rapl",
            all_mixes()[:1],
            40.0,
            config=config,
            cache=cache,
        )
        assert evaluation.aggregate_perf == 0.0
        assert evaluation.cluster_power_w == config.p_idle_w

    def test_cache_reused_across_calls(self, config):
        cache = {}
        for _ in range(2):
            evaluate_equal_policy_bin(
                "equal-rapl",
                all_mixes()[:1],
                95.0,
                config=config,
                cache=cache,
                duration_s=3.0,
                warmup_s=1.0,
            )
        assert len(cache) == 1

    def test_capped_bin_simulates_and_respects_cap(self, config):
        cache = {}
        evaluation = evaluate_equal_policy_bin(
            "equal-rapl",
            all_mixes()[:1],
            95.0,
            config=config,
            cache=cache,
            duration_s=3.0,
            warmup_s=1.0,
        )
        assert 0.0 < evaluation.aggregate_perf < 2.0
        assert evaluation.cluster_power_w <= 95.0 + 1e-6

    def test_ours_beats_rapl_at_stringent_bin(self, config):
        cache = {}
        kwargs = dict(
            config=config, cache=cache, duration_s=20.0, warmup_s=10.0
        )
        rapl = evaluate_equal_policy_bin(
            "equal-rapl", all_mixes()[:1], 80.0, **kwargs
        )
        ours = evaluate_equal_policy_bin(
            "equal-ours", all_mixes()[:1], 80.0, **kwargs
        )
        assert ours.aggregate_perf > rapl.aggregate_perf
