"""ClusterSimulator: load inversion, binding logic, Fig. 12 orderings."""

import pytest

from repro.errors import ConfigurationError
from repro.cluster.cluster import ClusterSimulator
from repro.workloads.mixes import all_mixes
from repro.workloads.traces import ClusterPowerTrace


@pytest.fixture(scope="module")
def sim(config):
    return ClusterSimulator(config)


@pytest.fixture(scope="module")
def experiment(config):
    """One shared coarse run (the expensive fixture of this module)."""
    simulator = ClusterSimulator(config)
    trace = ClusterPowerTrace.synthetic_diurnal(
        peak_w=simulator.uncapped_cluster_power_w(), step_s=300.0, seed=1
    )
    return simulator.run(
        trace=trace, duration_s=15.0, warmup_s=8.0, shave_fractions=(0.15, 0.45)
    )


class TestStructure:
    def test_ten_servers_by_default(self, sim):
        assert sim.n_servers == 10

    def test_uncapped_power_is_sum_of_loaded_servers(self, sim, config):
        total = sim.uncapped_cluster_power_w()
        assert 10 * 90.0 <= total <= 10 * config.uncapped_power_w

    def test_apps_for_load(self, sim):
        apps = sim.apps_for_load(3)
        assert len(apps) == 6
        assert len({a.name for a in apps}) == 6  # unique suffixed names

    def test_invalid_grid_rejected(self, config):
        with pytest.raises(ConfigurationError):
            ClusterSimulator(config, cap_grid_w=0.0)

    def test_empty_mixes_rejected(self, config):
        with pytest.raises(ConfigurationError):
            ClusterSimulator(config, mixes=[])


class TestLoadInversion:
    def test_full_demand_maps_to_full_load(self, sim):
        assert sim.offered_load(sim.uncapped_cluster_power_w()) == 10

    def test_standby_demand_maps_to_zero(self, sim):
        assert sim.offered_load(100.0) == 0

    def test_inversion_is_monotone(self, sim):
        peak = sim.uncapped_cluster_power_w()
        loads = [sim.offered_load(peak * frac) for frac in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)]
        assert loads == sorted(loads)


class TestFig12Orderings:
    def test_all_policies_reported(self, experiment):
        for per in experiment.results.values():
            assert set(per) == {"equal-rapl", "equal-ours", "consolidation-migration"}

    def test_ours_always_beats_rapl(self, experiment):
        for per in experiment.results.values():
            assert (
                per["equal-ours"].aggregate_performance
                > per["equal-rapl"].aggregate_performance
            )

    def test_performance_degrades_with_shaving(self, experiment):
        for policy in ("equal-rapl", "equal-ours"):
            perfs = [
                experiment.results[s][policy].aggregate_performance
                for s in sorted(experiment.results)
            ]
            assert perfs == sorted(perfs, reverse=True)

    def test_ours_competitive_with_consolidation_at_mild_shaving(self, experiment):
        """The paper's 3-5% edge at the operating points it reports."""
        mild = experiment.results[0.15]
        assert (
            mild["equal-ours"].aggregate_performance
            >= mild["consolidation-migration"].aggregate_performance - 0.02
        )

    def test_budget_efficiency_ordering_at_mild_shaving(self, experiment):
        """Ours extracts the most performance per available watt."""
        mild = experiment.results[0.15]
        assert (
            mild["equal-ours"].budget_efficiency
            > mild["equal-rapl"].budget_efficiency
        )

    def test_performance_fractions_are_sane(self, experiment):
        for per in experiment.results.values():
            for result in per.values():
                assert 0.0 <= result.aggregate_performance <= 1.0

    def test_cap_traces_recorded(self, experiment):
        assert set(experiment.cap_traces) == set(experiment.results)
        for shave, caps in experiment.cap_traces.items():
            assert caps.peak_w <= (1 - shave) * 1e9  # exists and is a trace
