"""Node failures at cluster scale: validation, accounting, redistribution."""

import pytest

from repro.cluster.cluster import (
    ClusterSimulator,
    NodeOutage,
    outages_from_fault_plan,
    validate_outages,
)
from repro.cluster.migration import ConsolidationPlanner, ConsolidationWalker
from repro.errors import ConfigurationError, FaultError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.workloads.mixes import all_mixes
from repro.workloads.traces import ClusterPowerTrace


@pytest.fixture(scope="module")
def sim(config):
    return ClusterSimulator(config)


@pytest.fixture(scope="module")
def trace(sim):
    return ClusterPowerTrace.synthetic_diurnal(
        peak_w=sim.uncapped_cluster_power_w(), step_s=300.0, seed=1
    )


def run(sim, trace, outages=()):
    return sim.run(
        trace=trace,
        duration_s=8.0,
        warmup_s=3.0,
        shave_fractions=(0.30,),
        outages=outages,
    )


class TestValidation:
    def test_negative_server_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeOutage(server=-1, start_step=0, end_step=1)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeOutage(server=0, start_step=-1, end_step=1)

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeOutage(server=0, start_step=3, end_step=3)

    def test_down_at_is_half_open(self):
        outage = NodeOutage(server=0, start_step=2, end_step=5)
        assert not outage.down_at(1)
        assert outage.down_at(2)
        assert outage.down_at(4)
        assert not outage.down_at(5)


class TestScheduleValidation:
    def test_same_server_overlap_names_the_field(self):
        outages = (
            NodeOutage(server=3, start_step=0, end_step=10),
            NodeOutage(server=2, start_step=5, end_step=15),
            NodeOutage(server=3, start_step=8, end_step=12),
        )
        with pytest.raises(
            ConfigurationError,
            match=r"outages\[2\]\.start_step: overlaps outages\[0\] for server 3",
        ):
            validate_outages(outages, n_steps=50, n_servers=10)

    def test_touching_windows_are_not_overlapping(self):
        outages = (
            NodeOutage(server=0, start_step=0, end_step=10),
            NodeOutage(server=0, start_step=10, end_step=20),
        )
        assert validate_outages(outages, n_steps=50, n_servers=10) == outages

    def test_past_trace_interval_is_clamped(self):
        outages = (NodeOutage(server=0, start_step=40, end_step=999),)
        (clamped,) = validate_outages(outages, n_steps=50, n_servers=10)
        assert clamped == NodeOutage(server=0, start_step=40, end_step=50)

    def test_fully_out_of_trace_is_dropped(self):
        outages = (NodeOutage(server=0, start_step=50, end_step=60),)
        assert validate_outages(outages, n_steps=50, n_servers=10) == ()

    def test_unknown_server_is_rejected_naming_the_id(self):
        outages = (
            NodeOutage(server=0, start_step=0, end_step=10),
            NodeOutage(server=99, start_step=0, end_step=10),  # past fleet
        )
        with pytest.raises(
            ConfigurationError, match=r"outages\[1\]\.server: server 99"
        ):
            validate_outages(outages, n_steps=50, n_servers=10)

    def test_run_rejects_same_server_overlap(self, sim, trace):
        outages = (
            NodeOutage(server=1, start_step=0, end_step=20),
            NodeOutage(server=1, start_step=10, end_step=30),
        )
        with pytest.raises(ConfigurationError, match=r"outages\[1\]\.start_step"):
            run(sim, trace, outages=outages)

    def test_past_trace_outages_do_not_trip_overlap_check(self):
        # Past-trace entries are ignored entirely - including for overlap.
        outages = (
            NodeOutage(server=3, start_step=50, end_step=70),
            NodeOutage(server=3, start_step=60, end_step=80),
        )
        assert validate_outages(outages, n_steps=50, n_servers=10) == ()


class TestFaultPlanComposition:
    def test_node_specs_become_outages(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="node", mode="outage", start_s=60.0, duration_s=120.0, target="3"),
                FaultSpec(kind="rapl", mode="drop", start_s=5.0, duration_s=4.0),
            )
        )
        outages = outages_from_fault_plan(plan, step_s=60.0)
        assert outages == (NodeOutage(server=3, start_step=1, end_step=3),)

    def test_sub_step_window_still_covers_one_step(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="node", mode="outage", start_s=10.0, duration_s=1.0, target="0"),
            )
        )
        (outage,) = outages_from_fault_plan(plan, step_s=60.0)
        assert outage == NodeOutage(server=0, start_step=0, end_step=1)

    def test_node_spec_requires_integer_target(self):
        with pytest.raises(FaultError, match="node/outage target"):
            FaultSpec(kind="node", mode="outage", start_s=0.0, duration_s=1.0)
        with pytest.raises(FaultError, match="node/outage target"):
            FaultSpec(
                kind="node", mode="outage", start_s=0.0, duration_s=1.0, target="web"
            )

    def test_bad_step_size(self):
        with pytest.raises(ConfigurationError):
            outages_from_fault_plan(FaultPlan(), step_s=0.0)


class TestAccounting:
    def test_fault_free_run_reports_zero_lost_node_steps(self, sim, trace):
        experiment = run(sim, trace)
        for per in experiment.results.values():
            for result in per.values():
                assert result.lost_node_steps == 0

    def test_lost_node_steps_counts_down_servers(self, sim, trace):
        outage = NodeOutage(server=0, start_step=10, end_step=40)
        experiment = run(sim, trace, outages=(outage,))
        for per in experiment.results.values():
            for result in per.values():
                assert result.lost_node_steps == 30

    def test_out_of_fleet_server_rejected(self, sim, trace):
        outage = NodeOutage(server=99, start_step=0, end_step=50)
        with pytest.raises(
            ConfigurationError, match=r"outages\[0\]\.server: server 99"
        ):
            run(sim, trace, outages=(outage,))

    def test_overlapping_outages_count_each_server(self, sim, trace):
        outages = (
            NodeOutage(server=0, start_step=10, end_step=20),
            NodeOutage(server=1, start_step=15, end_step=25),
        )
        experiment = run(sim, trace, outages=outages)
        result = next(iter(experiment.results.values()))["equal-ours"]
        assert result.lost_node_steps == 20


class TestDegradation:
    def test_half_fleet_outage_degrades_every_strategy(self, sim, trace):
        steps = len(trace.demand_w)
        outages = tuple(
            NodeOutage(server=i, start_step=0, end_step=steps) for i in range(5)
        )
        healthy = run(sim, trace)
        crippled = run(sim, trace, outages=outages)
        for shave, per in healthy.results.items():
            for policy, baseline in per.items():
                degraded = crippled.results[shave][policy]
                assert (
                    degraded.aggregate_performance
                    < baseline.aggregate_performance
                )

    def test_consolidation_spare_capacity_absorbs_one_node(self, sim, trace):
        """Consolidation packs work onto ``floor(cap / rated)`` servers and
        keeps the rest dark, so losing one node costs it nothing."""
        steps = len(trace.demand_w)
        outage = NodeOutage(server=9, start_step=0, end_step=steps)
        healthy = run(sim, trace)
        failed = run(sim, trace, outages=(outage,))
        shave = next(iter(healthy.results))
        assert failed.results[shave]["consolidation-migration"].aggregate_performance == (
            pytest.approx(
                healthy.results[shave][
                    "consolidation-migration"
                ].aggregate_performance
            )
        )


class TestWalkerAvailability:
    @staticmethod
    def _apps(config, n_mixes):
        return [p for mix in all_mixes()[:n_mixes] for p in mix.profiles()]

    def test_replan_packs_only_available_servers(self, config):
        """At a replan a shrunken fleet means fewer packed servers, hence
        less aggregate performance."""
        apps = self._apps(config, 4)
        cap = 4 * config.uncapped_power_w
        full = ConsolidationWalker(ConsolidationPlanner(config), 4)
        shrunk = ConsolidationWalker(ConsolidationPlanner(config), 4)
        perf_full, _ = full.step(apps, cap, 300.0)
        perf_shrunk, power_shrunk = shrunk.step(apps, cap, 300.0, n_available=1)
        assert perf_shrunk < perf_full
        assert power_shrunk <= config.uncapped_power_w + 1e-9

    def test_failure_between_replans_stalls_placements(self, config):
        """A node lost inside the replan-hysteresis window sheds its
        placement immediately; recovery restores it without a replan."""
        apps = self._apps(config, 4)
        cap = 4 * config.uncapped_power_w
        walker = ConsolidationWalker(
            ConsolidationPlanner(config), 4, replan_interval_s=3600.0
        )
        perf_healthy, _ = walker.step(apps, cap, 300.0)
        perf_failed, _ = walker.step(apps, cap, 300.0, n_available=1)
        perf_restored, _ = walker.step(apps, cap, 300.0, n_available=4)
        assert perf_failed < perf_healthy
        assert perf_restored == pytest.approx(perf_healthy)

    def test_zero_available_powers_everything_down(self, config):
        apps = self._apps(config, 2)
        cap = 2 * config.uncapped_power_w
        walker = ConsolidationWalker(
            ConsolidationPlanner(config), 2, replan_interval_s=3600.0
        )
        walker.step(apps, cap, 300.0)
        perf, power = walker.step(apps, cap, 300.0, n_available=0)
        assert perf == 0.0
        assert power == 0.0
