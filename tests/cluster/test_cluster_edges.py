"""Cluster simulator edge cases: standby power, custom mixes, small fleets."""

import pytest

from repro.cluster.cluster import ClusterSimulator
from repro.workloads.mixes import get_mix
from repro.workloads.traces import ClusterPowerTrace


class TestCustomFleets:
    def test_two_server_cluster(self, config):
        sim = ClusterSimulator(config, mixes=[get_mix(1), get_mix(10)])
        assert sim.n_servers == 2
        trace = ClusterPowerTrace.synthetic_diurnal(
            peak_w=sim.uncapped_cluster_power_w(), step_s=1800.0, seed=2
        )
        experiment = sim.run(
            trace=trace, shave_fractions=(0.15,), duration_s=8.0, warmup_s=4.0
        )
        per = experiment.results[0.15]
        assert all(0.0 <= r.aggregate_performance <= 1.0 for r in per.values())

    def test_offered_load_bounded_by_fleet(self, config):
        sim = ClusterSimulator(config, mixes=[get_mix(1), get_mix(10)])
        huge = 10 * sim.uncapped_cluster_power_w()
        assert sim.offered_load(huge) == 2

    def test_duplicate_apps_across_servers_are_distinct(self, config):
        # Mixes 1 and 13 both contain kmeans; names must not collide.
        sim = ClusterSimulator(config, mixes=[get_mix(1), get_mix(13)])
        names = [p.name for p in sim.apps_for_load(2)]
        assert len(names) == len(set(names))


class TestStandbyPower:
    def test_standby_enters_uncapped_draw(self, config):
        frugal = ClusterSimulator(config, unloaded_server_power_w=5.0)
        wasteful = ClusterSimulator(config, unloaded_server_power_w=45.0)
        demand = 600.0
        # The same demand maps to more loaded servers when standby is cheap.
        assert frugal.offered_load(demand) >= wasteful.offered_load(demand)

    def test_negative_standby_rejected(self, config):
        with pytest.raises(Exception):
            ClusterSimulator(config, unloaded_server_power_w=-1.0)

    def test_standby_cost_shifts_equal_policy_power(self, config):
        sim = ClusterSimulator(config, unloaded_server_power_w=40.0)
        trace = ClusterPowerTrace.synthetic_diurnal(
            peak_w=sim.uncapped_cluster_power_w(), step_s=1800.0, seed=3
        )
        experiment = sim.run(
            trace=trace, shave_fractions=(0.15,), duration_s=8.0, warmup_s=4.0
        )
        result = experiment.results[0.15]["equal-rapl"]
        # Ten servers at >= 40 W standby floor the mean power accordingly.
        assert result.mean_power_w > 10 * 40.0 * 0.5


class TestLoadedPowerCache:
    def test_loaded_power_is_stable(self, config):
        sim = ClusterSimulator(config)
        first = sim.loaded_server_power_w(0)
        second = sim.loaded_server_power_w(0)
        assert first == second
        assert 90.0 <= first <= config.uncapped_power_w
