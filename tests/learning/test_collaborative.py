"""ALS factorization and the two-plane collaborative estimator."""

import numpy as np
import pytest

from repro.errors import LearningError
from repro.learning.collaborative import AlsFactorizer, CollaborativeEstimator
from repro.learning.crossval import build_exhaustive_corpus
from repro.learning.matrix import PreferenceMatrix
from repro.learning.sampling import StratifiedSampler
from repro.server.perf_model import PerformanceModel
from repro.server.power_model import PowerModel
from repro.workloads.catalog import CATALOG


def low_rank_matrix(n_rows=8, n_cols=40, rank=3, seed=0):
    rng = np.random.default_rng(seed)
    u = rng.uniform(0.5, 1.5, (n_rows, rank))
    v = rng.uniform(0.5, 1.5, (n_cols, rank))
    return u @ v.T


class TestAlsFactorizer:
    def test_reconstructs_fully_observed_low_rank(self):
        values = low_rank_matrix()
        als = AlsFactorizer(rank=3, ridge=1e-3, iterations=40)
        als.fit(values, np.ones_like(values, dtype=bool))
        error = np.abs(als.predict_full() - values).max() / values.max()
        assert error < 0.02

    def test_completes_partially_observed(self):
        values = low_rank_matrix()
        rng = np.random.default_rng(1)
        mask = rng.uniform(size=values.shape) < 0.6
        mask[:, 0] = True  # keep every column constrained enough
        mask[0, :] = True
        als = AlsFactorizer(rank=3, ridge=1e-2, iterations=60)
        als.fit(values, mask)
        hidden = ~mask
        rel = np.abs(als.predict_full() - values)[hidden].mean() / values.mean()
        assert rel < 0.1

    def test_fold_in_recovers_new_row(self):
        values = low_rank_matrix(n_rows=9)
        train, held = values[:8], values[8]
        als = AlsFactorizer(rank=3, ridge=1e-3, iterations=40)
        als.fit(train, np.ones_like(train, dtype=bool))
        cols = np.arange(0, 40, 4)  # 25% sample
        predicted = als.fold_in(cols, held[cols])
        rel = np.abs(predicted - held).mean() / held.mean()
        assert rel < 0.1

    def test_fold_in_trusts_measurements(self):
        values = low_rank_matrix()
        als = AlsFactorizer(rank=3, iterations=20)
        als.fit(values, np.ones_like(values, dtype=bool))
        predicted = als.fold_in(np.array([5]), np.array([123.0]))
        assert predicted[5] == 123.0

    def test_unfitted_predict_rejected(self):
        with pytest.raises(LearningError):
            AlsFactorizer().predict_full()

    def test_unfitted_fold_in_rejected(self):
        with pytest.raises(LearningError):
            AlsFactorizer().fold_in(np.array([0]), np.array([1.0]))

    def test_empty_matrix_rejected(self):
        with pytest.raises(LearningError):
            AlsFactorizer().fit(np.empty((0, 5)), np.empty((0, 5), dtype=bool))

    def test_unobserved_row_rejected(self):
        values = low_rank_matrix(n_rows=3)
        mask = np.ones_like(values, dtype=bool)
        mask[1, :] = False
        with pytest.raises(LearningError):
            AlsFactorizer().fit(values, mask)

    def test_fold_in_misaligned_rejected(self):
        values = low_rank_matrix()
        als = AlsFactorizer(rank=3, iterations=5)
        als.fit(values, np.ones_like(values, dtype=bool))
        with pytest.raises(LearningError):
            als.fold_in(np.array([0, 1]), np.array([1.0]))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(LearningError):
            AlsFactorizer(rank=0)
        with pytest.raises(LearningError):
            AlsFactorizer(ridge=-1.0)
        with pytest.raises(LearningError):
            AlsFactorizer(iterations=0)


class TestCollaborativeEstimator:
    @pytest.fixture(scope="class")
    def corpus(self, config):
        profiles = [p for n, p in sorted(CATALOG.items()) if n != "sssp"]
        return build_exhaustive_corpus(config, profiles)

    def test_estimates_held_out_app_accurately(self, corpus, config):
        """The headline property: 10% sampling recovers the surface."""
        perf_model = PerformanceModel(config)
        power_model = PowerModel(config, perf_model)
        sssp = CATALOG["sssp"]
        estimator = CollaborativeEstimator()
        estimator.train(corpus)
        sampler = StratifiedSampler(0.10, seed=3)
        samples = {
            knob: (power_model.app_power_w(sssp, knob), perf_model.rate(sssp, knob))
            for knob in sampler.select(config)
        }
        estimate = estimator.estimate(corpus, samples)
        true_power = np.array(
            [power_model.app_power_w(sssp, k) for k in config.knob_space()]
        )
        true_perf = np.array([perf_model.rate(sssp, k) for k in config.knob_space()])
        power_rmse = float(np.sqrt(np.mean((estimate.power_w - true_power) ** 2)))
        perf_rel = float(
            np.sqrt(np.mean(((estimate.perf - true_perf) / true_perf.max()) ** 2))
        )
        assert power_rmse < 1.0  # within a watt, on a 7-25 W surface
        assert perf_rel < 0.08

    def test_untrained_estimate_rejected(self, corpus, config):
        estimator = CollaborativeEstimator()
        with pytest.raises(LearningError):
            estimator.estimate(corpus, {config.max_knob: (1.0, 1.0)})

    def test_empty_samples_rejected(self, corpus):
        estimator = CollaborativeEstimator()
        estimator.train(corpus)
        with pytest.raises(LearningError):
            estimator.estimate(corpus, {})

    def test_empty_corpus_rejected(self, config):
        estimator = CollaborativeEstimator()
        with pytest.raises(LearningError):
            estimator.train(PreferenceMatrix(config))

    def test_estimates_are_nonnegative(self, corpus, config):
        perf_model = PerformanceModel(config)
        power_model = PowerModel(config, perf_model)
        sssp = CATALOG["sssp"]
        estimator = CollaborativeEstimator()
        estimator.train(corpus)
        samples = {
            knob: (power_model.app_power_w(sssp, knob), perf_model.rate(sssp, knob))
            for knob in StratifiedSampler(0.05, seed=1).select(config)
        }
        estimate = estimator.estimate(corpus, samples)
        assert (estimate.power_w >= 0).all()
        assert (estimate.perf >= 0).all()
