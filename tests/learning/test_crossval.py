"""Fig. 7 calibration machinery: corpus building and cross-validation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.learning.crossval import (
    build_exhaustive_corpus,
    calibrate_sampling_fraction,
)
from repro.learning.sampling import RandomSampler
from repro.workloads.catalog import CATALOG


class TestCorpusBuilding:
    def test_corpus_is_fully_observed(self, config):
        corpus = build_exhaustive_corpus(config, [CATALOG["kmeans"]])
        assert corpus.density() == 1.0

    def test_noise_free_corpus_matches_models(self, config, power_model):
        corpus = build_exhaustive_corpus(config, [CATALOG["kmeans"]])
        knob = config.max_knob
        col = corpus.column_of(knob)
        assert corpus.power_row("kmeans")[col] == pytest.approx(
            power_model.app_power_w(CATALOG["kmeans"], knob)
        )

    def test_noisy_corpus_is_seeded(self, config):
        a = build_exhaustive_corpus(
            config, [CATALOG["kmeans"]], power_noise_std_w=0.5, seed=9
        )
        b = build_exhaustive_corpus(
            config, [CATALOG["kmeans"]], power_noise_std_w=0.5, seed=9
        )
        assert (a.power_row("kmeans") == b.power_row("kmeans")).all()

    def test_empty_profiles_rejected(self, config):
        with pytest.raises(ConfigurationError):
            build_exhaustive_corpus(config, [])


class TestCalibration:
    @pytest.fixture(scope="class")
    def points(self, config):
        return calibrate_sampling_fraction(
            config,
            list(CATALOG.values()),
            [0.02, 0.10, 0.30],
            seed=11,
        )

    def test_one_point_per_fraction(self, points):
        assert [p.fraction for p in points] == [0.02, 0.10, 0.30]

    def test_error_shrinks_with_sampling(self, points):
        """The Fig. 7 trend: more samples, less estimation error."""
        rmses = [p.power_rmse_w for p in points]
        assert rmses[0] > rmses[-1]
        perf_rmses = [p.perf_rmse_rel for p in points]
        assert perf_rmses[0] > perf_rmses[-1]

    def test_performance_approaches_oracle(self, points):
        assert points[-1].perf_ratio > 0.97
        assert points[-1].perf_ratio >= points[0].perf_ratio - 0.02

    def test_ten_percent_is_a_good_operating_point(self, points):
        """The paper fixes 10%: near-oracle performance, sub-watt error."""
        ten = points[1]
        assert ten.perf_ratio > 0.95
        assert ten.power_rmse_w < 1.0

    def test_ratios_are_sane(self, points):
        for p in points:
            assert 0.0 < p.perf_ratio <= 1.05
            assert 0.0 < p.power_ratio <= 1.2
            assert 0.0 <= p.violation_fraction <= 1.0
            assert p.worst_power_ratio >= p.power_ratio

    def test_random_sampler_variant_runs(self, config):
        points = calibrate_sampling_fraction(
            config,
            list(CATALOG.values()),
            [0.05],
            seed=2,
            sampler_factory=RandomSampler,
        )
        assert len(points) == 1

    def test_too_few_profiles_rejected(self, config):
        with pytest.raises(ConfigurationError):
            calibrate_sampling_fraction(
                config, [CATALOG["kmeans"]], [0.1], folds=5
            )

    def test_empty_fractions_rejected(self, config):
        with pytest.raises(ConfigurationError):
            calibrate_sampling_fraction(config, list(CATALOG.values()), [])
