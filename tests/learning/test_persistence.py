"""PreferenceMatrix persistence: save/load round trips, signature checks."""

import numpy as np
import pytest

from repro.errors import LearningError
from repro.learning.crossval import build_exhaustive_corpus
from repro.learning.matrix import PreferenceMatrix
from repro.server.config import ServerConfig
from repro.workloads.catalog import CATALOG


class TestPersistence:
    def test_round_trip(self, config, tmp_path):
        corpus = build_exhaustive_corpus(config, [CATALOG["kmeans"], CATALOG["stream"]])
        path = tmp_path / "corpus.npz"
        corpus.save(path)
        loaded = PreferenceMatrix.load(path, config)
        assert loaded.apps == corpus.apps
        for app in corpus.apps:
            assert np.allclose(loaded.power_row(app), corpus.power_row(app))
            assert np.allclose(loaded.perf_row(app), corpus.perf_row(app))

    def test_partial_observations_survive(self, config, tmp_path):
        matrix = PreferenceMatrix(config)
        matrix.add_app("a")
        matrix.observe("a", config.max_knob, power_w=20.0, perf=3.0)
        path = tmp_path / "partial.npz"
        matrix.save(path)
        loaded = PreferenceMatrix.load(path, config)
        assert loaded.row_observation_count("a") == 1
        assert loaded.density() == matrix.density()

    def test_mismatched_knob_space_rejected(self, config, tmp_path):
        matrix = PreferenceMatrix(config)
        matrix.add_app("a")
        path = tmp_path / "m.npz"
        matrix.save(path)
        other = ServerConfig(dram_power_max_w=8.0)
        with pytest.raises(LearningError):
            PreferenceMatrix.load(path, other)

    def test_loaded_corpus_trains_estimator(self, config, tmp_path):
        from repro.learning.collaborative import CollaborativeEstimator

        corpus = build_exhaustive_corpus(
            config, [p for n, p in sorted(CATALOG.items())][:6]
        )
        path = tmp_path / "c.npz"
        corpus.save(path)
        loaded = PreferenceMatrix.load(path, config)
        estimator = CollaborativeEstimator()
        estimator.train(loaded)
        assert estimator.is_trained
