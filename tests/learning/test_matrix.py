"""Preference matrices: structure, observation, masks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, LearningError
from repro.learning.matrix import PreferenceMatrix
from repro.server.config import KnobSetting


@pytest.fixture()
def matrix(config):
    return PreferenceMatrix(config)


class TestStructure:
    def test_columns_match_knob_space(self, matrix, config):
        assert matrix.n_columns == len(config.knob_space())
        assert matrix.columns == config.knob_space()

    def test_column_lookup(self, matrix, config):
        knob = config.knob_space()[17]
        assert matrix.column_of(knob) == 17

    def test_unknown_knob_rejected(self, matrix):
        with pytest.raises(LearningError):
            matrix.column_of(KnobSetting(1.55, 3, 7.0))

    def test_empty_matrix(self, matrix):
        assert matrix.apps == []
        assert matrix.density() == 0.0


class TestObservation:
    def test_add_and_observe(self, matrix, config):
        matrix.add_app("kmeans")
        knob = config.max_knob
        matrix.observe("kmeans", knob, power_w=20.0, perf=3.0)
        col = matrix.column_of(knob)
        assert matrix.power_row("kmeans")[col] == 20.0
        assert matrix.perf_row("kmeans")[col] == 3.0
        assert matrix.row_observation_count("kmeans") == 1

    def test_unobserved_cells_are_nan(self, matrix, config):
        matrix.add_app("a")
        assert np.isnan(matrix.power_row("a")).all()

    def test_duplicate_app_rejected(self, matrix):
        matrix.add_app("a")
        with pytest.raises(LearningError):
            matrix.add_app("a")

    def test_observe_unknown_app_rejected(self, matrix, config):
        with pytest.raises(LearningError):
            matrix.observe("ghost", config.max_knob, power_w=1.0, perf=1.0)

    def test_negative_observation_rejected(self, matrix, config):
        matrix.add_app("a")
        with pytest.raises(ConfigurationError):
            matrix.observe("a", config.max_knob, power_w=-1.0, perf=1.0)

    def test_overwrite_observation(self, matrix, config):
        matrix.add_app("a")
        matrix.observe("a", config.max_knob, power_w=1.0, perf=1.0)
        matrix.observe("a", config.max_knob, power_w=2.0, perf=2.0)
        col = matrix.column_of(config.max_knob)
        assert matrix.power_row("a")[col] == 2.0

    def test_membership(self, matrix):
        matrix.add_app("a")
        assert "a" in matrix
        assert "b" not in matrix


class TestMasks:
    def test_mask_requires_both_planes(self, matrix, config):
        matrix.add_app("a")
        matrix.observe("a", config.max_knob, power_w=1.0, perf=1.0)
        mask = matrix.observed_mask()
        assert mask.sum() == 1

    def test_density(self, matrix, config):
        matrix.add_app("a")
        for knob in config.knob_space():
            matrix.observe("a", knob, power_w=1.0, perf=1.0)
        assert matrix.density() == 1.0

    def test_rows_are_copies(self, matrix, config):
        matrix.add_app("a")
        matrix.observe("a", config.max_knob, power_w=5.0, perf=1.0)
        row = matrix.power_row("a")
        row[:] = 0.0
        assert matrix.power_row("a")[matrix.column_of(config.max_knob)] == 5.0
