"""Adaptive (query-by-committee) sampling.

Honest expectation: on the catalog's smooth low-rank response surfaces the
engineered stratified design is already near-optimal, so the adaptive
sampler's value is matching it while making no assumptions about the
surface's structure - the tests pin competitiveness, determinism, and the
mechanics, not superiority.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, LearningError
from repro.learning.collaborative import CollaborativeEstimator
from repro.learning.crossval import build_exhaustive_corpus
from repro.learning.sampling import AdaptiveSampler, StratifiedSampler
from repro.server.perf_model import PerformanceModel
from repro.server.power_model import PowerModel
from repro.workloads.catalog import CATALOG


@pytest.fixture(scope="module")
def setup(config):
    perf_model = PerformanceModel(config)
    power_model = PowerModel(config, perf_model)
    corpus = build_exhaustive_corpus(
        config, [p for n, p in sorted(CATALOG.items()) if n != "sssp"]
    )
    estimator = CollaborativeEstimator()
    estimator.train(corpus)
    sssp = CATALOG["sssp"]

    def measure(knob):
        return (power_model.app_power_w(sssp, knob), perf_model.rate(sssp, knob))

    truth_power = np.array(
        [power_model.app_power_w(sssp, k) for k in config.knob_space()]
    )
    return corpus, estimator, measure, truth_power


class TestMechanics:
    def test_respects_budget(self, config, setup):
        corpus, estimator, measure, _ = setup
        sampler = AdaptiveSampler(0.10, seed=1)
        samples = sampler.select_adaptive(config, measure, estimator, corpus)
        assert len(samples) == sampler.budget_from_fraction(config, 0.10)

    def test_bootstrap_includes_anchor(self, config, setup):
        corpus, estimator, measure, _ = setup
        samples = AdaptiveSampler(0.05, seed=1).select_adaptive(
            config, measure, estimator, corpus
        )
        assert config.max_knob in samples

    def test_deterministic_per_seed(self, config, setup):
        corpus, estimator, measure, _ = setup
        a = AdaptiveSampler(0.05, seed=4).select_adaptive(
            config, measure, estimator, corpus
        )
        b = AdaptiveSampler(0.05, seed=4).select_adaptive(
            config, measure, estimator, corpus
        )
        assert list(a) == list(b)

    def test_no_duplicate_measurements(self, config, setup):
        corpus, estimator, measure, _ = setup
        samples = AdaptiveSampler(0.15, seed=2).select_adaptive(
            config, measure, estimator, corpus
        )
        assert len(samples) == len(set(samples))

    def test_untrained_estimator_rejected(self, config, setup):
        corpus, _, measure, _ = setup
        with pytest.raises(LearningError):
            AdaptiveSampler(0.05).select_adaptive(
                config, measure, CollaborativeEstimator(), corpus
            )

    def test_invalid_bootstrap_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveSampler(0.1, bootstrap_fraction=0.0)

    def test_plain_select_falls_back_to_stratified(self, config):
        adaptive = AdaptiveSampler(0.10, seed=3).select(config)
        stratified = StratifiedSampler(0.10, seed=3).select(config)
        assert adaptive == stratified


class TestQuality:
    def test_competitive_with_stratified(self, config, setup):
        corpus, estimator, measure, truth_power = setup
        results = {}
        for name, samples in (
            (
                "stratified",
                {k: measure(k) for k in StratifiedSampler(0.10, seed=5).select(config)},
            ),
            (
                "adaptive",
                AdaptiveSampler(0.10, seed=5).select_adaptive(
                    config, measure, estimator, corpus
                ),
            ),
        ):
            estimate = estimator.estimate(corpus, samples)
            results[name] = float(
                np.sqrt(np.mean((estimate.power_w - truth_power) ** 2))
            )
        # Within 35% of the engineered design on its home turf.
        assert results["adaptive"] <= results["stratified"] * 1.35

    def test_adaptive_beats_tiny_random_on_average(self, config, setup):
        """Against an unstructured baseline the committee wins on average
        (any single seed is noisy - random sometimes gets lucky)."""
        from repro.learning.sampling import RandomSampler

        corpus, estimator, measure, truth_power = setup

        def rmse(samples):
            estimate = estimator.estimate(corpus, samples)
            return float(np.sqrt(np.mean((estimate.power_w - truth_power) ** 2)))

        random_rmses = []
        adaptive_rmses = []
        for seed in (5, 11, 20):
            random_rmses.append(
                rmse({k: measure(k) for k in RandomSampler(0.05, seed=seed).select(config)})
            )
            adaptive_rmses.append(
                rmse(
                    AdaptiveSampler(0.05, seed=seed).select_adaptive(
                        config, measure, estimator, corpus
                    )
                )
            )
        assert np.mean(adaptive_rmses) < np.mean(random_rmses)
