"""Sampling strategies: budgets, determinism, coverage guarantees."""

import pytest

from repro.errors import ConfigurationError
from repro.learning.sampling import RandomSampler, Sampler, StratifiedSampler


class TestBudget:
    def test_fraction_to_budget(self, config):
        assert Sampler.budget_from_fraction(config, 0.10) == round(0.10 * 432)

    def test_minimum_one_sample(self, config):
        assert Sampler.budget_from_fraction(config, 0.0001) == 1

    @pytest.mark.parametrize("fraction", [0.0, 1.0001, -0.5])
    def test_invalid_fraction_rejected(self, config, fraction):
        with pytest.raises(ConfigurationError):
            Sampler.budget_from_fraction(config, fraction)


class TestRandomSampler:
    def test_respects_budget(self, config):
        samples = RandomSampler(0.10, seed=1).select(config)
        assert len(samples) == Sampler.budget_from_fraction(config, 0.10)

    def test_no_duplicates(self, config):
        samples = RandomSampler(0.25, seed=2).select(config)
        assert len(samples) == len(set(samples))

    def test_deterministic_per_seed(self, config):
        a = RandomSampler(0.10, seed=3).select(config)
        b = RandomSampler(0.10, seed=3).select(config)
        assert a == b

    def test_different_seeds_differ(self, config):
        a = RandomSampler(0.10, seed=3).select(config)
        b = RandomSampler(0.10, seed=4).select(config)
        assert a != b

    def test_samples_are_in_knob_space(self, config):
        space = set(config.knob_space())
        assert all(k in space for k in RandomSampler(0.05, seed=5).select(config))


class TestStratifiedSampler:
    def test_includes_both_corners(self, config):
        samples = StratifiedSampler(0.02, seed=1).select(config)
        assert config.max_knob in samples
        assert config.min_knob in samples

    def test_corners_first_under_tiny_budget(self, config):
        samples = StratifiedSampler(0.005, seed=1).select(config)  # 2 samples
        assert samples[0] == config.max_knob
        assert samples[1] == config.min_knob

    def test_per_dimension_sweeps_present_at_ten_percent(self, config):
        samples = set(StratifiedSampler(0.10, seed=1).select(config))
        # The frequency sweep at (n_max, m_max).
        from repro.server.config import KnobSetting

        for f in config.frequencies_ghz:
            assert KnobSetting(f, config.cores_max, config.dram_power_max_w) in samples
        for n in config.core_counts:
            assert KnobSetting(config.freq_max_ghz, n, config.dram_power_max_w) in samples
        for m in config.dram_powers_w:
            assert KnobSetting(config.freq_max_ghz, config.cores_max, m) in samples

    def test_respects_budget(self, config):
        samples = StratifiedSampler(0.10, seed=1).select(config)
        assert len(samples) == Sampler.budget_from_fraction(config, 0.10)

    def test_no_duplicates(self, config):
        samples = StratifiedSampler(0.20, seed=2).select(config)
        assert len(samples) == len(set(samples))

    def test_random_fill_is_seeded(self, config):
        a = StratifiedSampler(0.30, seed=7).select(config)
        b = StratifiedSampler(0.30, seed=7).select(config)
        assert a == b
