"""Accountant: message events (E1/E2), polling events (E3/E4), debouncing."""

import pytest

from repro.errors import ConfigurationError
from repro.core.accountant import Accountant
from repro.core.allocator import Allocation, AppAllocation
from repro.core.coordinator import AllocationPlan, CoordinationMode, TimeSlot
from repro.core.events import (
    ArrivalEvent,
    CapChangeEvent,
    DepartureEvent,
    PhaseChangeEvent,
)
from repro.server.config import KnobSetting
from repro.server.power_model import PowerBreakdown
from repro.server.server import SimulatedServer, TickResult


def breakdown(app_w):
    return PowerBreakdown(idle_w=50.0, cm_w=20.0, app_w=app_w)


def tick(time_s, app_w, completed=()):
    return TickResult(
        time_s=time_s,
        dt_s=0.1,
        breakdown=breakdown(app_w),
        progressed={},
        completed=tuple(completed),
    )


def space_plan(expected_w, cap=100.0):
    knob = KnobSetting(2.0, 6, 10.0)
    apps = {
        name: AppAllocation(
            app=name, excluded=False, knob=knob, power_w=watts, relative_perf=0.8
        )
        for name, watts in expected_w.items()
    }
    return AllocationPlan(
        mode=CoordinationMode.SPACE,
        p_cap_w=cap,
        allocation=Allocation(budget_w=30.0, apps=apps, objective=1.6),
        knobs={name: knob for name in expected_w},
    )


@pytest.fixture()
def accountant(server):
    return Accountant(server, deviation_threshold_w=3.0, deviation_polls=3)


class TestMessages:
    def test_cap_change_logged(self, accountant):
        event = accountant.notify_cap_change(90.0)
        assert isinstance(event, CapChangeEvent)
        assert accountant.p_cap_w == 90.0
        assert accountant.event_log == [event]

    def test_invalid_cap_rejected(self, accountant):
        with pytest.raises(ConfigurationError):
            accountant.notify_cap_change(0.0)

    def test_arrival_logged(self, accountant, kmeans):
        event = accountant.notify_arrival(kmeans)
        assert isinstance(event, ArrivalEvent)
        assert event.profile is kmeans


class TestDeparture:
    def test_completion_raises_e3(self, accountant):
        events = accountant.poll(tick(1.0, {}, completed=["kmeans"]))
        assert len(events) == 1
        assert isinstance(events[0], DepartureEvent)
        assert events[0].app == "kmeans"
        assert events[0].completed

    def test_multiple_completions(self, accountant):
        events = accountant.poll(tick(1.0, {}, completed=["a", "b"]))
        assert [e.app for e in events] == ["a", "b"]


class TestPhaseChange:
    def test_sustained_deviation_raises_e4(self, accountant):
        accountant.adopt_plan(space_plan({"kmeans": 15.0}))
        events = []
        for i in range(3):
            events += accountant.poll(tick(i * 0.1, {"kmeans": 22.0}))
        assert len(events) == 1
        assert isinstance(events[0], PhaseChangeEvent)
        assert events[0].observed_power_w == 22.0
        assert events[0].allocated_power_w == 15.0

    def test_transient_deviation_debounced(self, accountant):
        accountant.adopt_plan(space_plan({"kmeans": 15.0}))
        events = []
        events += accountant.poll(tick(0.1, {"kmeans": 22.0}))
        events += accountant.poll(tick(0.2, {"kmeans": 15.0}))  # resets
        events += accountant.poll(tick(0.3, {"kmeans": 22.0}))
        events += accountant.poll(tick(0.4, {"kmeans": 22.0}))
        assert events == []

    def test_small_deviation_ignored(self, accountant):
        accountant.adopt_plan(space_plan({"kmeans": 15.0}))
        events = []
        for i in range(10):
            events += accountant.poll(tick(i * 0.1, {"kmeans": 16.5}))
        assert events == []

    def test_one_e4_per_plan_epoch(self, accountant):
        accountant.adopt_plan(space_plan({"kmeans": 15.0}))
        events = []
        for i in range(10):
            events += accountant.poll(tick(i * 0.1, {"kmeans": 25.0}))
        assert len(events) == 1  # suppressed until re-allocation

    def test_new_plan_resets_suppression(self, accountant):
        accountant.adopt_plan(space_plan({"kmeans": 15.0}))
        for i in range(5):
            accountant.poll(tick(i * 0.1, {"kmeans": 25.0}))
        accountant.adopt_plan(space_plan({"kmeans": 15.0}))
        events = []
        for i in range(5):
            events += accountant.poll(tick(1.0 + i * 0.1, {"kmeans": 25.0}))
        assert len(events) == 1

    def test_no_e4_in_time_mode(self, accountant, config):
        """Duty-cycled power swings are expected, not phase changes."""
        knob = config.max_knob
        plan = AllocationPlan(
            mode=CoordinationMode.TIME,
            p_cap_w=80.0,
            allocation=Allocation(budget_w=10.0, apps={}, objective=0.0),
            slots=(TimeSlot(apps=("kmeans",), duration_s=1.0, knobs={"kmeans": knob}),),
        )
        accountant.adopt_plan(plan)
        events = []
        for i in range(10):
            events += accountant.poll(tick(i * 0.1, {"kmeans": 20.0 * (i % 2)}))
        assert events == []

    def test_excluded_apps_not_monitored(self, accountant, config):
        knob = config.max_knob
        apps = {
            "kmeans": AppAllocation(
                app="kmeans", excluded=True, knob=knob, power_w=0.0, relative_perf=0.0
            )
        }
        plan = AllocationPlan(
            mode=CoordinationMode.SPACE,
            p_cap_w=100.0,
            allocation=Allocation(budget_w=30.0, apps=apps, objective=0.0),
            knobs={},
        )
        accountant.adopt_plan(plan)
        events = []
        for i in range(5):
            events += accountant.poll(tick(i * 0.1, {"kmeans": 25.0}))
        assert events == []


class TestValidation:
    def test_invalid_threshold_rejected(self, server):
        with pytest.raises(ConfigurationError):
            Accountant(server, deviation_threshold_w=0.0)

    def test_invalid_polls_rejected(self, server):
        with pytest.raises(ConfigurationError):
            Accountant(server, deviation_polls=0)
