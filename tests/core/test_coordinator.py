"""Coordinator: plan execution in SPACE, TIME, ESD, and IDLE modes."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.core.allocator import Allocation, AppAllocation
from repro.core.coordinator import (
    AllocationPlan,
    CoordinationMode,
    Coordinator,
    TimeSlot,
)
from repro.esd.battery import LeadAcidBattery
from repro.esd.controller import EsdController, compute_duty_cycle
from repro.server.config import KnobSetting
from repro.server.server import SimulatedServer


def record_for(names, knob, power=15.0, rel=0.7, budget=30.0):
    apps = {
        n: AppAllocation(app=n, excluded=False, knob=knob, power_w=power, relative_perf=rel)
        for n in names
    }
    return Allocation(budget_w=budget, apps=apps, objective=rel * len(names))


@pytest.fixture()
def loaded_server(config, kmeans, stream):
    server = SimulatedServer(config)
    server.admit(kmeans)
    server.admit(stream)
    return server


class TestPlanValidation:
    def test_time_mode_needs_slots(self):
        with pytest.raises(ConfigurationError):
            AllocationPlan(mode=CoordinationMode.TIME, p_cap_w=80.0)

    def test_esd_mode_needs_cycle(self):
        with pytest.raises(ConfigurationError):
            AllocationPlan(mode=CoordinationMode.ESD, p_cap_w=70.0)

    def test_slot_needs_knobs_for_apps(self):
        with pytest.raises(ConfigurationError):
            TimeSlot(apps=("a",), duration_s=1.0, knobs={})

    def test_slot_needs_positive_duration(self):
        with pytest.raises(ConfigurationError):
            TimeSlot(apps=(), duration_s=0.0)

    def test_step_without_plan_rejected(self, loaded_server):
        with pytest.raises(SimulationError):
            Coordinator(loaded_server).step(0.1)

    def test_esd_plan_without_controller_rejected(self, loaded_server, config):
        cycle = compute_duty_cycle(
            p_idle_w=50.0, p_cm_w=20.0, sum_app_w=40.0,
            p_cap_w=80.0, efficiency=0.7, period_s=10.0,
        )
        plan = AllocationPlan(
            mode=CoordinationMode.ESD, p_cap_w=80.0, duty_cycle=cycle,
            knobs={"kmeans": config.max_knob},
        )
        with pytest.raises(ConfigurationError):
            Coordinator(loaded_server).adopt(plan)


class TestSpaceMode:
    def test_applies_knobs_and_runs_everyone(self, loaded_server, config):
        knob = KnobSetting(1.5, 4, 6.0)
        plan = AllocationPlan(
            mode=CoordinationMode.SPACE,
            p_cap_w=100.0,
            allocation=record_for(["kmeans", "stream"], knob),
            knobs={"kmeans": knob, "stream": knob},
        )
        coordinator = Coordinator(loaded_server)
        coordinator.adopt(plan)
        assert loaded_server.active_applications() == ["kmeans", "stream"]
        assert loaded_server.knobs.knob_of("kmeans") == knob

    def test_apps_without_knobs_are_suspended(self, loaded_server, config):
        knob = config.max_knob
        plan = AllocationPlan(
            mode=CoordinationMode.SPACE,
            p_cap_w=100.0,
            allocation=record_for(["kmeans"], knob),
            knobs={"kmeans": knob},
        )
        coordinator = Coordinator(loaded_server)
        coordinator.adopt(plan)
        assert loaded_server.active_applications() == ["kmeans"]

    def test_step_is_a_noop_action(self, loaded_server, config):
        plan = AllocationPlan(
            mode=CoordinationMode.SPACE,
            p_cap_w=100.0,
            allocation=record_for(["kmeans"], config.max_knob),
            knobs={"kmeans": config.max_knob},
        )
        coordinator = Coordinator(loaded_server)
        coordinator.adopt(plan)
        action = coordinator.step(0.1)
        assert action.esd_charge_w == 0.0
        assert not action.deep_sleep


class TestTimeMode:
    def make_plan(self, config, duration=1.0):
        knob = config.max_knob
        slots = (
            TimeSlot(apps=("kmeans",), duration_s=duration, knobs={"kmeans": knob}),
            TimeSlot(apps=("stream",), duration_s=duration, knobs={"stream": knob}),
        )
        return AllocationPlan(
            mode=CoordinationMode.TIME,
            p_cap_w=80.0,
            allocation=record_for(["kmeans", "stream"], knob),
            slots=slots,
        )

    def test_first_slot_runs_first_app(self, loaded_server, config):
        coordinator = Coordinator(loaded_server)
        coordinator.adopt(self.make_plan(config))
        assert loaded_server.active_applications() == ["kmeans"]

    def test_rotation_switches_apps(self, loaded_server, config):
        coordinator = Coordinator(loaded_server)
        coordinator.adopt(self.make_plan(config, duration=0.5))
        for _ in range(5):  # 0.5 s: crosses into slot 2
            coordinator.step(0.1)
            loaded_server.tick(0.1)
        assert loaded_server.active_applications() == ["stream"]

    def test_rotation_wraps_around(self, loaded_server, config):
        coordinator = Coordinator(loaded_server)
        coordinator.adopt(self.make_plan(config, duration=0.3))
        for _ in range(6):  # 0.6 s: back to slot 1
            coordinator.step(0.1)
            loaded_server.tick(0.1)
        assert loaded_server.active_applications() == ["kmeans"]

    def test_exactly_one_app_runs_at_any_time(self, loaded_server, config):
        coordinator = Coordinator(loaded_server)
        coordinator.adopt(self.make_plan(config, duration=0.4))
        for _ in range(20):
            coordinator.step(0.1)
            loaded_server.tick(0.1)
            assert len(loaded_server.active_applications()) == 1


class TestEsdMode:
    def make_coordinator(self, server, config):
        cycle = compute_duty_cycle(
            p_idle_w=config.p_idle_w,
            p_cm_w=config.p_cm_w,
            sum_app_w=40.0,
            p_cap_w=80.0,
            efficiency=0.7,
            period_s=2.0,
        )
        battery = LeadAcidBattery(
            capacity_j=10_000.0, efficiency=0.7, max_charge_w=50.0, max_discharge_w=60.0
        )
        controller = EsdController(battery, cycle)
        knob = config.max_knob
        plan = AllocationPlan(
            mode=CoordinationMode.ESD,
            p_cap_w=80.0,
            allocation=record_for(["kmeans", "stream"], knob, power=20.0),
            knobs={"kmeans": knob, "stream": knob},
            duty_cycle=cycle,
        )
        coordinator = Coordinator(server)
        coordinator.adopt(plan, esd_controller=controller)
        return coordinator, battery

    def test_off_phase_deep_sleeps_and_banks(self, loaded_server, config):
        coordinator, battery = self.make_coordinator(loaded_server, config)
        action = coordinator.step(0.1)
        loaded_server.tick(
            0.1, esd_charge_w=action.esd_charge_w, deep_sleep=action.deep_sleep
        )
        assert action.deep_sleep
        assert action.esd_charge_w > 0
        assert battery.stored_j > 0
        assert loaded_server.active_applications() == []

    def test_on_phase_runs_all_apps_together(self, loaded_server, config):
        """R4: consolidated duty cycling runs everyone simultaneously."""
        coordinator, battery = self.make_coordinator(loaded_server, config)
        saw_on = False
        for _ in range(60):
            action = coordinator.step(0.1)
            loaded_server.tick(
                0.1,
                esd_charge_w=action.esd_charge_w,
                esd_discharge_w=action.esd_discharge_w,
                deep_sleep=action.deep_sleep,
            )
            active = loaded_server.active_applications()
            assert active == [] or active == ["kmeans", "stream"]
            if active:
                saw_on = True
                assert action.esd_discharge_w > 0
        assert saw_on

    def test_cap_respected_through_full_cycles(self, loaded_server, config):
        coordinator, _ = self.make_coordinator(loaded_server, config)
        for _ in range(100):
            action = coordinator.step(0.1)
            loaded_server.tick(
                0.1,
                esd_charge_w=action.esd_charge_w,
                esd_discharge_w=action.esd_discharge_w,
                deep_sleep=action.deep_sleep,
            )
            loaded_server.assert_within_cap(80.0, tolerance_w=1e-6)


class TestIdleMode:
    def test_everything_suspended_and_sleeping(self, loaded_server):
        plan = AllocationPlan(mode=CoordinationMode.IDLE, p_cap_w=55.0)
        coordinator = Coordinator(loaded_server)
        coordinator.adopt(plan)
        action = coordinator.step(0.1)
        assert action.deep_sleep
        result = loaded_server.tick(0.1, deep_sleep=True)
        assert result.breakdown.wall_w == pytest.approx(50.0)
