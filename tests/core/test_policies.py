"""The five policies: modes chosen, budgets respected, paper orderings."""

import pytest

from repro.errors import ConfigurationError
from repro.core.coordinator import CoordinationMode
from repro.core.policies import (
    AppAwarePolicy,
    AppResAwarePolicy,
    AppResEsdAwarePolicy,
    POLICY_NAMES,
    PolicyContext,
    ServerResAwarePolicy,
    UtilUnawarePolicy,
    hardware_enforce,
    hardware_throttle_path,
    make_policy,
)
from repro.core.utility import CandidateSet
from repro.esd.battery import LeadAcidBattery
from repro.workloads.catalog import CATALOG
from repro.workloads.mixes import get_mix


@pytest.fixture(scope="module")
def oracle_sets(config, power_model):
    return {
        name: CandidateSet.from_models(profile, config, power_model=power_model)
        for name, profile in CATALOG.items()
    }


@pytest.fixture(scope="module")
def population(config, power_model):
    import numpy as np
    from repro.learning.crossval import build_exhaustive_corpus

    corpus = build_exhaustive_corpus(config, list(CATALOG.values()))
    power = corpus.power_rows()
    perf = corpus.perf_rows()
    scales = perf.max(axis=1, keepdims=True)
    return CandidateSet.from_estimates(
        "population", config, power.mean(axis=0), (perf / scales).mean(axis=0)
    )


def context_for(config, oracle_sets, population, mix_id, p_cap_w, battery=None):
    mix = get_mix(mix_id)
    subset = {n: oracle_sets[n] for n in mix.names()}
    return PolicyContext(
        config=config,
        p_cap_w=p_cap_w,
        oracle=subset,
        estimates=subset,
        population=population,
        battery=battery,
    )


class TestThrottlePath:
    def test_path_starts_at_max_knob(self, config):
        assert hardware_throttle_path(config)[0] == config.max_knob

    def test_path_ends_at_min_knob(self, config):
        assert hardware_throttle_path(config)[-1] == config.min_knob

    def test_path_power_is_monotone_decreasing_for_compute_apps(
        self, config, oracle_sets
    ):
        cset = oracle_sets["kmeans"]
        powers = [
            cset.power_w[cset.index_of(k)] for k in hardware_throttle_path(config)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(powers, powers[1:]))

    def test_path_has_no_duplicates(self, config):
        path = hardware_throttle_path(config)
        assert len(path) == len(set(path))

    def test_enforce_fits_budget(self, config, oracle_sets):
        for budget in (25.0, 15.0, 12.0):
            knob = hardware_enforce(oracle_sets["kmeans"], config, budget)
            assert knob is not None
            cset = oracle_sets["kmeans"]
            assert cset.power_w[cset.index_of(knob)] <= budget + 1e-9

    def test_enforce_floor_fallback(self, config, oracle_sets):
        """A budget between floor and derated floor still runs (RAPL parks
        at the floor rather than refusing)."""
        cset = oracle_sets["kmeans"]
        floor_power = float(cset.power_w[cset.index_of(config.min_knob)])
        knob = hardware_enforce(cset, config, floor_power + 0.01)
        assert knob == config.min_knob

    def test_enforce_infeasible_returns_none(self, config, oracle_sets):
        assert hardware_enforce(oracle_sets["kmeans"], config, 3.0) is None


class TestRegistry:
    def test_all_names_construct(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("heracles")


class TestModeSelection:
    @pytest.mark.parametrize(
        "policy_cls",
        [UtilUnawarePolicy, ServerResAwarePolicy, AppAwarePolicy, AppResAwarePolicy],
    )
    def test_space_mode_at_100w(self, config, oracle_sets, population, policy_cls):
        ctx = context_for(config, oracle_sets, population, 10, 100.0)
        plan = policy_cls().plan(ctx)
        assert plan.mode is CoordinationMode.SPACE

    @pytest.mark.parametrize(
        "policy_cls",
        [UtilUnawarePolicy, ServerResAwarePolicy, AppAwarePolicy, AppResAwarePolicy],
    )
    def test_time_mode_at_80w(self, config, oracle_sets, population, policy_cls):
        """80 W cannot host two ~10 W minimums simultaneously."""
        ctx = context_for(config, oracle_sets, population, 10, 80.0)
        plan = policy_cls().plan(ctx)
        assert plan.mode is CoordinationMode.TIME

    def test_esd_policy_stays_spatial_when_loose(self, config, oracle_sets, population):
        battery = LeadAcidBattery(capacity_j=10_000.0)
        ctx = context_for(config, oracle_sets, population, 10, 100.0, battery)
        plan = AppResEsdAwarePolicy().plan(ctx)
        assert plan.mode is CoordinationMode.SPACE  # "ESD only under stringent caps"

    def test_esd_policy_duty_cycles_at_80w(self, config, oracle_sets, population):
        battery = LeadAcidBattery(capacity_j=10_000.0)
        ctx = context_for(config, oracle_sets, population, 10, 80.0, battery)
        plan = AppResEsdAwarePolicy().plan(ctx)
        assert plan.mode is CoordinationMode.ESD
        assert plan.duty_cycle is not None
        assert plan.duty_cycle.off_s > 0

    def test_esd_policy_works_below_cm_threshold(self, config, oracle_sets, population):
        """At 70 W nothing can run without the battery (Fig. 5 regime)."""
        battery = LeadAcidBattery(capacity_j=10_000.0)
        ctx = context_for(config, oracle_sets, population, 10, 70.0, battery)
        plan = AppResEsdAwarePolicy().plan(ctx)
        assert plan.mode is CoordinationMode.ESD

    def test_non_esd_policies_idle_below_idle_plus_cm_plus_min(
        self, config, oracle_sets, population
    ):
        ctx = context_for(config, oracle_sets, population, 10, 70.0)
        plan = UtilUnawarePolicy().plan(ctx)
        assert plan.mode is CoordinationMode.IDLE

    def test_esd_policy_requires_battery(self, config, oracle_sets, population):
        ctx = context_for(config, oracle_sets, population, 10, 80.0)
        with pytest.raises(ConfigurationError):
            AppResEsdAwarePolicy().plan(ctx)

    def test_server_res_requires_population(self, config, oracle_sets):
        mix = get_mix(10)
        subset = {n: oracle_sets[n] for n in mix.names()}
        ctx = PolicyContext(
            config=config, p_cap_w=100.0, oracle=subset, estimates=subset
        )
        with pytest.raises(ConfigurationError):
            ServerResAwarePolicy().plan(ctx)


class TestBudgets:
    @pytest.mark.parametrize(
        "policy_cls",
        [UtilUnawarePolicy, ServerResAwarePolicy, AppAwarePolicy, AppResAwarePolicy],
    )
    def test_space_plans_fit_the_cap(
        self, config, oracle_sets, population, power_model, policy_cls
    ):
        for mix_id in (1, 10, 14):
            ctx = context_for(config, oracle_sets, population, mix_id, 100.0)
            plan = policy_cls().plan(ctx)
            running = {
                name: (CATALOG[name], knob) for name, knob in plan.knobs.items()
            }
            assert power_model.server_power_w(running) <= 100.0 + 1e-6

    def test_time_slots_fit_the_cap(self, config, oracle_sets, population, power_model):
        for policy_cls in (UtilUnawarePolicy, AppResAwarePolicy):
            ctx = context_for(config, oracle_sets, population, 10, 80.0)
            plan = policy_cls().plan(ctx)
            for slot in plan.slots:
                running = {
                    name: (CATALOG[name], slot.knobs[name]) for name in slot.apps
                }
                assert power_model.server_power_w(running) <= 80.0 + 1e-6

    def test_esd_on_phase_overshoot_within_battery(self, config, oracle_sets, population):
        battery = LeadAcidBattery(capacity_j=10_000.0, max_discharge_w=60.0)
        ctx = context_for(config, oracle_sets, population, 10, 80.0, battery)
        plan = AppResEsdAwarePolicy().plan(ctx)
        assert plan.duty_cycle.discharge_w <= battery.max_discharge_w + 1e-9


class TestPaperOrderings:
    def test_app_aware_splits_unevenly_for_mix10(
        self, config, oracle_sets, population
    ):
        """Mix-10: PageRank takes the larger share (the 55-45 split)."""
        ctx = context_for(config, oracle_sets, population, 10, 100.0)
        plan = AppResAwarePolicy().plan(ctx)
        assert plan.allocation.share_of("pagerank") > plan.allocation.share_of("kmeans")

    def test_util_unaware_splits_evenly(self, config, oracle_sets, population):
        ctx = context_for(config, oracle_sets, population, 10, 100.0)
        plan = UtilUnawarePolicy().plan(ctx)
        shares = [plan.allocation.share_of(n) for n in ("pagerank", "kmeans")]
        assert abs(shares[0] - shares[1]) < 0.12  # near-even (knob grid granularity)

    def test_app_res_objective_dominates_baselines(
        self, config, oracle_sets, population
    ):
        """On oracle estimates, the full DP beats every baseline's plan."""
        for mix_id in (1, 10, 14):
            ctx = context_for(config, oracle_sets, population, mix_id, 100.0)
            objectives = {}
            for cls in (UtilUnawarePolicy, ServerResAwarePolicy, AppResAwarePolicy):
                plan = cls().plan(ctx)
                objectives[cls.__name__] = plan.allocation.objective
            assert objectives["AppResAwarePolicy"] >= objectives["UtilUnawarePolicy"] - 1e-6
            assert (
                objectives["AppResAwarePolicy"]
                >= objectives["ServerResAwarePolicy"] - 1e-6
            )

    def test_weighted_time_shares_favor_better_app(
        self, config, oracle_sets, population
    ):
        ctx = context_for(config, oracle_sets, population, 14, 80.0)
        plan = AppResAwarePolicy().plan(ctx)
        durations = {slot.apps[0]: slot.duration_s for slot in plan.slots}
        assert len(durations) == 2
        assert max(durations.values()) > min(durations.values())
