"""run_dynamic_experiment: Poisson arrival streams against one server."""

import pytest

from repro.errors import ConfigurationError
from repro.core.simulation import run_dynamic_experiment
from repro.workloads.catalog import CATALOG
from repro.workloads.generator import ArrivalEvent, ArrivalSchedule
from repro.workloads.profiles import WorkloadProfile


def short(name, work, suffix=""):
    base = CATALOG[name].with_total_work(work)
    if suffix:
        return WorkloadProfile.from_dict({**base.to_dict(), "name": f"{name}{suffix}"})
    return base


class TestDynamicExperiment:
    def test_arrivals_and_completions(self, config):
        schedule = ArrivalSchedule(
            [
                ArrivalEvent(0.0, short("kmeans", 20.0)),
                ArrivalEvent(5.0, short("x264", 20.0)),
            ]
        )
        result = run_dynamic_experiment(
            schedule,
            "app+res-aware",
            100.0,
            horizon_s=60.0,
            config=config,
            use_oracle_estimates=True,
        )
        assert result.admitted == ("kmeans", "x264")
        assert set(result.completed) == {"kmeans", "x264"}
        assert result.rejected == ()
        assert result.events["ArrivalEvent"] == 2
        assert result.events["DepartureEvent"] == 2
        assert result.mean_normalized_throughput > 0.3

    def test_overflow_arrivals_rejected(self, config):
        schedule = ArrivalSchedule(
            [
                ArrivalEvent(0.0, short("kmeans", 1e6)),
                ArrivalEvent(1.0, short("stream", 1e6)),
                ArrivalEvent(2.0, short("sssp", 1e6)),  # no third core group
            ]
        )
        result = run_dynamic_experiment(
            schedule,
            "util-unaware",
            110.0,
            horizon_s=10.0,
            config=config,
        )
        assert result.rejected == ("sssp",)

    def test_narrow_groups_admit_more(self, config):
        schedule = ArrivalSchedule(
            [
                ArrivalEvent(float(i), short(name, 1e6, f"#{i}"))
                for i, name in enumerate(("kmeans", "stream", "sssp", "x264"))
            ]
        )
        result = run_dynamic_experiment(
            schedule,
            "app+res-aware",
            120.0,
            horizon_s=12.0,
            config=config,
            group_width=3,
            use_oracle_estimates=True,
        )
        assert len(result.admitted) == 4
        assert result.rejected == ()

    def test_idle_gaps_are_skipped(self, config):
        """A long quiet period before the first arrival must not crash or
        stall the driver."""
        schedule = ArrivalSchedule([ArrivalEvent(50.0, short("kmeans", 10.0))])
        result = run_dynamic_experiment(
            schedule,
            "app+res-aware",
            100.0,
            horizon_s=70.0,
            config=config,
            use_oracle_estimates=True,
        )
        assert result.admitted == ("kmeans",)
        assert result.completed == ("kmeans",)

    def test_invalid_horizon_rejected(self, config):
        with pytest.raises(ConfigurationError):
            run_dynamic_experiment(
                ArrivalSchedule([]), "util-unaware", 100.0, horizon_s=0.0, config=config
            )

    def test_poisson_stream_end_to_end(self, config):
        schedule = ArrivalSchedule.poisson(
            rate_per_s=0.05,
            horizon_s=100.0,
            seed=9,
            names=["kmeans", "x264"],
        )
        # Shrink everyone's work so departures actually happen.
        schedule = ArrivalSchedule(
            [
                ArrivalEvent(e.time_s, e.profile.with_total_work(30.0))
                for e in schedule.events
            ]
        )
        result = run_dynamic_experiment(
            schedule,
            "app+res-aware",
            100.0,
            horizon_s=120.0,
            config=config,
            use_oracle_estimates=True,
        )
        assert len(result.admitted) + len(result.rejected) == len(schedule)
        if result.admitted:
            assert result.mean_normalized_throughput > 0.0
