"""Mediator-level defense integration: honest-run transparency, quarantine
posture, trace/metrics emission, and checkpoint fidelity mid-quarantine."""

import json

import pytest

from repro.adversary.plan import default_adversary_schedule
from repro.core.simulation import run_mix_experiment
from repro.core.trust import DefenseConfig, TrustState
from repro.observability.trace import TraceBus
from repro.workloads.catalog import CATALOG


def probe_schedule(start_s=2.0):
    return default_adversary_schedule("stream", kind="probe", start_s=start_s, seed=0)


def adversarial_mediator(make_mediator, *, adversaries=probe_schedule(), **kwargs):
    mediator = make_mediator(cap=108.0, adversaries=adversaries, **kwargs)
    mediator.add_application(CATALOG["stream"], skip_overhead=True)
    mediator.add_application(CATALOG["kmeans"], skip_overhead=True)
    return mediator


class TestHonestTransparency:
    def test_defense_is_invisible_on_an_honest_run(self, config):
        """With no adversaries the trust layer must be a pure observer:
        the defended and undefended runs produce identical results."""
        apps = [CATALOG["stream"], CATALOG["kmeans"]]
        kwargs = dict(mix_id=1, config=config, duration_s=6.0, warmup_s=2.0,
                      use_oracle_estimates=True)
        on = run_mix_experiment(apps, "app+res-aware", 108.0, **kwargs)
        off = run_mix_experiment(
            apps, "app+res-aware", 108.0,
            defense=DefenseConfig(enabled=False), **kwargs,
        )
        assert on.normalized_throughput == off.normalized_throughput
        assert on.power_share == off.power_share
        assert on.mean_wall_power_w == off.mean_wall_power_w


class TestQuarantinePosture:
    def test_attacker_quarantined_and_instrumented(self, make_mediator):
        bus = TraceBus()
        mediator = adversarial_mediator(make_mediator, trace_bus=bus)
        mediator.run_for(10.0)

        assert mediator.trust.state_of("stream") is TrustState.QUARANTINED
        assert mediator.trust.state_of("kmeans") is TrustState.TRUSTED
        # Transitions for the attacker only.
        assert {t.app for t in mediator.trust.transitions} == {"stream"}

        kinds = {e.kind for e in bus.sim_events()}
        assert "adv-attack-start" in kinds
        assert "adv-quarantine" in kinds

        metrics = mediator.export_metrics()
        assert metrics["counters"]["defense.transitions.quarantined"] >= 1
        assert metrics["gauges"]["defense.quarantined_apps"] == 1.0

    def test_quarantine_suspends_the_attacker(self, make_mediator):
        mediator = adversarial_mediator(make_mediator)
        mediator.run_for(10.0)
        # Quarantined tenants are dropped from the plan: the attacker draws
        # nothing while the honest app keeps running under the cap.
        record = mediator.timeline[-1]
        assert "stream" not in record.app_power_w
        assert record.app_power_w["kmeans"] > 0.0
        assert record.wall_w <= 108.0 + 1e-6

    def test_register_adversary_is_idempotent(self, make_mediator):
        mediator = adversarial_mediator(make_mediator)
        (spec,) = probe_schedule().specs
        mediator.register_adversary(spec)  # same spec again: journal replay
        assert mediator.adversary_engine.specs() == [spec]


class TestCheckpointFidelity:
    def test_round_trip_mid_quarantine(self, make_mediator):
        """A checkpoint taken while the attacker sits in quarantine restores
        onto a mediator built *without* the adversaries kwarg - the engine
        specs and trust records travel in the state - and the continuation
        is bit-identical."""
        live = adversarial_mediator(make_mediator)
        live.run_for(6.0)
        assert live.trust.state_of("stream") is TrustState.QUARANTINED

        state = json.loads(json.dumps(live.state_dict()))
        restored = adversarial_mediator(make_mediator, adversaries=None)
        restored.load_state_dict(state)
        assert restored.trust.state_of("stream") is TrustState.QUARANTINED
        assert restored.adversary_engine.specs() == live.adversary_engine.specs()

        live.run_for(4.0)
        restored.run_for(4.0)
        assert restored.state_dict() == live.state_dict()
        assert [t.to_state for t in restored.trust.transitions] == [
            t.to_state for t in live.trust.transitions
        ]
