"""The mediator's RAPL guard: bad estimates must never break the cap.

These tests inject deliberately corrupted estimates (power under-reported
by a large factor) and verify the guard trims every coordination mode's
actuation back under the relevant budgets.
"""

import numpy as np
import pytest

from repro.core.coordinator import CoordinationMode
from repro.core.mediator import PowerMediator
from repro.core.policies import make_policy
from repro.core.simulation import default_battery
from repro.core.utility import CandidateSet
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG


class LyingMediator(PowerMediator):
    """A mediator whose learning pipeline under-reports power by 40%.

    Sees every config as cheaper than it is - the worst case for cap
    adherence, since the allocator will overcommit the budget.
    """

    def _refresh_views(self, app: str) -> None:  # noqa: D102
        super()._refresh_views(app)
        oracle = self._oracle[app]
        self._estimates[app] = CandidateSet(
            app=app,
            knobs=oracle.knobs,
            power_w=oracle.power_w * 0.6,
            perf=oracle.perf.copy(),
            perf_nocap=oracle.perf_nocap,
        )


def lying_mediator(config, policy_name, cap, battery=None):
    server = SimulatedServer(config)
    return server, LyingMediator(
        server, make_policy(policy_name), cap, battery=battery
    )


class TestGuardUnderLyingEstimates:
    def test_space_mode_trimmed(self, config):
        server, mediator = lying_mediator(config, "app+res-aware", 100.0)
        for name in ("pagerank", "kmeans"):
            mediator.add_application(
                CATALOG[name].with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(5.0)
        assert mediator.coordinator.plan.mode is CoordinationMode.SPACE
        for record in mediator.timeline:
            assert record.wall_w <= 100.0 + 1e-6

    def test_time_mode_trimmed(self, config):
        server, mediator = lying_mediator(config, "app+res-aware", 80.0)
        for name in ("pagerank", "kmeans"):
            mediator.add_application(
                CATALOG[name].with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(8.0)
        assert mediator.coordinator.plan.mode is CoordinationMode.TIME
        for record in mediator.timeline:
            assert record.wall_w <= 80.0 + 1e-6

    def test_esd_mode_trimmed(self, config):
        server, mediator = lying_mediator(
            config, "app+res+esd-aware", 80.0, battery=default_battery()
        )
        for name in ("pagerank", "kmeans"):
            mediator.add_application(
                CATALOG[name].with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(25.0)
        assert mediator.coordinator.plan.mode is CoordinationMode.ESD
        for record in mediator.timeline:
            assert record.wall_w <= 80.0 + 1e-6

    def test_trimmed_plan_still_makes_progress(self, config):
        """The guard degrades gracefully - it must not starve the apps."""
        server, mediator = lying_mediator(config, "app+res-aware", 100.0)
        for name in ("pagerank", "kmeans"):
            mediator.add_application(
                CATALOG[name].with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(6.0)
        assert mediator.server_objective(since_s=2.0) > 0.8

    def test_guard_uses_true_power_for_duty_cycle(self, config):
        """In ESD mode the Eq. 5 schedule must balance against measured
        draws, or the battery would drain over cycles."""
        server, mediator = lying_mediator(
            config, "app+res+esd-aware", 80.0, battery=default_battery()
        )
        for name in ("pagerank", "kmeans"):
            mediator.add_application(
                CATALOG[name].with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(60.0)
        socs = [
            r.battery_soc for r in mediator.timeline if r.time_s > 20.0
        ]
        # Sustainable cycle: SoC oscillates around a level instead of
        # draining monotonically.
        first_half = np.mean(socs[: len(socs) // 2])
        second_half = np.mean(socs[len(socs) // 2 :])
        assert second_half >= first_half * 0.5
        # And work happens.
        assert mediator.server_objective(since_s=20.0) > 0.2
