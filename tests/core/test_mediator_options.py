"""Mediator configuration options: custom corpus, sampler, noise, dt."""

import pytest

from repro.errors import ConfigurationError
from repro.core.mediator import PowerMediator
from repro.core.policies import make_policy
from repro.learning.crossval import build_exhaustive_corpus
from repro.learning.sampling import RandomSampler, StratifiedSampler
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG


class TestOptions:
    def test_custom_corpus_is_used(self, config):
        """A cold-start corpus (few seen apps) still produces a working
        mediator - the CF estimates are worse, the guard protects the cap."""
        corpus = build_exhaustive_corpus(
            config, [CATALOG[n] for n in ("bfs", "ferret", "apr", "triangle")]
        )
        server = SimulatedServer(config)
        mediator = PowerMediator(
            server, make_policy("app+res-aware"), 100.0, corpus=corpus, seed=2
        )
        for name in ("pagerank", "kmeans"):
            mediator.add_application(
                CATALOG[name].with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(4.0)
        for record in mediator.timeline:
            assert record.wall_w <= 100.0 + 1e-6
        assert mediator.server_objective(since_s=1.0) > 0.5

    def test_custom_sampler(self, config):
        server = SimulatedServer(config)
        mediator = PowerMediator(
            server,
            make_policy("app+res-aware"),
            100.0,
            sampler=RandomSampler(0.05, seed=9),
            seed=9,
        )
        mediator.add_application(
            CATALOG["kmeans"].with_total_work(float("inf")), skip_overhead=True
        )
        mediator.run_for(2.0)
        assert mediator.server_objective(since_s=0.5) > 0.5

    def test_zero_noise_learning_is_nearly_oracle(self, config):
        results = {}
        for noise in (0.0, 1.0):
            server = SimulatedServer(config)
            mediator = PowerMediator(
                server,
                make_policy("app+res-aware"),
                100.0,
                power_noise_std_w=noise,
                perf_noise_relative_std=0.0 if noise == 0.0 else 0.1,
                sampler=StratifiedSampler(0.10, seed=1),
                seed=1,
            )
            for name in ("stream", "kmeans"):
                mediator.add_application(
                    CATALOG[name].with_total_work(float("inf")), skip_overhead=True
                )
            mediator.run_for(5.0)
            results[noise] = mediator.server_objective(since_s=1.0)
        assert results[0.0] >= results[1.0] - 0.15

    def test_invalid_dt_rejected(self, config):
        with pytest.raises(ConfigurationError):
            PowerMediator(
                SimulatedServer(config), make_policy("util-unaware"), 100.0, dt_s=0.0
            )

    def test_coarse_dt_still_holds_cap(self, config):
        server = SimulatedServer(config)
        mediator = PowerMediator(
            server,
            make_policy("app+res-aware"),
            100.0,
            dt_s=0.5,
            use_oracle_estimates=True,
        )
        for name in ("pagerank", "kmeans"):
            mediator.add_application(
                CATALOG[name].with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(10.0)
        for record in mediator.timeline:
            assert record.wall_w <= 100.0 + 1e-6
