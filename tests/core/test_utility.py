"""Utility curves: candidate sets, Pareto envelope, Fig. 2/3 quantities."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.utility import (
    CandidateSet,
    UtilityCurve,
    app_utility_curve,
    pareto_envelope,
    resource_marginal_utilities,
)
from repro.server.config import KnobSetting
from repro.workloads.catalog import CATALOG


class TestCandidateSet:
    def test_from_models_covers_knob_space(self, config, power_model, kmeans):
        cset = CandidateSet.from_models(kmeans, config, power_model=power_model)
        assert len(cset.knobs) == len(config.knob_space())
        assert cset.perf_nocap == pytest.approx(
            power_model.perf_model.peak_rate(kmeans)
        )

    def test_min_max_power(self, config, power_model, kmeans):
        cset = CandidateSet.from_models(kmeans, config, power_model=power_model)
        assert cset.min_power_w == pytest.approx(power_model.min_app_power_w(kmeans))
        assert cset.max_power_w == pytest.approx(power_model.max_app_power_w(kmeans))

    def test_best_index_under_budget(self, config, power_model, kmeans):
        cset = CandidateSet.from_models(kmeans, config, power_model=power_model)
        idx = cset.best_index_under(15.0)
        assert idx is not None
        assert cset.power_w[idx] <= 15.0
        # Nothing feasible beats it.
        feasible = cset.power_w <= 15.0
        assert cset.perf[idx] == pytest.approx(cset.perf[feasible].max())

    def test_best_index_infeasible_budget(self, config, power_model, kmeans):
        cset = CandidateSet.from_models(kmeans, config, power_model=power_model)
        assert cset.best_index_under(1.0) is None

    def test_from_estimates_requires_positive_nocap(self, config):
        n = len(config.knob_space())
        with pytest.raises(ConfigurationError):
            CandidateSet.from_estimates("x", config, np.ones(n), np.zeros(n))

    def test_subset(self, config, power_model, kmeans):
        cset = CandidateSet.from_models(kmeans, config, power_model=power_model)
        sub = cset.subset([0, 5, 10])
        assert len(sub.knobs) == 3
        assert sub.perf_nocap == cset.perf_nocap

    def test_index_of_missing_knob(self, config, power_model, kmeans):
        cset = CandidateSet.from_models(kmeans, config, power_model=power_model)
        sub = cset.subset([0])
        with pytest.raises(ConfigurationError):
            sub.index_of(config.max_knob)

    def test_relative_perf_peaks_at_one(self, config, power_model, kmeans):
        cset = CandidateSet.from_models(kmeans, config, power_model=power_model)
        assert cset.relative_perf().max() == pytest.approx(1.0)


class TestParetoEnvelope:
    def test_frontier_is_smaller_than_space(self, config, power_model, kmeans):
        cset = CandidateSet.from_models(kmeans, config, power_model=power_model)
        frontier = pareto_envelope(cset)
        assert 2 <= len(frontier) < len(cset.knobs)

    def test_frontier_sorted_by_power_and_perf(self, config, power_model, kmeans):
        cset = CandidateSet.from_models(kmeans, config, power_model=power_model)
        frontier = pareto_envelope(cset)
        powers = [cset.power_w[i] for i in frontier]
        perfs = [cset.perf[i] for i in frontier]
        assert powers == sorted(powers)
        assert perfs == sorted(perfs)

    def test_no_frontier_point_is_dominated(self, config, power_model, stream):
        cset = CandidateSet.from_models(stream, config, power_model=power_model)
        frontier = pareto_envelope(cset)
        for i in frontier:
            dominating = (cset.power_w < cset.power_w[i] - 1e-12) & (
                cset.perf >= cset.perf[i]
            )
            assert not dominating.any()

    def test_frontier_contains_the_best_under_any_budget(
        self, config, power_model, kmeans
    ):
        cset = CandidateSet.from_models(kmeans, config, power_model=power_model)
        frontier = set(pareto_envelope(cset))
        for budget in (10.0, 14.0, 18.0, 25.0):
            best = cset.best_index_under(budget)
            if best is None:
                continue
            best_perf = cset.perf[best]
            frontier_best = max(
                (cset.perf[i] for i in frontier if cset.power_w[i] <= budget),
                default=-1.0,
            )
            assert frontier_best == pytest.approx(best_perf)


class TestUtilityCurve:
    def test_curve_is_monotone(self, config, power_model):
        """Fig. 2: more budget never hurts."""
        for name in ("kmeans", "stream", "sssp"):
            cset = CandidateSet.from_models(CATALOG[name], config, power_model=power_model)
            curve = app_utility_curve(cset)
            values = list(curve.relative_perf)
            assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_curve_reaches_one_at_full_demand(self, config, power_model, kmeans):
        cset = CandidateSet.from_models(kmeans, config, power_model=power_model)
        curve = app_utility_curve(cset)
        assert curve.relative_perf[-1] == pytest.approx(1.0)

    def test_curve_zero_below_min_power(self, config, power_model, kmeans):
        cset = CandidateSet.from_models(kmeans, config, power_model=power_model)
        curve = app_utility_curve(cset, budgets_w=[1.0, 5.0])
        assert curve.relative_perf == (0.0, 0.0)

    def test_value_at_interpolates_downward(self):
        curve = UtilityCurve("x", (10.0, 20.0), (0.5, 1.0))
        assert curve.value_at(15.0) == 0.5
        assert curve.value_at(25.0) == 1.0
        assert curve.value_at(5.0) == 0.0

    def test_marginal_utility_length(self):
        curve = UtilityCurve("x", (10.0, 20.0, 30.0), (0.2, 0.6, 0.8))
        slopes = curve.marginal_utility()
        assert len(slopes) == 2
        assert slopes[0] == pytest.approx(0.04)

    def test_curves_differ_across_apps(self, config, power_model):
        """The premise of R1: utility curves differ between applications."""
        budgets = [10.0, 12.0, 14.0, 16.0, 18.0, 20.0]
        curves = {}
        for name in ("pagerank", "x264"):
            cset = CandidateSet.from_models(CATALOG[name], config, power_model=power_model)
            curves[name] = app_utility_curve(cset, budgets).relative_perf
        assert curves["pagerank"] != curves["x264"]


class TestResourceMarginalUtilities:
    def test_all_resources_reported(self, config, kmeans):
        utilities = resource_marginal_utilities(kmeans, config)
        assert set(utilities) == {"core", "frequency", "memory"}

    def test_stream_values_memory_most(self, config, stream):
        """Fig. 3: the memory app benefits most from memory watts."""
        utilities = resource_marginal_utilities(stream, config)
        assert utilities["memory"] > utilities["frequency"]
        assert utilities["memory"] > utilities["core"]

    def test_kmeans_values_compute(self, config, kmeans):
        utilities = resource_marginal_utilities(kmeans, config)
        assert max(utilities["core"], utilities["frequency"]) > utilities["memory"]

    def test_saturated_resource_has_zero_utility(self, config, kmeans):
        ref = config.max_knob  # nothing can grow
        utilities = resource_marginal_utilities(kmeans, config, reference=ref)
        assert utilities == {"core": 0.0, "frequency": 0.0, "memory": 0.0}

    def test_off_grid_reference_rejected(self, config, kmeans):
        from repro.errors import KnobError

        with pytest.raises(KnobError):
            resource_marginal_utilities(
                kmeans, config, reference=KnobSetting(1.55, 3, 7.0)
            )
