"""PowerAllocator: knapsack optimality, budget feasibility, exclusions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PowerBudgetError
from repro.core.allocator import PowerAllocator
from repro.core.utility import CandidateSet
from repro.workloads.catalog import CATALOG


@pytest.fixture(scope="module")
def csets(config, power_model):
    return {
        name: CandidateSet.from_models(CATALOG[name], config, power_model=power_model)
        for name in ("pagerank", "kmeans", "stream", "sssp")
    }


def pair(csets, a, b):
    return {a: csets[a], b: csets[b]}


class TestFeasibility:
    def test_allocation_respects_budget(self, csets):
        allocator = PowerAllocator()
        for budget in (12.0, 20.0, 30.0, 45.0):
            allocation = allocator.allocate(pair(csets, "pagerank", "kmeans"), budget)
            assert allocation.total_power_w <= budget + 1e-9

    def test_generous_budget_gives_everyone_max(self, csets):
        allocation = PowerAllocator().allocate(pair(csets, "pagerank", "kmeans"), 60.0)
        for app in ("pagerank", "kmeans"):
            assert allocation.apps[app].relative_perf == pytest.approx(1.0, abs=1e-6)

    def test_tiny_budget_excludes_everyone(self, csets):
        allocation = PowerAllocator().allocate(pair(csets, "pagerank", "kmeans"), 2.0)
        assert allocation.excluded == ["kmeans", "pagerank"]
        assert allocation.total_power_w == 0.0

    def test_stringent_budget_runs_a_subset(self, csets):
        """The 80 W regime: one app's minimum fits, two don't."""
        allocation = PowerAllocator().allocate(pair(csets, "pagerank", "kmeans"), 10.0)
        assert len(allocation.included) == 1
        assert len(allocation.excluded) == 1

    def test_exclusion_disabled_raises(self, csets):
        allocator = PowerAllocator(allow_exclusion=False)
        with pytest.raises(PowerBudgetError):
            allocator.allocate(pair(csets, "pagerank", "kmeans"), 10.0)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerAllocator().allocate({}, 30.0)

    def test_invalid_grain_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerAllocator(grain_w=0.0)


class TestOptimality:
    def test_beats_or_matches_fair_split(self, csets):
        """The DP's whole purpose: never worse than the even division."""
        allocator = PowerAllocator()
        for a, b in (("pagerank", "kmeans"), ("stream", "kmeans"), ("sssp", "pagerank")):
            candidates = pair(csets, a, b)
            for budget in (20.0, 26.0, 30.0, 36.0):
                dp = allocator.allocate(candidates, budget)
                fair = allocator.allocate_fair(candidates, budget)
                assert dp.objective >= fair.objective - 1e-6

    def test_matches_exhaustive_two_app_optimum(self, csets):
        """Exact check against brute force over both Pareto frontiers."""
        from repro.core.utility import pareto_envelope

        candidates = pair(csets, "pagerank", "stream")
        budget = 28.0
        allocator = PowerAllocator(grain_w=0.1)
        dp = allocator.allocate(candidates, budget)

        best = 0.0
        fa = pareto_envelope(candidates["pagerank"])
        fb = pareto_envelope(candidates["stream"])
        ca, cb = candidates["pagerank"], candidates["stream"]
        for i in fa:
            for j in fb:
                if ca.power_w[i] + cb.power_w[j] <= budget:
                    value = (
                        ca.perf[i] / ca.perf_nocap + cb.perf[j] / cb.perf_nocap
                    )
                    best = max(best, value)
        assert dp.objective == pytest.approx(best, abs=0.02)

    def test_single_app_gets_best_under_budget(self, csets):
        cset = csets["kmeans"]
        allocation = PowerAllocator(grain_w=0.1).allocate({"kmeans": cset}, 15.0)
        idx = cset.best_index_under(15.0)
        assert allocation.apps["kmeans"].relative_perf == pytest.approx(
            float(cset.perf[idx] / cset.perf_nocap), abs=0.02
        )

    def test_splits_reflect_utility_differences(self, csets):
        """Mix-10: PageRank earns the larger share (the paper's 55-45)."""
        allocation = PowerAllocator().allocate(pair(csets, "pagerank", "kmeans"), 30.0)
        assert allocation.share_of("pagerank") > allocation.share_of("kmeans")


class TestFairSplit:
    def test_equal_budgets(self, csets):
        allocation = PowerAllocator().allocate_fair(
            pair(csets, "pagerank", "kmeans"), 30.0
        )
        for app in ("pagerank", "kmeans"):
            assert allocation.apps[app].power_w <= 15.0 + 1e-9

    def test_infeasible_share_excludes(self, csets):
        allocation = PowerAllocator().allocate_fair(
            pair(csets, "pagerank", "kmeans"), 10.0
        )
        assert allocation.excluded == ["kmeans", "pagerank"]


class TestAccounting:
    def test_shares_sum_to_one_when_running(self, csets):
        allocation = PowerAllocator().allocate(pair(csets, "stream", "kmeans"), 30.0)
        total = sum(allocation.share_of(a) for a in ("stream", "kmeans"))
        assert total == pytest.approx(1.0)

    def test_objective_matches_summed_relative_perf(self, csets):
        allocation = PowerAllocator().allocate(pair(csets, "stream", "kmeans"), 30.0)
        summed = sum(
            a.relative_perf for a in allocation.apps.values() if not a.excluded
        )
        assert allocation.objective == pytest.approx(summed, abs=1e-6)

    def test_excluded_app_records(self, csets):
        allocation = PowerAllocator().allocate(pair(csets, "pagerank", "kmeans"), 10.0)
        for name in allocation.excluded:
            record = allocation.apps[name]
            assert record.power_w == 0.0
            assert record.relative_perf == 0.0
            assert allocation.share_of(name) == 0.0


class TestWeights:
    """The TrustScorer's allocation de-weighting path."""

    @pytest.mark.parametrize(
        "bad", [0.0, -1.0, float("nan"), float("inf")]
    )
    def test_invalid_weight_rejected(self, csets, bad):
        allocator = PowerAllocator()
        with pytest.raises(ConfigurationError, match="must be positive and finite"):
            allocator.allocate(
                pair(csets, "stream", "kmeans"), 30.0, weights={"stream": bad}
            )
        with pytest.raises(ConfigurationError, match="must be positive and finite"):
            allocator.allocate_fair(
                pair(csets, "stream", "kmeans"), 30.0, weights={"stream": bad}
            )

    def test_all_ones_weights_are_a_perfect_noop(self, csets):
        """Golden traces pin defense-on == defense-off for honest tenants:
        trivial weights must not even enter the weighted code path."""
        allocator = PowerAllocator()
        plain = allocator.allocate(pair(csets, "stream", "kmeans"), 30.0)
        ones = allocator.allocate(
            pair(csets, "stream", "kmeans"), 30.0,
            weights={"stream": 1.0, "kmeans": 1.0},
        )
        assert ones == plain

    def test_missing_apps_default_to_weight_one(self, csets):
        allocator = PowerAllocator()
        plain = allocator.allocate(pair(csets, "stream", "kmeans"), 30.0)
        partial = allocator.allocate(
            pair(csets, "stream", "kmeans"), 30.0, weights={"ghost": 0.5}
        )
        assert partial == plain

    def test_deweighted_app_loses_budget(self, csets):
        allocator = PowerAllocator()
        plain = allocator.allocate(pair(csets, "stream", "kmeans"), 26.0)
        tilted = allocator.allocate(
            pair(csets, "stream", "kmeans"), 26.0, weights={"stream": 0.05}
        )
        assert tilted.apps["stream"].power_w <= plain.apps["stream"].power_w
        assert tilted.apps["kmeans"].power_w >= plain.apps["kmeans"].power_w
        assert tilted.apps["kmeans"].relative_perf >= plain.apps["kmeans"].relative_perf

    def test_fair_objective_reported_in_weighted_units(self, csets):
        """allocate() compares the knapsack against the fair floor by
        objective; both must be in the same (weighted) units."""
        allocator = PowerAllocator()
        weights = {"stream": 0.25, "kmeans": 1.0}
        plain = allocator.allocate_fair(pair(csets, "stream", "kmeans"), 30.0)
        weighted = allocator.allocate_fair(
            pair(csets, "stream", "kmeans"), 30.0, weights=weights
        )
        # Per-app knob choices are weight-independent ...
        for app in ("stream", "kmeans"):
            assert weighted.apps[app] == plain.apps[app]
        # ... but the reported objective is scaled.
        expected = sum(
            weights[a.app] * a.relative_perf
            for a in plain.apps.values()
            if not a.excluded
        )
        assert weighted.objective == pytest.approx(expected, abs=1e-9)
