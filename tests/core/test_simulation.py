"""Experiment drivers: single-mix runs and policy comparisons."""

import pytest

from repro.errors import ConfigurationError
from repro.core.simulation import (
    default_battery,
    run_mix_experiment,
    run_policy_comparison,
)
from repro.workloads.mixes import get_mix


class TestRunMixExperiment:
    def test_result_fields(self, config):
        result = run_mix_experiment(
            list(get_mix(10).profiles()),
            "util-unaware",
            100.0,
            mix_id=10,
            config=config,
            duration_s=5.0,
            warmup_s=2.0,
        )
        assert result.mix_id == 10
        assert result.policy == "util-unaware"
        assert set(result.normalized_throughput) == {"pagerank", "kmeans"}
        assert 0.0 < result.server_throughput <= 2.0
        assert result.mean_wall_power_w <= 100.0 + 1e-6

    def test_policy_instance_accepted(self, config):
        from repro.core.policies import AppResAwarePolicy

        result = run_mix_experiment(
            list(get_mix(1).profiles()),
            AppResAwarePolicy(),
            100.0,
            config=config,
            duration_s=4.0,
            warmup_s=2.0,
            use_oracle_estimates=True,
        )
        assert result.policy == "app+res-aware"

    def test_esd_policy_gets_default_battery(self, config):
        result = run_mix_experiment(
            list(get_mix(10).profiles()),
            "app+res+esd-aware",
            80.0,
            config=config,
            duration_s=15.0,
            warmup_s=10.0,
            use_oracle_estimates=True,
        )
        assert result.server_throughput > 0.0

    def test_shares_populated_in_space_mode(self, config):
        result = run_mix_experiment(
            list(get_mix(10).profiles()),
            "app+res-aware",
            100.0,
            config=config,
            duration_s=4.0,
            warmup_s=2.0,
            use_oracle_estimates=True,
        )
        assert sum(result.power_share.values()) == pytest.approx(1.0)

    def test_empty_apps_rejected(self, config):
        with pytest.raises(ConfigurationError):
            run_mix_experiment([], "util-unaware", 100.0, config=config)

    def test_steady_state_has_no_departures(self, config):
        """run_mix_experiment must pin total_work to infinity."""
        result = run_mix_experiment(
            list(get_mix(10).profiles()),
            "util-unaware",
            100.0,
            config=config,
            duration_s=5.0,
            warmup_s=1.0,
        )
        # Both apps report positive throughput for the whole window.
        assert all(v > 0 for v in result.normalized_throughput.values())


class TestRunPolicyComparison:
    def test_structure(self, config):
        results = run_policy_comparison(
            [get_mix(10), get_mix(14)],
            ["util-unaware", "app+res-aware"],
            100.0,
            config=config,
            duration_s=4.0,
            warmup_s=2.0,
            use_oracle_estimates=True,
        )
        assert set(results) == {10, 14}
        assert set(results[10]) == {"util-unaware", "app+res-aware"}


class TestDefaultBattery:
    def test_matches_paper_esd_regime(self):
        battery = default_battery()
        assert battery.efficiency == pytest.approx(0.70)
        assert battery.soc == 0.0
        # Must supply the 80 W consolidated-ON overshoot (~40 W) and absorb
        # the 30 W charging headroom.
        assert battery.max_discharge_w >= 45.0
        assert battery.max_charge_w >= 30.0
