"""PowerMediator: end-to-end event handling, cap adherence, dynamics.

Mediators come from the shared engine-parameterized ``make_mediator``
factory (``tests/conftest.py``), so every behaviour here is pinned under
both the scalar reference and the vector fast path.
"""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.core.coordinator import CoordinationMode
from repro.core.mediator import PowerMediator
from repro.core.policies import make_policy
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG
from repro.workloads.generator import PhasedProfile
from repro.workloads.profiles import WorkloadProfile


class TestLifecycle:
    def test_add_and_run(self, make_mediator, kmeans):
        mediator = make_mediator()
        mediator.add_application(kmeans, skip_overhead=True)
        mediator.run_for(2.0)
        assert mediator.normalized_throughput("kmeans") > 0.5

    def test_two_apps_under_cap(self, make_mediator, kmeans, pagerank):
        mediator = make_mediator()
        mediator.add_application(pagerank, skip_overhead=True)
        mediator.add_application(kmeans, skip_overhead=True)
        mediator.run_for(3.0)
        for record in mediator.timeline:
            assert record.wall_w <= 100.0 + 1e-6

    def test_esd_policy_requires_battery(self, config):
        server = SimulatedServer(config)
        with pytest.raises(ConfigurationError):
            PowerMediator(server, make_policy("app+res+esd-aware"), 80.0)

    def test_reallocate_without_apps_rejected(self, make_mediator):
        mediator = make_mediator()
        with pytest.raises(SchedulingError):
            mediator.reallocate()

    def test_phased_profile_must_match_initial(self, make_mediator, kmeans):
        heavy = WorkloadProfile.from_dict({**kmeans.to_dict(), "mem_gb_per_work": 1.0})
        phased = PhasedProfile([(0.0, kmeans), (0.5, heavy)])
        mediator = make_mediator()
        with pytest.raises(ConfigurationError):
            mediator.add_application(heavy, phased=phased)

    def test_invalid_duration_rejected(self, make_mediator, kmeans):
        mediator = make_mediator()
        mediator.add_application(kmeans, skip_overhead=True)
        with pytest.raises(ConfigurationError):
            mediator.run_for(0.0)


class TestCapChange(object):
    def test_e1_triggers_reallocation(self, make_mediator, kmeans, pagerank):
        """Dropping 100 -> 80 W forces a switch to temporal coordination."""
        mediator = make_mediator(policy="app+res-aware")
        mediator.add_application(pagerank, skip_overhead=True)
        mediator.add_application(kmeans, skip_overhead=True)
        mediator.run_for(2.0)
        assert mediator.coordinator.plan.mode is CoordinationMode.SPACE
        mediator.set_power_cap(80.0)
        assert mediator.coordinator.plan.mode is CoordinationMode.TIME
        mediator.run_for(2.0)
        for record in mediator.timeline:
            assert record.wall_w <= record.p_cap_w + 1e-6

    def test_cap_raise_restores_space_mode(self, make_mediator, kmeans, pagerank):
        mediator = make_mediator(cap=80.0)
        mediator.add_application(pagerank, skip_overhead=True)
        mediator.add_application(kmeans, skip_overhead=True)
        assert mediator.coordinator.plan.mode is CoordinationMode.TIME
        mediator.set_power_cap(110.0)
        assert mediator.coordinator.plan.mode is CoordinationMode.SPACE


class TestArrival:
    def test_arrival_charges_overhead(self, make_mediator, kmeans, sssp):
        """Fig. 11a: the newcomer sits out the ~800 ms settling window."""
        mediator = make_mediator()
        mediator.add_application(sssp, skip_overhead=True)
        mediator.run_for(2.0)
        mediator.add_application(kmeans)  # overhead charged
        mediator.run_for(0.4)  # less than reallocation_latency_s
        work = sum(r.progressed.get("kmeans", 0.0) for r in mediator.timeline)
        # kmeans runs from admission, but the engine-level guarantee we
        # test is cap adherence during the window plus eventual progress.
        mediator.run_for(2.0)
        assert mediator.normalized_throughput("kmeans", since_s=2.5) > 0.0
        for record in mediator.timeline:
            assert record.wall_w <= 100.0 + 1e-6

    def test_incumbent_power_shrinks_on_arrival(self, make_mediator, kmeans, sssp):
        """Fig. 11a: SSSP's allocation drops when X264 arrives."""
        mediator = make_mediator()
        mediator.add_application(sssp, skip_overhead=True)
        mediator.run_for(2.0)
        before = mediator.timeline[-1].app_power_w["sssp"]
        mediator.add_application(kmeans, skip_overhead=True)
        mediator.run_for(2.0)
        after = mediator.timeline[-1].app_power_w["sssp"]
        assert after < before


class TestDeparture:
    def test_completion_releases_power_to_survivor(self, make_mediator, kmeans, pagerank):
        """Fig. 11b: the survivor scales up when its peer departs."""
        short = pagerank.with_total_work(12.0)
        mediator = make_mediator()
        mediator.add_application(kmeans.with_total_work(float("inf")), skip_overhead=True)
        mediator.add_application(short, skip_overhead=True)
        mediator.run_for(1.5)
        assert "pagerank" in mediator.managed_apps()  # still co-located
        capped = mediator.timeline[-1].app_power_w["kmeans"]
        mediator.run_for(20.0)  # pagerank finishes in here
        assert "pagerank" not in mediator.managed_apps()
        final = mediator.timeline[-1].app_power_w["kmeans"]
        assert final > capped
        handle = mediator.finished_handle("pagerank")
        assert handle.completed

    def test_forced_removal(self, make_mediator, kmeans, pagerank):
        mediator = make_mediator()
        mediator.add_application(kmeans, skip_overhead=True)
        mediator.add_application(pagerank, skip_overhead=True)
        mediator.run_for(1.0)
        mediator.remove_application("pagerank")
        assert mediator.managed_apps() == ["kmeans"]
        mediator.run_for(1.0)

    def test_unknown_finished_handle_rejected(self, make_mediator, kmeans):
        mediator = make_mediator()
        mediator.add_application(kmeans, skip_overhead=True)
        with pytest.raises(SchedulingError):
            mediator.finished_handle("ghost")


class TestPhaseChanges:
    def test_e4_fires_on_profile_swap(self, make_mediator):
        """A phase boundary changes true power; the Accountant notices."""
        base = CATALOG["kmeans"].with_total_work(30.0)
        lighter = WorkloadProfile.from_dict(
            {**base.to_dict(), "activity_factor": 0.5, "dvfs_sensitivity": 0.3}
        )
        phased = PhasedProfile([(0.0, base), (0.3, lighter)])
        mediator = make_mediator(cap=110.0)
        mediator.add_application(base, phased=phased, skip_overhead=True)
        mediator.run_for(15.0)
        kinds = [type(e).__name__ for e in mediator.accountant.event_log]
        assert "PhaseChangeEvent" in kinds

    def test_cap_held_across_phase_change(self, make_mediator):
        base = CATALOG["stream"].with_total_work(40.0)
        hungrier = WorkloadProfile.from_dict(
            {**base.to_dict(), "mem_gb_per_work": 1.0}
        )
        phased = PhasedProfile([(0.0, base), (0.4, hungrier)])
        mediator = make_mediator(cap=95.0)
        mediator.add_application(base, phased=phased, skip_overhead=True)
        mediator.run_for(12.0)
        for record in mediator.timeline:
            assert record.wall_w <= 95.0 + 1e-6


class TestLearningPath:
    def test_learned_estimates_stay_within_cap(self, make_mediator, kmeans, stream):
        """The RAPL guard must absorb estimation error."""
        mediator = make_mediator(use_oracle_estimates=False, seed=3)
        mediator.add_application(stream, skip_overhead=True)
        mediator.add_application(kmeans, skip_overhead=True)
        mediator.run_for(3.0)
        for record in mediator.timeline:
            assert record.wall_w <= 100.0 + 1e-6

    def test_learned_allocation_is_competitive(self, make_mediator, kmeans, stream):
        learned = make_mediator(use_oracle_estimates=False, seed=3)
        oracle = make_mediator(use_oracle_estimates=True)
        for m in (learned, oracle):
            m.add_application(stream, skip_overhead=True)
            m.add_application(kmeans, skip_overhead=True)
            m.run_for(5.0)
        assert learned.server_objective() > 0.85 * oracle.server_objective()
