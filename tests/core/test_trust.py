"""TrustScorer: the quarantine state machine, strikes, cooldowns, and
persistence - exercised with synthetic observations, no simulation."""

import json

import pytest

from repro.core.trust import (
    AppObservation,
    DefenseConfig,
    TrustScorer,
    TrustState,
)
from repro.errors import ConfigurationError

FP = ("knob", True)


def obs(
    app="a",
    *,
    running=True,
    claimed_rate=10.0,
    attributed_w=5.0,
    expected_w=5.0,
    supported_rate=10.0,
    fingerprint=FP,
    observable=True,
) -> AppObservation:
    return AppObservation(
        app=app,
        running=running,
        claimed_rate=claimed_rate,
        attributed_w=attributed_w,
        expected_w=expected_w,
        supported_rate=supported_rate,
        fingerprint=fingerprint,
        observable=observable,
    )


def drive(scorer, observation, ticks, start=0):
    out = []
    for t in range(start, start + ticks):
        out += scorer.observe(t, [observation])
    return out


@pytest.fixture()
def cfg():
    # Zero cooldown so efficiency evidence counts immediately; small
    # quarantine/probation windows keep the tests short.
    return DefenseConfig(cooldown_ticks=0, quarantine_ticks=5, probation_ticks=4)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"efficiency_margin": 0.0},
            {"overdraw_margin_w": -1.0},
            {"score_decay": 1.0},
            {"score_decay": 0.0},
            {"suspect_threshold": 5.0, "quarantine_threshold": 4.0},
            {"strike_limit": 0},
            {"quarantine_ticks": 0},
            {"probation_ticks": 0},
            {"suspect_weight": 0.0},
            {"probation_weight": 1.5},
            {"guard_band": 1.0},
            {"cooldown_ticks": -1},
        ],
    )
    def test_bad_config_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            DefenseConfig(**overrides)


class TestHonestBehaviour:
    def test_honest_observations_never_transition(self, cfg):
        scorer = TrustScorer(cfg)
        assert drive(scorer, obs(), 500) == []
        assert scorer.state_of("a") is TrustState.TRUSTED
        assert scorer.score_of("a") == 0.0
        assert not scorer.distrusted()
        assert scorer.weights() == {}

    def test_disabled_scorer_observes_nothing(self):
        scorer = TrustScorer(DefenseConfig(enabled=False))
        bad = obs(attributed_w=50.0, claimed_rate=100.0)
        assert drive(scorer, bad, 100) == []
        assert scorer.state_of("a") is TrustState.TRUSTED

    def test_unknown_app_defaults_to_trusted(self, cfg):
        scorer = TrustScorer(cfg)
        assert scorer.state_of("ghost") is TrustState.TRUSTED
        assert scorer.score_of("ghost") == 0.0


class TestOverdrawStrikes:
    def test_strikes_quarantine_outright(self, cfg):
        scorer = TrustScorer(cfg)
        overdraw = obs(attributed_w=5.0 + cfg.overdraw_margin_w + 0.1)
        transitions = drive(scorer, overdraw, cfg.strike_limit)
        assert scorer.state_of("a") is TrustState.QUARANTINED
        assert transitions[-1].to_state is TrustState.QUARANTINED
        assert transitions[-1].strikes == cfg.strike_limit

    def test_overdraw_within_margin_passes(self, cfg):
        scorer = TrustScorer(cfg)
        ok = obs(attributed_w=5.0 + cfg.overdraw_margin_w - 0.1)
        assert drive(scorer, ok, 100) == []

    def test_suspended_apps_never_strike(self, cfg):
        # A suspended app draws nothing; stale attribution must not count.
        scorer = TrustScorer(cfg)
        parked = obs(running=False, attributed_w=50.0, claimed_rate=100.0)
        assert drive(scorer, parked, 100) == []


class TestEfficiencyScore:
    def test_inflated_rate_walks_to_quarantine(self, cfg):
        scorer = TrustScorer(cfg)
        lying = obs(claimed_rate=10.0 * (1.0 + cfg.efficiency_margin) + 1.0)
        transitions = drive(scorer, lying, 50)
        states = [t.to_state for t in transitions]
        assert states[0] is TrustState.SUSPECT
        assert TrustState.QUARANTINED in states

    def test_rate_within_margin_passes(self, cfg):
        scorer = TrustScorer(cfg)
        ok = obs(claimed_rate=10.0 * (1.0 + cfg.efficiency_margin) - 0.1)
        assert drive(scorer, ok, 100) == []

    def test_blackout_suppresses_the_check(self, cfg):
        scorer = TrustScorer(cfg)
        frozen = obs(claimed_rate=100.0, observable=False)
        assert drive(scorer, frozen, 100) == []

    def test_fingerprint_change_arms_the_cooldown(self):
        cfg = DefenseConfig(cooldown_ticks=10, quarantine_ticks=5, probation_ticks=4)
        scorer = TrustScorer(cfg)
        drive(scorer, obs(), 5)  # honest history at the first operating point
        # The knob moves and the stale heartbeat window briefly reads high:
        # the post-change cooldown must swallow it.
        moved = obs(claimed_rate=100.0, fingerprint=("other-knob", True))
        assert drive(scorer, moved, 10, start=5) == []
        assert scorer.score_of("a") == 0.0
        # Cooldown expired: a rate still beyond the knob's support scores.
        scorer.observe(15, [moved])
        assert scorer.score_of("a") > 0.0

    def test_suspect_recovers_when_the_anomaly_stops(self, cfg):
        scorer = TrustScorer(cfg)
        lying = obs(claimed_rate=100.0)
        drive(scorer, lying, 2)  # score 1.9 -> just under suspect at 2.0?
        # Push over the suspect threshold, then go honest.
        transitions = drive(scorer, lying, 2, start=2)
        assert scorer.state_of("a") is TrustState.SUSPECT
        transitions = drive(scorer, obs(), 30, start=4)
        assert transitions[-1].to_state is TrustState.TRUSTED


class TestQuarantineLifecycle:
    def quarantined_scorer(self, cfg):
        scorer = TrustScorer(cfg)
        overdraw = obs(attributed_w=20.0)
        drive(scorer, overdraw, cfg.strike_limit)
        assert scorer.state_of("a") is TrustState.QUARANTINED
        return scorer

    def test_quarantine_expires_into_probation_with_clean_slate(self, cfg):
        scorer = self.quarantined_scorer(cfg)
        transitions = drive(scorer, obs(), cfg.quarantine_ticks, start=10)
        assert transitions[-1].to_state is TrustState.PROBATION
        assert scorer.score_of("a") == 0.0
        assert scorer.weights() == {"a": cfg.probation_weight}

    def test_probation_violation_requarantines(self, cfg):
        scorer = self.quarantined_scorer(cfg)
        drive(scorer, obs(), cfg.quarantine_ticks, start=10)
        transitions = scorer.observe(100, [obs(attributed_w=20.0)])
        assert transitions[0].to_state is TrustState.QUARANTINED

    def test_clean_probation_restores_full_trust(self, cfg):
        scorer = self.quarantined_scorer(cfg)
        drive(scorer, obs(), cfg.quarantine_ticks, start=10)
        transitions = drive(scorer, obs(), cfg.probation_ticks, start=100)
        assert transitions[-1].to_state is TrustState.TRUSTED
        assert not scorer.distrusted()

    def test_quarantined_apps_and_detection_latency(self, cfg):
        scorer = self.quarantined_scorer(cfg)
        assert scorer.quarantined_apps() == ["a"]
        assert scorer.distrusted()
        # Strikes landed on ticks 0 and 1; attack "started" at tick 0.
        assert scorer.detection_latency("a", 0) == 1
        assert scorer.detection_latency("a", 100) == 0  # clamped
        assert scorer.detection_latency("ghost", 0) is None

    def test_forget_drops_the_record(self, cfg):
        scorer = self.quarantined_scorer(cfg)
        scorer.forget("a")
        assert scorer.state_of("a") is TrustState.TRUSTED
        assert not scorer.distrusted()


class TestPersistence:
    def test_state_round_trips_through_json(self, cfg):
        scorer = TrustScorer(cfg)
        drive(scorer, obs(claimed_rate=100.0), 30)
        drive(scorer, obs(app="b", attributed_w=20.0), 3, start=30)
        state = json.loads(json.dumps(scorer.state_dict()))
        restored = TrustScorer(cfg)
        restored.load_state_dict(state)
        assert restored.state_dict() == scorer.state_dict()
        assert restored.state_of("a") == scorer.state_of("a")
        assert restored.state_of("b") == scorer.state_of("b")
        # The restored scorer keeps evolving identically.
        a = drive(scorer, obs(), 50, start=40)
        b = drive(restored, obs(), 50, start=40)
        assert a == b
