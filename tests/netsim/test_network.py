"""The simulated network: determinism, loss, reordering, partitions."""

import pytest

from repro.errors import NetworkError
from repro.netsim import CONTROLLER, NetConfig, PartitionWindow, SimNetwork


def drain(net, dst, upto_step):
    out = []
    for step in range(upto_step + 1):
        out.extend(payload for _, payload in net.deliver(dst, step))
    return out


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency_steps": -1},
            {"jitter_steps": -1},
            {"loss": 1.0},
            {"loss": -0.1},
            {"duplicate": 1.5},
            {"lossy_until_step": -1},
        ],
    )
    def test_bad_config(self, kwargs):
        with pytest.raises(NetworkError):
            NetConfig(**kwargs)

    def test_bad_partition_windows(self):
        with pytest.raises(NetworkError):
            PartitionWindow(start_step=5, end_step=5, nodes=(0,))
        with pytest.raises(NetworkError):
            PartitionWindow(start_step=0, end_step=5, nodes=())

    def test_partition_past_fleet_rejected(self):
        config = NetConfig(partitions=(PartitionWindow(0, 5, (7,)),))
        with pytest.raises(NetworkError):
            SimNetwork(config, n_nodes=4)

    def test_unknown_endpoint_and_node_to_node(self):
        net = SimNetwork(NetConfig(), n_nodes=2)
        with pytest.raises(NetworkError):
            net.send(0, 5, "x", 0)
        with pytest.raises(NetworkError):
            net.send(0, 1, "x", 0)  # hub-and-spoke only
        with pytest.raises(NetworkError):
            net.send(CONTROLLER, CONTROLLER, "x", 0)


class TestDelivery:
    def test_one_step_in_flight_floor(self):
        net = SimNetwork(NetConfig(), n_nodes=1)
        net.send(CONTROLLER, 0, "hello", step=3)
        assert net.deliver(0, 3) == []  # never same-step
        assert net.deliver(0, 4) == [(CONTROLLER, "hello")]
        assert net.in_flight() == 0

    def test_latency_delays_delivery(self):
        net = SimNetwork(NetConfig(latency_steps=2), n_nodes=1)
        net.send(0, CONTROLLER, "hb", step=0)
        assert net.deliver(CONTROLLER, 2) == []
        assert net.deliver(CONTROLLER, 3) == [(0, "hb")]

    def test_lossless_network_delivers_everything_in_order(self):
        net = SimNetwork(NetConfig(), n_nodes=1)
        for step in range(10):
            net.send(CONTROLLER, 0, step, step)
        assert drain(net, 0, 11) == list(range(10))

    def test_jitter_reorders_but_loses_nothing(self):
        net = SimNetwork(NetConfig(jitter_steps=4, seed=5), n_nodes=1)
        for step in range(30):
            net.send(CONTROLLER, 0, step, step)
        got = drain(net, 0, 40)
        assert sorted(got) == list(range(30))
        assert got != list(range(30))  # some overtaking actually happened

    def test_seeded_replay_is_bit_identical(self):
        def replay(seed):
            net = SimNetwork(
                NetConfig(jitter_steps=3, loss=0.3, duplicate=0.2, seed=seed),
                n_nodes=2,
            )
            for step in range(40):
                net.send(CONTROLLER, step % 2, step, step)
            return (drain(net, 0, 50), drain(net, 1, 50), net.stats.to_dict())

        assert replay(9) == replay(9)
        assert replay(9) != replay(10)


class TestLossAndDuplication:
    def test_loss_drops_some_messages(self):
        net = SimNetwork(NetConfig(loss=0.5, seed=1), n_nodes=1)
        for step in range(100):
            net.send(CONTROLLER, 0, step, step)
        got = drain(net, 0, 110)
        assert 10 < len(got) < 90
        assert net.stats.dropped_loss == 100 - len(got)

    def test_duplicate_delivers_extra_copies(self):
        net = SimNetwork(NetConfig(duplicate=1.0), n_nodes=1)
        net.send(CONTROLLER, 0, "x", 0)
        assert drain(net, 0, 3) == ["x", "x"]
        assert net.stats.duplicated == 1

    def test_lossy_until_step_makes_the_tail_clean(self):
        net = SimNetwork(NetConfig(loss=0.9, lossy_until_step=50, seed=2), n_nodes=1)
        for step in range(100):
            net.send(CONTROLLER, 0, step, step)
        got = drain(net, 0, 110)
        # Every message sent in the clean tail arrives.
        assert [m for m in got if m >= 50] == list(range(50, 100))
        assert len([m for m in got if m < 50]) < 50


class TestPartitions:
    def test_cut_drops_both_directions(self):
        net = SimNetwork(
            NetConfig(partitions=(PartitionWindow(10, 20, (0,)),)), n_nodes=2
        )
        net.send(CONTROLLER, 0, "in", 15)
        net.send(0, CONTROLLER, "out", 15)
        net.send(CONTROLLER, 1, "other", 15)  # node 1 unaffected
        assert drain(net, 0, 30) == []
        assert drain(net, CONTROLLER, 30) == []
        assert drain(net, 1, 30) == ["other"]
        assert net.stats.dropped_partition == 2

    def test_message_cannot_outrun_a_closing_partition(self):
        # Sent while clear, due while cut: dropped at delivery time.
        net = SimNetwork(
            NetConfig(latency_steps=5, partitions=(PartitionWindow(3, 20, (0,)),)),
            n_nodes=1,
        )
        net.send(CONTROLLER, 0, "doomed", 1)  # due at 7, inside the cut
        assert drain(net, 0, 30) == []
        assert net.stats.dropped_partition == 1

    def test_partition_heal_restores_delivery(self):
        net = SimNetwork(
            NetConfig(partitions=(PartitionWindow(0, 5, (0,)),)), n_nodes=1
        )
        net.send(CONTROLLER, 0, "after", 5)
        assert drain(net, 0, 7) == ["after"]

    def test_partition_never_shifts_rng_of_other_messages(self):
        # Same sends, one config with a partition: the surviving node's
        # delivery stream is identical - loss/jitter draws happen in send
        # order regardless of the cut.
        def stream(partitions):
            net = SimNetwork(
                NetConfig(jitter_steps=3, loss=0.4, seed=11, partitions=partitions),
                n_nodes=2,
            )
            for step in range(40):
                net.send(CONTROLLER, 0, ("a", step), step)
                net.send(CONTROLLER, 1, ("b", step), step)
            return drain(net, 1, 50)

        assert stream(()) == stream((PartitionWindow(5, 25, (0,)),))
