"""The shared retry policy: one backoff law for actuation and RPC."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.util.retry import RetryPolicy


class TestValidation:
    def test_defaults_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_ticks": 0},
            {"max_backoff_ticks": 0},
            {"max_attempts": 0},
            {"jitter_ticks": -1},
        ],
    )
    def test_bad_fields_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestBackoff:
    def test_exponential_then_capped(self):
        policy = RetryPolicy(base_ticks=1, max_backoff_ticks=8, max_attempts=10)
        delays = [policy.backoff_ticks(a) for a in range(1, 7)]
        assert delays == [1, 2, 4, 8, 8, 8]

    def test_attempt_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_ticks(0)

    def test_jitter_requires_rng(self):
        policy = RetryPolicy(jitter_ticks=2)
        with pytest.raises(ConfigurationError):
            policy.backoff_ticks(1)

    def test_jitter_bounded_and_seeded(self):
        policy = RetryPolicy(base_ticks=2, max_backoff_ticks=16, jitter_ticks=3)
        draws = [
            policy.backoff_ticks(2, np.random.default_rng(s)) for s in range(50)
        ]
        assert all(4 <= d <= 7 for d in draws)
        assert len(set(draws)) > 1  # jitter actually varies
        # Same seed, same delay: the policy never hides nondeterminism.
        assert policy.backoff_ticks(2, np.random.default_rng(7)) == policy.backoff_ticks(
            2, np.random.default_rng(7)
        )

    def test_zero_jitter_never_draws(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state["state"]["state"]
        RetryPolicy(jitter_ticks=0).backoff_ticks(3, rng)
        # The rng stream is untouched: deterministic call sites can share
        # their generator with the policy without perturbing replays.
        assert rng.bit_generator.state["state"]["state"] == before


class TestExhaustion:
    def test_exhausted_at_max_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)
