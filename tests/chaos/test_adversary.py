"""Byzantine-chaos harness: honest-vs-adversarial arms and their bounds.

The full all-kinds seed-matrix soak is opt-in (``REPRO_SOAK=1``; CI runs it
as a dedicated job that publishes the detection-latency/false-positive
report); the tier-1 subset runs every attack kind once at seed 0.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.adversary.plan import ADVERSARY_KINDS, default_adversary_schedule
from repro.chaos import (
    default_attack_scenario,
    run_adversary_mix,
    run_adversary_soak,
)
from repro.chaos.adversary import AttackScenario
from repro.errors import ChaosError, ConfigurationError

SOAK = os.environ.get("REPRO_SOAK") == "1"


def scenario_with(kind: str, **overrides) -> AttackScenario:
    base = default_attack_scenario(kind)
    fields = {f: getattr(base, f) for f in base.__dataclass_fields__}
    fields.update(overrides)
    return AttackScenario(**fields)


@pytest.mark.parametrize("kind", ADVERSARY_KINDS)
def test_every_attack_kind_is_caught_within_bounds(kind):
    """The acceptance arms: attacker quarantined within its tick bound,
    honest tenant keeps its retention floor, zero false positives, cap
    invariant on every arm."""
    result = run_adversary_mix(kind, seed=0)
    assert result.attackers == ("stream",)
    scenario = result.scenario
    assert result.worst_detection_latency_ticks <= scenario.detection_bound_ticks
    assert result.worst_retention >= scenario.retention_floor
    assert result.false_positives == 0
    # Honest tenants never appear in the transition log.
    assert all(app == "stream" for _, app, _, _ in result.transitions)
    # The undefended arm ran and the defense did not do net harm.
    assert result.undefended is not None


def test_space_regime_defense_frees_budget_for_honest_tenants():
    """Quarantining a SPACE-regime attacker hands its budget to the honest
    tenant: defended honest throughput beats the undefended run."""
    result = run_adversary_mix("probe", seed=0)
    honest = "kmeans"
    assert (
        result.defended.normalized_throughput[honest]
        > result.undefended.normalized_throughput[honest]
    )


def test_detection_bound_violation_raises_with_numbers():
    tight = scenario_with("inflate", detection_bound_ticks=1)
    with pytest.raises(ChaosError, match="slow detection"):
        run_adversary_mix("inflate", scenario=tight, seed=0, compare_undefended=False)


def test_retention_floor_violation_raises_with_numbers():
    greedy = scenario_with("spike", retention_floor=0.999)
    with pytest.raises(ChaosError, match="honest utility collapsed"):
        run_adversary_mix("spike", scenario=greedy, seed=0, compare_undefended=False)


def test_scenario_kind_mismatch_rejected():
    with pytest.raises(ConfigurationError, match="scenario is for kind"):
        run_adversary_mix("probe", scenario=default_attack_scenario("spike"))


def test_attacker_index_out_of_range_rejected():
    with pytest.raises(ConfigurationError, match="attacker index"):
        run_adversary_mix("probe", attacker_index=7)


def test_unknown_kind_rejected():
    with pytest.raises(ConfigurationError, match="unknown adversary kind"):
        default_attack_scenario("ddos")


def test_schedule_app_must_be_in_the_mix():
    sched = default_adversary_schedule("ghost", kind="probe", start_s=5.0)
    with pytest.raises(ConfigurationError, match="not in mix"):
        run_adversary_mix("probe", schedule=sched)


def test_at_least_one_tenant_must_stay_honest():
    from repro.adversary.plan import AdversarySchedule

    sched = AdversarySchedule(
        specs=(
            default_adversary_schedule("stream", kind="probe", start_s=5.0).specs
            + default_adversary_schedule("kmeans", kind="probe", start_s=5.0).specs
        )
    )
    with pytest.raises(ConfigurationError, match="stay honest"):
        run_adversary_mix("probe", schedule=sched)


def test_mini_soak_shares_baselines_and_aggregates():
    soak = run_adversary_soak(kinds=("probe", "spike"), seeds=[0])
    assert len(soak.runs) == 2
    assert soak.false_positive_rate == 0.0
    assert set(soak.latency_by_kind()) == {"probe", "spike"}
    report = soak.report()
    assert report["runs"] == 2
    assert report["false_positive_rate"] == 0.0
    # Both kinds share the SPACE regime, so they share one baseline summary.
    assert soak.runs[0].baseline == soak.runs[1].baseline
    json.dumps(report)  # the CI artifact payload must be JSON-clean


@pytest.mark.soak
@pytest.mark.timeout(900)
@pytest.mark.skipif(not SOAK, reason="set REPRO_SOAK=1 to run the full soak")
def test_acceptance_byzantine_soak():
    """ISSUE 7 acceptance: every strategic-workload kind across the seed
    matrix, three arms each - every attacker quarantined within its per-kind
    tick bound, honest tenants hold their throughput floor vs the all-honest
    baseline, the defense never does net harm vs doing nothing, and the
    false-positive rate is exactly zero."""
    soak = run_adversary_soak(seeds=list(range(10)))
    assert len(soak.runs) == 4 * 10
    assert soak.false_positive_rate == 0.0
    assert set(soak.latency_by_kind()) == set(ADVERSARY_KINDS)
    metrics = soak.metrics()
    assert metrics["counters"].get("defense.transitions.quarantined", 0) >= len(
        soak.runs
    )
    out = os.environ.get("REPRO_SOAK_REPORT")
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(soak.report(), handle, indent=2, sort_keys=True)
            handle.write("\n")
