"""Chaos-soak harness: kill schedules, invariants, and the seed-matrix soak.

The full 20-seed soak is opt-in (``REPRO_SOAK=1``; CI runs it as a
dedicated job); the tier-1 subset keeps a 2-seed version in every run.
"""

from __future__ import annotations

import os

import pytest

from repro.chaos import kill_schedule, run_chaos_mix, run_chaos_soak
from repro.errors import ChaosError
from repro.faults import default_fault_plan
from repro.workloads.catalog import get_application

SOAK = os.environ.get("REPRO_SOAK") == "1"



def test_kill_schedule_is_seeded_and_sorted():
    a = kill_schedule(60, 5, seed=42)
    b = kill_schedule(60, 5, seed=42)
    assert a == b  # deterministic
    assert a == sorted(a) and len(set(a)) == 5
    assert all(1 <= t < 60 for t in a)
    assert kill_schedule(60, 5, seed=43) != a


def test_kill_schedule_edge_cases():
    assert kill_schedule(1, 3, seed=0) == []
    assert kill_schedule(60, 0, seed=0) == []
    assert len(kill_schedule(5, 100, seed=0)) == 4  # clamped to the run length


def test_chaos_mix_survives_kills(tmp_path, apps):
    result = run_chaos_mix(
        apps,
        "app+res-aware",
        100.0,
        workdir=tmp_path,
        kill_ticks=[7, 23, 41],
        duration_s=4.0,
        warmup_s=2.0,
    )
    assert result.recovery.restarts == 3
    assert result.timeline_identical is True
    assert result.utility_gap == 0.0


def test_chaos_mix_with_torn_journal_and_faults(tmp_path, apps):
    result = run_chaos_mix(
        apps,
        "app+res-aware",
        100.0,
        workdir=tmp_path,
        kill_ticks=[13, 37],
        duration_s=4.0,
        warmup_s=2.0,
        faults=default_fault_plan(seed=3),
        tear_journal_bytes_on_crash=250,
    )
    assert result.recovery.restarts == 2
    assert result.timeline_identical is True
    assert result.result.fault_stats is not None


def test_chaos_mix_esd_ledger_conserved(tmp_path, apps):
    result = run_chaos_mix(
        apps,
        "app+res+esd-aware",
        80.0,
        workdir=tmp_path,
        kill_ticks=[11, 29],
        duration_s=4.0,
        warmup_s=2.0,
    )
    # run_chaos_mix raises ChaosError if the battery ledger drifted; reaching
    # here with restarts recorded is the assertion.
    assert result.recovery.restarts == 2
    assert result.timeline_identical is True


def test_safe_hold_disables_identity_check(tmp_path, apps):
    result = run_chaos_mix(
        apps,
        "app+res-aware",
        100.0,
        workdir=tmp_path,
        kill_ticks=[17],
        duration_s=4.0,
        warmup_s=2.0,
        safe_hold_ticks=5,
        utility_tolerance=0.10,
    )
    assert result.timeline_identical is None


def test_utility_violation_raises(tmp_path, apps):
    # An absurd safe hold guard-bands most of the run; with a zero tolerance
    # the utility invariant must trip (and name the kills).
    with pytest.raises(ChaosError, match="deviates"):
        run_chaos_mix(
            apps,
            "app+res-aware",
            100.0,
            workdir=tmp_path,
            kill_ticks=[5],
            duration_s=4.0,
            warmup_s=2.0,
            safe_hold_ticks=55,
            utility_tolerance=0.0,
        )


def test_small_soak(tmp_path, apps):
    soak = run_chaos_soak(
        apps,
        "app+res-aware",
        100.0,
        workdir=tmp_path,
        seeds=[0, 1],
        kills_per_run=2,
        duration_s=4.0,
        warmup_s=2.0,
    )
    assert len(soak.runs) == 2
    assert soak.total_restarts == 4
    assert soak.max_utility_gap == 0.0


@pytest.mark.soak
@pytest.mark.skipif(not SOAK, reason="set REPRO_SOAK=1 to run the full soak")
def test_full_soak_twenty_seeds(tmp_path, apps):
    """The acceptance soak: 20 seeded kill/restart runs, zero sustained cap
    breaches, conserved ledgers, utility within 1% of baseline."""
    soak = run_chaos_soak(
        apps,
        "app+res+esd-aware",
        80.0,
        workdir=tmp_path,
        seeds=list(range(20)),
        kills_per_run=3,
        duration_s=6.0,
        warmup_s=2.0,
        tear_journal_bytes_on_crash=200,
        utility_tolerance=0.01,
    )
    assert len(soak.runs) == 20
    assert soak.total_restarts == 60
    assert soak.max_utility_gap <= 0.01
    assert all(r.timeline_identical for r in soak.runs)
