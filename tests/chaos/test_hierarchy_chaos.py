"""Hierarchy-chaos soaks: failure-domain containment under composed faults.

The quick tier always runs a few composed tree schedules; the full
acceptance matrix (12 seeds, loss up to 30%, domain outages composed with
root partitions, leaf kills, and stale-checkpoint controller restarts) is
opt-in via ``REPRO_SOAK=1`` and runs in CI's hierarchy-soak job.
"""

import json
import os

import pytest

from repro.chaos import (
    run_hierarchy_chaos,
    run_hierarchy_soak,
    subtree_outage_schedule,
)
from repro.errors import ChaosError, ConfigurationError
from repro.hierarchy import validate_subtree_outages

SOAK = os.environ.get("REPRO_SOAK") == "1"


class TestOutageSchedule:
    def test_deterministic(self):
        interior = [(0,), (1,), (2,)]
        a = subtree_outage_schedule(
            100, interior, outages=3, max_down_steps=20, seed=5
        )
        assert a == subtree_outage_schedule(
            100, interior, outages=3, max_down_steps=20, seed=5
        )

    def test_windows_stay_inside_trace_and_never_nest(self):
        from repro.cluster.controlplane import ControlPlaneConfig
        from repro.hierarchy import TreeSpec, TreeTopology

        topo = TreeTopology(
            spec=TreeSpec(fanouts=(2, 3, 2), budget_w=6000.0),
            config=ControlPlaneConfig(),
        )
        interior = [p for p in topo.interior_paths() if p]
        for seed in range(10):
            outages = subtree_outage_schedule(
                100, interior, outages=4, max_down_steps=25, seed=seed
            )
            # validate raising would mean a nested overlap slipped through.
            validate_subtree_outages(outages, topo, n_steps=100)
            assert all(o.end_step <= 100 for o in outages)

    def test_empty_inputs_yield_no_outages(self):
        assert subtree_outage_schedule(100, [], outages=2, max_down_steps=10, seed=0) == ()
        assert subtree_outage_schedule(100, [(0,)], outages=0, max_down_steps=10, seed=0) == ()


class TestQuickChaos:
    def test_composed_run_holds_every_promise(self):
        result = run_hierarchy_chaos(seed=7, fanouts=(3, 4), n_steps=100)
        assert result.headroom_w >= 0.0
        assert result.domain_outages > 0
        assert result.restarts >= 1
        assert result.min_sibling_ratio >= 0.75
        # The schedule actually hurt: subtrees lost and re-acquired leases.
        assert result.fallbacks > 0 and result.heals > 0

    def test_depth_three_tree_survives(self):
        result = run_hierarchy_chaos(
            seed=3, fanouts=(2, 3, 2), budget_w=6000.0, n_steps=100
        )
        assert result.headroom_w >= 0.0
        assert result.n_leaves == 12

    def test_small_severity_sweep(self):
        soak = run_hierarchy_soak(seeds=[0, 1, 2], fanouts=(2, 3), n_steps=80)
        assert len(soak.runs) == 3
        assert soak.min_headroom_w >= 0.0
        assert soak.runs[0].loss < soak.runs[-1].loss == pytest.approx(0.3)

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            run_hierarchy_chaos(seed=0, loss=1.0)
        with pytest.raises(ConfigurationError):
            run_hierarchy_soak(seeds=[])

    def test_zombie_detection_raises_chaoserror(self, monkeypatch):
        from repro.hierarchy import BudgetTreeSimulator

        monkeypatch.setattr(
            BudgetTreeSimulator, "zombie_free", lambda self, step: False
        )
        with pytest.raises(ChaosError, match="zombie|lease"):
            run_hierarchy_chaos(seed=0, fanouts=(2, 2), n_steps=60)


@pytest.mark.skipif(not SOAK, reason="set REPRO_SOAK=1 to run the full soak")
class TestAcceptanceSoak:
    def test_twelve_seeds_full_severity(self):
        # The acceptance matrix: 12 seeded schedules against a 3-level,
        # 24-server tree, loss up to 30%, domain outages at PDU and rack
        # levels composed with root partitions, leaf kills, and
        # stale-checkpoint controller restarts.
        soak = run_hierarchy_soak(
            seeds=list(range(12)),
            fanouts=(2, 3, 4),
            budget_w=12000.0,
            n_steps=120,
            max_loss=0.3,
            domain_outages=2,
            controller_kills=1,
        )
        assert len(soak.runs) == 12
        assert soak.min_headroom_w >= 0.0
        assert soak.min_sibling_ratio >= 0.75
        assert soak.total_domain_outages > 0
        assert soak.total_restarts > 0
        out = os.environ.get("REPRO_SOAK_REPORT")
        if out:
            with open(out, "w", encoding="utf-8") as handle:
                json.dump(soak.report(), handle, indent=2, sort_keys=True)
                handle.write("\n")
