"""Hypothesis: the hard invariant - wall power never exceeds the cap,
whatever the policy, mix, or cap, including the learning path and the ESD."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.mediator import PowerMediator
from repro.core.policies import make_policy
from repro.core.simulation import default_battery
from repro.server.config import ServerConfig
from repro.server.server import SimulatedServer
from repro.workloads.mixes import MIXES

_CONFIG = ServerConfig()


class TestCapAdherence:
    @given(
        mix_id=st.sampled_from(sorted(MIXES)),
        cap=st.sampled_from([75.0, 80.0, 85.0, 90.0, 100.0, 110.0]),
        policy=st.sampled_from(
            ["util-unaware", "server+res-aware", "app-aware", "app+res-aware"]
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_non_esd_policies_hold_the_cap(self, mix_id, cap, policy):
        server = SimulatedServer(_CONFIG)
        mediator = PowerMediator(
            server, make_policy(policy), cap, use_oracle_estimates=True
        )
        for profile in MIXES[mix_id].profiles():
            mediator.add_application(
                profile.with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(6.0)
        for record in mediator.timeline:
            assert record.wall_w <= cap + 1e-6

    @given(
        mix_id=st.sampled_from(sorted(MIXES)),
        cap=st.sampled_from([65.0, 72.0, 80.0, 88.0]),
    )
    @settings(max_examples=12, deadline=None)
    def test_esd_policy_holds_the_cap(self, mix_id, cap):
        server = SimulatedServer(_CONFIG)
        mediator = PowerMediator(
            server,
            make_policy("app+res+esd-aware"),
            cap,
            battery=default_battery(),
            use_oracle_estimates=True,
        )
        for profile in MIXES[mix_id].profiles():
            mediator.add_application(
                profile.with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(12.0)
        for record in mediator.timeline:
            assert record.wall_w <= cap + 1e-6

    @given(
        mix_id=st.sampled_from([1, 3, 10, 14]),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=10, deadline=None)
    def test_learning_path_holds_the_cap(self, mix_id, seed):
        """Estimation error must never leak into a cap violation."""
        server = SimulatedServer(_CONFIG)
        mediator = PowerMediator(
            server,
            make_policy("app+res-aware"),
            100.0,
            use_oracle_estimates=False,
            seed=seed,
        )
        for profile in MIXES[mix_id].profiles():
            mediator.add_application(
                profile.with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(4.0)
        for record in mediator.timeline:
            assert record.wall_w <= 100.0 + 1e-6
