"""Hypothesis: collaborative-filtering properties on synthetic low-rank data."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.learning.collaborative import AlsFactorizer


def low_rank(seed, n_rows, n_cols, rank):
    rng = np.random.default_rng(seed)
    u = rng.uniform(0.5, 1.5, (n_rows, rank))
    v = rng.uniform(0.5, 1.5, (n_cols, rank))
    return u @ v.T


class TestFactorizationProperties:
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        rank=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_full_observation_reconstruction(self, seed, rank):
        values = low_rank(seed, 6, 30, rank)
        als = AlsFactorizer(rank=rank + 1, ridge=1e-3, iterations=40, seed=seed)
        als.fit(values, np.ones_like(values, dtype=bool))
        rel = np.abs(als.predict_full() - values).max() / values.max()
        assert rel < 0.05

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_fold_in_exact_on_measured_cells(self, seed):
        values = low_rank(seed, 6, 30, 3)
        als = AlsFactorizer(rank=4, iterations=20, seed=seed)
        als.fit(values, np.ones_like(values, dtype=bool))
        rng = np.random.default_rng(seed)
        cols = rng.choice(30, size=8, replace=False)
        measured = rng.uniform(0.5, 2.0, size=8)
        predicted = als.fold_in(cols, measured)
        assert np.allclose(predicted[cols], measured)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, seed):
        values = low_rank(seed, 5, 20, 2)
        mask = np.ones_like(values, dtype=bool)
        a = AlsFactorizer(rank=3, iterations=15, seed=seed)
        b = AlsFactorizer(rank=3, iterations=15, seed=seed)
        a.fit(values, mask)
        b.fit(values, mask)
        assert np.allclose(a.predict_full(), b.predict_full())

    @given(
        seed=st.integers(min_value=0, max_value=500),
        density=st.floats(min_value=0.4, max_value=0.9),
    )
    @settings(max_examples=15, deadline=None)
    def test_partial_observation_generalizes(self, seed, density):
        values = low_rank(seed, 8, 40, 3)
        rng = np.random.default_rng(seed + 1)
        mask = rng.uniform(size=values.shape) < density
        mask[:, 0] = True
        mask[0, :] = True
        als = AlsFactorizer(rank=3, ridge=1e-2, iterations=50, seed=seed)
        als.fit(values, mask)
        hidden = ~mask
        if hidden.any():
            rel = np.abs(als.predict_full() - values)[hidden].mean() / values.mean()
            assert rel < 0.25
