"""Hypothesis: coordination invariants - mutual exclusion in TIME mode,
Eq. (5) energy balance, rotation fairness."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.coordinator import (
    AllocationPlan,
    CoordinationMode,
    Coordinator,
    TimeSlot,
)
from repro.esd.controller import compute_duty_cycle
from repro.server.config import KnobSetting, ServerConfig
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG

_CONFIG = ServerConfig()


durations = st.lists(
    st.floats(min_value=0.3, max_value=3.0), min_size=2, max_size=2
)


class TestTimeModeProperties:
    @given(durations=durations, ticks=st.integers(min_value=5, max_value=60))
    @settings(max_examples=30, deadline=None)
    def test_exactly_one_app_runs_per_tick(self, durations, ticks):
        server = SimulatedServer(_CONFIG)
        server.admit(CATALOG["kmeans"].with_total_work(float("inf")))
        server.admit(CATALOG["stream"].with_total_work(float("inf")))
        knob = _CONFIG.max_knob
        slots = tuple(
            TimeSlot(apps=(name,), duration_s=d, knobs={name: knob})
            for name, d in zip(("kmeans", "stream"), durations)
        )
        plan = AllocationPlan(
            mode=CoordinationMode.TIME, p_cap_w=100.0, slots=slots
        )
        coordinator = Coordinator(server)
        coordinator.adopt(plan)
        for _ in range(ticks):
            coordinator.step(0.1)
            server.tick(0.1)
            assert len(server.active_applications()) == 1

    @given(durations=durations)
    @settings(max_examples=25, deadline=None)
    def test_rotation_time_shares_match_slot_durations(self, durations):
        server = SimulatedServer(_CONFIG)
        server.admit(CATALOG["kmeans"].with_total_work(float("inf")))
        server.admit(CATALOG["stream"].with_total_work(float("inf")))
        knob = _CONFIG.max_knob
        slots = tuple(
            TimeSlot(apps=(name,), duration_s=d, knobs={name: knob})
            for name, d in zip(("kmeans", "stream"), durations)
        )
        plan = AllocationPlan(mode=CoordinationMode.TIME, p_cap_w=100.0, slots=slots)
        coordinator = Coordinator(server)
        coordinator.adopt(plan)
        on_ticks = {"kmeans": 0, "stream": 0}
        period = sum(durations)
        cycles = 4
        for _ in range(int(cycles * period / 0.1)):
            coordinator.step(0.1)
            server.tick(0.1)
            active = server.active_applications()[0]
            on_ticks[active] += 1
        total = sum(on_ticks.values())
        expected = durations[0] / period
        observed = on_ticks["kmeans"] / total
        assert observed == pytest.approx(expected, abs=0.12)


class TestEquationFiveProperties:
    @given(
        sum_app_w=st.floats(min_value=5.0, max_value=60.0),
        cap=st.floats(min_value=55.0, max_value=125.0),
        eta=st.floats(min_value=0.2, max_value=1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_energy_balance_always_holds(self, sum_app_w, cap, eta):
        cycle = compute_duty_cycle(
            p_idle_w=50.0,
            p_cm_w=20.0,
            sum_app_w=sum_app_w,
            p_cap_w=cap,
            efficiency=eta,
            period_s=10.0,
        )
        banked = eta * cycle.charge_w * cycle.off_s
        spent = cycle.discharge_w * cycle.on_s
        assert banked == pytest.approx(spent, abs=1e-6)

    @given(
        sum_app_w=st.floats(min_value=5.0, max_value=60.0),
        cap=st.floats(min_value=55.0, max_value=125.0),
        eta=st.floats(min_value=0.2, max_value=1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_phases_fill_the_period(self, sum_app_w, cap, eta):
        cycle = compute_duty_cycle(
            p_idle_w=50.0,
            p_cm_w=20.0,
            sum_app_w=sum_app_w,
            p_cap_w=cap,
            efficiency=eta,
            period_s=10.0,
        )
        assert cycle.off_s + cycle.on_s == pytest.approx(10.0)
        assert cycle.off_s >= 0.0 and cycle.on_s > 0.0

    @given(
        sum_app_w=st.floats(min_value=5.0, max_value=60.0),
        eta=st.floats(min_value=0.2, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_on_fraction_monotone_in_cap(self, sum_app_w, eta):
        fractions = []
        for cap in (60.0, 75.0, 90.0, 105.0, 120.0):
            cycle = compute_duty_cycle(
                p_idle_w=50.0,
                p_cm_w=20.0,
                sum_app_w=sum_app_w,
                p_cap_w=cap,
                efficiency=eta,
                period_s=10.0,
            )
            fractions.append(cycle.on_fraction)
        assert all(b >= a - 1e-9 for a, b in zip(fractions, fractions[1:]))
