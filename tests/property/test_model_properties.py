"""Hypothesis: monotonicity and consistency of the power/perf models over
randomly generated (valid) workload profiles and knob settings."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.server.config import KnobSetting, ServerConfig
from repro.server.perf_model import PerformanceModel
from repro.server.power_model import PowerModel
from repro.workloads.profiles import WorkloadProfile

_CONFIG = ServerConfig()
_PERF = PerformanceModel(_CONFIG)
_POWER = PowerModel(_CONFIG, _PERF)


profiles = st.builds(
    WorkloadProfile,
    name=st.just("generated"),
    wclass=st.just("graph"),
    parallel_fraction=st.floats(min_value=0.0, max_value=1.0),
    base_rate=st.floats(min_value=0.1, max_value=5.0),
    dvfs_sensitivity=st.floats(min_value=0.0, max_value=1.0),
    mem_gb_per_work=st.floats(min_value=0.0, max_value=3.0),
    activity_factor=st.floats(min_value=0.05, max_value=1.0),
    total_work=st.just(1000.0),
)

knobs = st.builds(
    KnobSetting,
    freq_ghz=st.sampled_from(_CONFIG.frequencies_ghz),
    cores=st.sampled_from(_CONFIG.core_counts),
    dram_power_w=st.sampled_from(_CONFIG.dram_powers_w),
)


class TestModelInvariants:
    @given(profile=profiles, knob=knobs)
    @settings(max_examples=200, deadline=None)
    def test_rate_and_power_nonnegative(self, profile, knob):
        assert _PERF.rate(profile, knob) >= 0.0
        assert _POWER.app_power_w(profile, knob) >= 0.0

    @given(profile=profiles, knob=knobs)
    @settings(max_examples=200, deadline=None)
    def test_rate_bounded_by_compute_and_memory(self, profile, knob):
        r = _PERF.rate(profile, knob)
        assert r <= _PERF.compute_rate(profile, knob) + 1e-9
        assert r <= _PERF.memory_rate(profile, knob) + 1e-9

    @given(profile=profiles, knob=knobs)
    @settings(max_examples=200, deadline=None)
    def test_dram_power_within_allocation(self, profile, knob):
        assert _POWER.dram_power_w(profile, knob) <= knob.dram_power_w + 1e-9

    @given(profile=profiles, knob=knobs)
    @settings(max_examples=200, deadline=None)
    def test_max_knob_dominates(self, profile, knob):
        """No setting outperforms the uncapped knob, and none draws more."""
        assert _PERF.rate(profile, knob) <= _PERF.peak_rate(profile) + 1e-9
        assert (
            _POWER.app_power_w(profile, knob)
            <= _POWER.app_power_w(profile, _CONFIG.max_knob) + 1e-9
        )

    @given(profile=profiles)
    @settings(max_examples=100, deadline=None)
    def test_frequency_monotone_everywhere(self, profile):
        for n in (1, 3, 6):
            rates = [
                _PERF.rate(profile, KnobSetting(f, n, 10.0))
                for f in _CONFIG.frequencies_ghz
            ]
            assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))

    @given(profile=profiles)
    @settings(max_examples=100, deadline=None)
    def test_power_monotone_in_frequency(self, profile):
        powers = [
            _POWER.app_power_w(profile, KnobSetting(f, 6, 10.0))
            for f in _CONFIG.frequencies_ghz
        ]
        assert all(b >= a - 1e-9 for a, b in zip(powers, powers[1:]))

    @given(profile=profiles, knob=knobs)
    @settings(max_examples=150, deadline=None)
    def test_utilization_bounded(self, profile, knob):
        assert 0.0 <= _PERF.core_utilization(profile, knob) <= 1.0

    @given(profile=profiles, knob=knobs)
    @settings(max_examples=150, deadline=None)
    def test_traffic_consistent_with_rate(self, profile, knob):
        traffic = _PERF.achieved_bandwidth_gbs(profile, knob)
        assert traffic == _PERF.rate(profile, knob) * profile.mem_gb_per_work
