"""Hypothesis: the defense's zero-false-positive invariant - an all-honest
mix never trips the TrustScorer, whatever the policy, mix, cap, or seed,
and even while the fault injector is degrading telemetry."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.mediator import PowerMediator
from repro.core.policies import make_policy
from repro.core.simulation import default_battery
from repro.core.trust import TrustState
from repro.faults.plan import default_fault_plan
from repro.server.config import ServerConfig
from repro.workloads.mixes import MIXES
from repro.server.server import SimulatedServer

_CONFIG = ServerConfig()


def _run_honest(mix_id, policy, cap, seed, *, faults=None, duration_s=6.0):
    server = SimulatedServer(_CONFIG)
    policy_obj = make_policy(policy)
    mediator = PowerMediator(
        server,
        policy_obj,
        cap,
        battery=default_battery() if policy_obj.uses_esd else None,
        use_oracle_estimates=True,
        seed=seed,
        faults=faults,
    )
    for profile in MIXES[mix_id].profiles():
        mediator.add_application(
            profile.with_total_work(float("inf")), skip_overhead=True
        )
    mediator.run_for(duration_s)
    return mediator


class TestHonestNeverQuarantined:
    @given(
        mix_id=st.sampled_from(sorted(MIXES)),
        cap=st.sampled_from([80.0, 95.0, 108.0]),
        policy=st.sampled_from(["app-aware", "app+res-aware"]),
        seed=st.integers(min_value=0, max_value=31),
    )
    @settings(max_examples=12, deadline=None)
    def test_space_regime_all_honest_is_all_trusted(self, mix_id, cap, policy, seed):
        mediator = _run_honest(mix_id, policy, cap, seed)
        assert mediator.trust.transitions == []
        for app in mediator.managed_apps():
            assert mediator.trust.state_of(app) is TrustState.TRUSTED
        assert mediator.trust.weights() == {}

    @given(
        mix_id=st.sampled_from(sorted(MIXES)),
        seed=st.integers(min_value=0, max_value=31),
    )
    @settings(max_examples=6, deadline=None)
    def test_esd_regime_all_honest_is_all_trusted(self, mix_id, seed):
        mediator = _run_honest(mix_id, "app+res+esd-aware", 80.0, seed)
        assert mediator.trust.transitions == []
        assert not mediator.trust.distrusted()

    @given(seed=st.integers(min_value=0, max_value=15))
    @settings(max_examples=4, deadline=None)
    def test_faulted_honest_run_is_still_all_trusted(self, seed):
        """Hangs, stuck actuators, and telemetry blackouts are faults, not
        strategy - none of them may read as adversarial evidence."""
        mediator = _run_honest(
            1, "app+res-aware", 108.0, seed,
            faults=default_fault_plan(seed=seed), duration_s=16.0,
        )
        assert mediator.trust.transitions == []
        assert not mediator.trust.distrusted()
