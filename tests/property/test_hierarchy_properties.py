"""Hypothesis: the budget-tree invariant under arbitrary seeded chaos.

Random trees (depth <= 4, fanout <= 16) replayed under seeded loss,
duplication, root- and deep-fabric partitions, leaf kills, and whole
failure-domain outages. The tree must hold the delegation invariant -
the sum of effective child caps never exceeds the enforced budget at ANY
node on ANY tick - and after the schedule heals and the network drains
clean, every scope must be epoch-consistent with no zombie leases.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cluster.controlplane import ControlPlaneConfig
from repro.hierarchy import (
    SubtreeOutage,
    TreeSpec,
    TreeTopology,
    format_path,
    run_budget_tree,
)
from repro.netsim import NetConfig, PartitionWindow

MAX_LEAVES = 48
DRAIN_STEPS = 40


@st.composite
def tree_chaos(draw):
    depth = draw(st.integers(min_value=1, max_value=4))
    fanouts, leaves = [], 1
    for _ in range(depth):
        cap = min(16, MAX_LEAVES // leaves)
        if cap < 2:
            break
        f = draw(st.integers(min_value=2, max_value=cap))
        fanouts.append(f)
        leaves *= f
    spec = TreeSpec(fanouts=tuple(fanouts), budget_w=100.0 * leaves)

    steps = draw(st.integers(min_value=30, max_value=60))
    loss = draw(st.floats(min_value=0.0, max_value=0.25, allow_nan=False))
    jitter = draw(st.integers(min_value=0, max_value=2))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    loads = draw(
        st.lists(
            st.integers(min_value=0, max_value=leaves),
            min_size=steps,
            max_size=steps,
        )
    )

    def window():
        start = draw(st.integers(min_value=0, max_value=steps - 2))
        length = draw(st.integers(min_value=1, max_value=max(1, steps // 3)))
        # Clamped inside the schedule so the drain really is clean and the
        # post-heal consistency assertions are deterministic.
        return start, min(steps, start + length)

    # Root-fabric partition: cut some of the root's direct children.
    root_partitions = []
    if draw(st.booleans()):
        start, end = window()
        cut = draw(
            st.sets(
                st.integers(min_value=0, max_value=spec.fanouts[0] - 1),
                min_size=1,
                max_size=spec.fanouts[0] - 1,
            )
        )
        root_partitions.append(
            PartitionWindow(start_step=start, end_step=end, nodes=tuple(cut))
        )

    topology = TreeTopology(spec=spec, config=ControlPlaneConfig())
    interior = [p for p in topology.interior_paths() if p]

    # Deep-fabric partition: cut children inside one interior node's fabric.
    deep_partitions = {}
    if interior and draw(st.booleans()):
        path = draw(st.sampled_from(interior))
        start, end = window()
        fanout = topology.fanout_at(path)
        cut = draw(
            st.sets(
                st.integers(min_value=0, max_value=fanout - 1),
                min_size=1,
                max_size=max(1, fanout - 1),
            )
        )
        deep_partitions[format_path(path)] = (
            PartitionWindow(start_step=start, end_step=end, nodes=tuple(cut)),
        )

    # Failure-domain kill: one whole subtree dark for a window.
    outages = ()
    if interior and draw(st.booleans()):
        path = draw(st.sampled_from(interior))
        start, end = window()
        outages = (SubtreeOutage(path=path, start_step=start, end_step=end),)

    # Leaf kill: one server blinks out.
    leaf_down = [frozenset()] * steps
    if draw(st.booleans()):
        victim = draw(st.integers(min_value=0, max_value=leaves - 1))
        start, end = window()
        leaf_down = [
            frozenset({victim}) if start <= t < end else frozenset()
            for t in range(steps)
        ]

    net = NetConfig(
        jitter_steps=jitter,
        loss=loss,
        duplicate=loss / 2,
        partitions=tuple(root_partitions),
        lossy_until_step=steps,
        seed=seed,
    )
    return spec, topology, loads, leaf_down, outages, deep_partitions, net


class TestHierarchyProperties:
    @given(chaos=tree_chaos())
    @settings(max_examples=40, deadline=None)
    def test_delegation_invariant_and_consistent_heal(self, chaos):
        spec, topology, loads, leaf_down, outages, deep_partitions, net = chaos
        # The runner checks the per-node delegation invariant every tick
        # and raises SimulationError on breach - completing IS the proof.
        outcome = run_budget_tree(
            spec,
            loads,
            net=net,
            leaf_down_sets=leaf_down,
            subtree_outages=outages,
            partitions=deep_partitions,
            drain_steps=DRAIN_STEPS,
        )
        assert outcome.max_total_cap_w <= spec.budget_w + 1e-6
        leaf_safe = outcome.safe_caps_by_level_w[-1]
        for row in outcome.caps_w:
            assert sum(row) <= spec.budget_w + 1e-6
            assert all(cap >= leaf_safe - 1e-9 for cap in row)
        # No zombie leases after the heal + drain: every live extra is
        # covered by the parent controller's outstanding accounting.
        assert outcome.zombie_free
        # Epoch consistency per scope: within each interior controller,
        # granted child epochs are unique and never ahead of the
        # controller's own counter.
        for parent in topology.interior_paths():
            final = outcome.final_epochs[format_path(parent)]
            child_epochs = []
            for child in topology.children(parent):
                if topology.is_interior(child):
                    child_epochs.append(outcome.node_epochs[format_path(child)])
                else:
                    child_epochs.append(
                        outcome.leaf_epochs[topology.leaf_index(child)]
                    )
            granted = [e for e in child_epochs if e > 0]
            assert len(set(granted)) == len(granted)
            assert all(e <= final for e in granted)
