"""Hypothesis: battery invariants hold under arbitrary interleavings of
normal operation and injected faults.

Three invariants, for any random sequence of charge/discharge ticks mixed
with outages, discharge deratings, capacity fades and restorations:

* stored energy stays in ``[0, capacity]`` (capacity itself may shrink);
* delivered discharge power never exceeds the currently derated limit;
* energy is conserved: ``stored - initial == eta * charged - discharged
  - faded``.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.esd.battery import LeadAcidBattery

_EFFICIENCY = 0.70
_CAPACITY_J = 500.0
_MAX_CHARGE_W = 50.0
_MAX_DISCHARGE_W = 60.0
_DT_S = 0.5


ops = st.lists(
    st.one_of(
        st.tuples(st.just("charge"), st.floats(0.0, 120.0, allow_nan=False)),
        st.tuples(st.just("discharge"), st.floats(0.0, 120.0, allow_nan=False)),
        st.tuples(st.just("outage"), st.booleans()),
        st.tuples(st.just("derate"), st.floats(0.05, 1.0, allow_nan=False)),
        st.tuples(st.just("restore"), st.just(0.0)),
        st.tuples(st.just("fade"), st.floats(0.0, 0.6, allow_nan=False,
                                             exclude_max=True)),
    ),
    min_size=1,
    max_size=60,
)

initial_socs = st.floats(0.0, 1.0, allow_nan=False)


def _apply(battery: LeadAcidBattery, op: str, arg: float) -> float:
    """Run one operation; returns power delivered by a discharge (else 0)."""
    if op == "charge":
        admissible = battery.admissible_charge_w(arg)
        battery.charge(admissible, _DT_S)
        return 0.0
    if op == "discharge":
        admissible = battery.admissible_discharge_w(arg, _DT_S)
        return battery.discharge(admissible, _DT_S)
    if op == "outage":
        battery.set_available(bool(arg))
    elif op == "derate":
        battery.derate_discharge(arg)
    elif op == "restore":
        battery.restore_discharge()
    elif op == "fade":
        battery.apply_capacity_fade(arg)
    return 0.0


class TestBatteryFaultInvariants:
    @given(sequence=ops, initial_soc=initial_socs)
    @settings(max_examples=120, deadline=None)
    def test_soc_stays_within_bounds(self, sequence, initial_soc):
        battery = LeadAcidBattery(
            _CAPACITY_J,
            efficiency=_EFFICIENCY,
            max_charge_w=_MAX_CHARGE_W,
            max_discharge_w=_MAX_DISCHARGE_W,
            initial_soc=initial_soc,
        )
        for op, arg in sequence:
            _apply(battery, op, arg)
            assert 0.0 <= battery.stored_j <= battery.capacity_j + 1e-9
            assert 0.0 <= battery.soc <= 1.0 + 1e-12

    @given(sequence=ops, initial_soc=initial_socs)
    @settings(max_examples=120, deadline=None)
    def test_discharge_never_exceeds_derated_limit(self, sequence, initial_soc):
        battery = LeadAcidBattery(
            _CAPACITY_J,
            efficiency=_EFFICIENCY,
            max_charge_w=_MAX_CHARGE_W,
            max_discharge_w=_MAX_DISCHARGE_W,
            initial_soc=initial_soc,
        )
        for op, arg in sequence:
            delivered = _apply(battery, op, arg)
            assert delivered <= battery.max_discharge_w + 1e-9
            assert battery.max_discharge_w <= _MAX_DISCHARGE_W + 1e-9

    @given(sequence=ops, initial_soc=initial_socs)
    @settings(max_examples=120, deadline=None)
    def test_energy_is_conserved(self, sequence, initial_soc):
        battery = LeadAcidBattery(
            _CAPACITY_J,
            efficiency=_EFFICIENCY,
            max_charge_w=_MAX_CHARGE_W,
            max_discharge_w=_MAX_DISCHARGE_W,
            initial_soc=initial_soc,
        )
        initial_j = battery.stored_j
        for op, arg in sequence:
            _apply(battery, op, arg)
            stats = battery.stats
            banked = _EFFICIENCY * stats.total_charged_j
            assert battery.stored_j - initial_j == pytest.approx(
                banked - stats.total_discharged_j - battery.total_faded_j,
                abs=1e-6,
            )
