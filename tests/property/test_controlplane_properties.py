"""Hypothesis: the control plane's budget invariant under arbitrary chaos.

For arbitrary seeded loss/partition/outage schedules the aggregate-cap
invariant must hold at every step, and after the partition heals and the
network drains clean, every node must end in a consistent epoch with no
zombie caps (no node enforcing an extra the controller no longer accounts
for).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cluster.controlplane import run_control_plane
from repro.netsim import NetConfig, PartitionWindow

N_NODES = 5
BUDGET_W = 500.0
DRAIN_STEPS = 40


@st.composite
def chaos_schedules(draw):
    steps = draw(st.integers(min_value=30, max_value=80))
    loss = draw(st.floats(min_value=0.0, max_value=0.3, allow_nan=False))
    jitter = draw(st.integers(min_value=0, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    loads = draw(
        st.lists(
            st.integers(min_value=0, max_value=N_NODES),
            min_size=steps,
            max_size=steps,
        )
    )
    partitions = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        length = draw(st.integers(min_value=1, max_value=max(1, steps // 4)))
        start = draw(st.integers(min_value=0, max_value=steps - 1))
        nodes = draw(
            st.sets(
                st.integers(min_value=0, max_value=N_NODES - 1),
                min_size=1,
                max_size=N_NODES - 1,
            )
        )
        partitions.append(
            PartitionWindow(start_step=start, end_step=start + length, nodes=tuple(nodes))
        )
    down_sets = []
    outage_node = draw(st.integers(min_value=0, max_value=N_NODES - 1))
    outage_start = draw(st.integers(min_value=0, max_value=steps - 1))
    outage_len = draw(st.integers(min_value=0, max_value=steps // 2))
    for t in range(steps):
        down = set()
        if outage_len and outage_start <= t < outage_start + outage_len:
            down.add(outage_node)
        down_sets.append(frozenset(down))
    net = NetConfig(
        jitter_steps=jitter,
        loss=loss,
        duplicate=loss / 2,
        partitions=tuple(partitions),
        # The scheduled portion is hostile; the drain is clean, so the
        # consistency assertions are deterministic.
        lossy_until_step=steps,
        seed=seed,
    )
    return loads, down_sets, net


class TestControlPlaneProperties:
    @given(schedule=chaos_schedules())
    @settings(max_examples=60, deadline=None)
    def test_budget_invariant_and_consistent_heal(self, schedule):
        loads, down_sets, net = schedule
        # run_control_plane itself raises SimulationError the instant the
        # aggregate-cap invariant is violated - completing IS the invariant.
        outcome = run_control_plane(
            n_nodes=N_NODES,
            budget_w=BUDGET_W,
            loaded_counts=loads,
            down_sets=down_sets,
            net=net,
            quantum_w=2.0,
            drain_steps=DRAIN_STEPS,
        )
        assert outcome.max_total_cap_w <= BUDGET_W + 1e-6
        for row in outcome.caps_w:
            assert sum(row) <= BUDGET_W + 1e-6
            assert all(cap >= outcome.safe_cap_w - 1e-9 for cap in row)
        # No zombie caps after the heal + drain: every extra still enforced
        # is covered by a grant the controller accounts for.
        assert outcome.zombie_free
        # Epoch consistency: epochs are globally monotone and issued to one
        # node each - two nodes can never end up on the same grant.
        granted = [e for e in outcome.node_epochs if e > 0]
        assert len(set(granted)) == len(granted)
        assert all(e <= outcome.final_epoch for e in outcome.node_epochs)
