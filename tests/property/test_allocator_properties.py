"""Hypothesis: the allocator never violates its budget and never loses to
the fair split, for arbitrary budgets and app subsets."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.allocator import PowerAllocator
from repro.core.utility import CandidateSet
from repro.server.config import ServerConfig
from repro.server.power_model import PowerModel
from repro.workloads.catalog import CATALOG

_CONFIG = ServerConfig()
_POWER = PowerModel(_CONFIG)
_CSETS = {
    name: CandidateSet.from_models(profile, _CONFIG, power_model=_POWER)
    for name, profile in CATALOG.items()
}
_NAMES = sorted(_CSETS)


app_subsets = st.lists(
    st.sampled_from(_NAMES), min_size=1, max_size=4, unique=True
)
budgets = st.floats(min_value=0.0, max_value=70.0, allow_nan=False)


class TestAllocatorInvariants:
    @given(apps=app_subsets, budget=budgets)
    @settings(max_examples=80, deadline=None)
    def test_budget_never_violated(self, apps, budget):
        allocation = PowerAllocator().allocate(
            {n: _CSETS[n] for n in apps}, budget
        )
        assert allocation.total_power_w <= budget + 1e-6

    @given(apps=app_subsets, budget=budgets)
    @settings(max_examples=60, deadline=None)
    def test_never_worse_than_fair_split(self, apps, budget):
        allocator = PowerAllocator()
        candidates = {n: _CSETS[n] for n in apps}
        dp = allocator.allocate(candidates, budget)
        fair = allocator.allocate_fair(candidates, budget)
        assert dp.objective >= fair.objective - 1e-6

    @given(apps=app_subsets, budget=budgets)
    @settings(max_examples=60, deadline=None)
    def test_every_app_has_a_decision(self, apps, budget):
        allocation = PowerAllocator().allocate({n: _CSETS[n] for n in apps}, budget)
        assert set(allocation.apps) == set(apps)
        assert sorted(allocation.included + allocation.excluded) == sorted(apps)

    @given(apps=app_subsets, budget=budgets)
    @settings(max_examples=60, deadline=None)
    def test_included_apps_use_feasible_knobs(self, apps, budget):
        allocation = PowerAllocator().allocate({n: _CSETS[n] for n in apps}, budget)
        for name in allocation.included:
            decision = allocation.apps[name]
            cset = _CSETS[name]
            idx = cset.index_of(decision.knob)
            assert abs(float(cset.power_w[idx]) - decision.power_w) < 1e-9

    @given(apps=app_subsets, lo=budgets, hi=budgets)
    @settings(max_examples=50, deadline=None)
    def test_objective_monotone_in_budget(self, apps, lo, hi):
        """More watts never reduce the achievable objective."""
        lo, hi = min(lo, hi), max(lo, hi)
        allocator = PowerAllocator()
        candidates = {n: _CSETS[n] for n in apps}
        small = allocator.allocate(candidates, lo)
        large = allocator.allocate(candidates, hi)
        assert large.objective >= small.objective - 1e-6
