"""Hypothesis: energy-conservation invariants of the battery model."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.esd.battery import LeadAcidBattery


flows = st.lists(
    st.tuples(
        st.sampled_from(["charge", "discharge"]),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


class TestSocInvariants:
    @given(ops=flows, initial=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=150, deadline=None)
    def test_soc_always_within_bounds(self, ops, initial):
        battery = LeadAcidBattery(
            capacity_j=500.0,
            efficiency=0.8,
            max_charge_w=50.0,
            max_discharge_w=50.0,
            initial_soc=initial,
        )
        for kind, power, dt in ops:
            if kind == "charge":
                battery.charge(battery.admissible_charge_w(power), dt)
            else:
                battery.discharge(battery.admissible_discharge_w(power, dt), dt)
            assert -1e-9 <= battery.soc <= 1.0 + 1e-9

    @given(ops=flows)
    @settings(max_examples=150, deadline=None)
    def test_energy_conservation(self, ops):
        """stored == eta * charged - discharged, exactly, always."""
        battery = LeadAcidBattery(
            capacity_j=500.0, efficiency=0.75, max_charge_w=50.0, max_discharge_w=50.0
        )
        for kind, power, dt in ops:
            if kind == "charge":
                battery.charge(battery.admissible_charge_w(power), dt)
            else:
                battery.discharge(battery.admissible_discharge_w(power, dt), dt)
        stats = battery.stats
        assert battery.stored_j == pytest.approx(
            0.75 * stats.total_charged_j - stats.total_discharged_j, abs=1e-6
        )

    @given(ops=flows)
    @settings(max_examples=100, deadline=None)
    def test_delivered_never_exceeds_banked(self, ops):
        battery = LeadAcidBattery(
            capacity_j=300.0, efficiency=0.7, max_charge_w=50.0, max_discharge_w=50.0
        )
        for kind, power, dt in ops:
            if kind == "charge":
                battery.charge(battery.admissible_charge_w(power), dt)
            else:
                battery.discharge(battery.admissible_discharge_w(power, dt), dt)
            stats = battery.stats
            assert stats.total_discharged_j <= stats.total_stored_j + 1e-9

    @given(
        reserve=st.floats(min_value=0.0, max_value=0.8),
        ops=flows,
    )
    @settings(max_examples=100, deadline=None)
    def test_reserve_floor_never_breached(self, reserve, ops):
        battery = LeadAcidBattery(
            capacity_j=400.0,
            efficiency=0.8,
            max_charge_w=50.0,
            max_discharge_w=50.0,
            reserve_fraction=reserve,
            initial_soc=reserve,
        )
        for kind, power, dt in ops:
            if kind == "charge":
                battery.charge(battery.admissible_charge_w(power), dt)
            else:
                battery.discharge(battery.admissible_discharge_w(power, dt), dt)
            assert battery.soc >= reserve - 1e-9
