"""Unit helpers: conversions, clamping, ranges, means."""

import math

import pytest

from repro import units


class TestConversions:
    def test_watt_hours_to_joules(self):
        assert units.watt_hours(1.0) == 3600.0

    def test_joules_roundtrip(self):
        assert units.joules_to_watt_hours(units.watt_hours(2.5)) == pytest.approx(2.5)

    def test_ghz_and_watts_are_identity(self):
        assert units.ghz(1.2) == 1.2
        assert units.watts(50) == 50.0


class TestWithinCap:
    def test_exact_cap_is_within(self):
        assert units.within_cap(100.0, 100.0)

    def test_tolerance_allows_float_drift(self):
        assert units.within_cap(100.0 + 1e-9, 100.0)

    def test_real_violation_detected(self):
        assert not units.within_cap(100.1, 100.0)

    def test_custom_tolerance(self):
        assert units.within_cap(100.5, 100.0, tolerance_w=1.0)


class TestClamp:
    def test_inside_interval_unchanged(self):
        assert units.clamp(5.0, 0.0, 10.0) == 5.0

    def test_clamps_low_and_high(self):
        assert units.clamp(-1.0, 0.0, 10.0) == 0.0
        assert units.clamp(11.0, 0.0, 10.0) == 10.0

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            units.clamp(5.0, 10.0, 0.0)


class TestFrange:
    def test_paper_dvfs_steps(self):
        steps = units.frange(1.2, 2.0, 0.1)
        assert len(steps) == 9
        assert steps[0] == 1.2
        assert steps[-1] == 2.0

    def test_no_float_drift(self):
        steps = units.frange(3.0, 10.0, 1.0)
        assert steps == [3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]

    def test_single_point(self):
        assert units.frange(1.0, 1.0, 0.5) == [1.0]

    def test_negative_step_raises(self):
        with pytest.raises(ValueError):
            units.frange(0.0, 1.0, -0.1)


class TestMeans:
    def test_harmonic_mean_of_equal_values(self):
        assert units.harmonic_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_harmonic_mean_below_arithmetic(self):
        values = [1.0, 4.0]
        assert units.harmonic_mean(values) < sum(values) / 2

    def test_harmonic_mean_empty(self):
        assert units.harmonic_mean([]) == 0.0

    def test_harmonic_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.harmonic_mean([1.0, 0.0])

    def test_geometric_mean_known_value(self):
        assert units.geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_empty(self):
        assert units.geometric_mean([]) == 0.0

    def test_geometric_mean_rejects_negative(self):
        with pytest.raises(ValueError):
            units.geometric_mean([-1.0])

    def test_nearly_equal(self):
        assert units.nearly_equal(1.0, 1.0 + 1e-9)
        assert not units.nearly_equal(1.0, 1.1)
