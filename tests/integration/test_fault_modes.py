"""End-to-end fault scenarios: the acceptance contract of the fault layer.

* Under the default fault plan the mediated run never exceeds the cap for
  more than one consecutive tick and every episode recovers.
* Fault injection is seed-deterministic: same plan + same seed => identical
  timeline.
* An E2 arrival during degraded telemetry is admitted, calibrated
  conservatively, and causes no breach.
* The ESD policy degrades from R4 to the battery-free fallback during a
  battery outage and restores afterwards.
* The emergency floor-throttle forces the wall under the cap within a tick.
"""

from repro.core.coordinator import Coordinator
from repro.core.mediator import PowerMediator
from repro.core.policies import make_policy
from repro.core.simulation import default_battery, run_mix_experiment
from repro.faults import FaultPlan, FaultSpec, default_fault_plan
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG

CAP_W = 80.0


def faulty_mediator(policy_name, faults, *, cap_w=CAP_W, seed=3, battery=None):
    server = SimulatedServer(seed=seed)
    mediator = PowerMediator(
        server,
        make_policy(policy_name),
        cap_w,
        dt_s=0.1,
        seed=seed,
        battery=battery,
        faults=faults,
    )
    for name in ("kmeans", "x264"):
        mediator.add_application(
            CATALOG[name].with_total_work(float("inf")), skip_overhead=True
        )
    return mediator


class TestDefaultPlanAcceptance:
    def test_cap_never_breached_two_ticks_running(self):
        result = run_mix_experiment(
            [CATALOG["kmeans"], CATALOG["x264"]],
            "app+res-aware",
            CAP_W,
            duration_s=50.0,
            warmup_s=5.0,
            faults=default_fault_plan(seed=1),
            seed=2,
        )
        stats = result.fault_stats
        assert stats is not None
        # verify_cap_invariant (inside run_mix_experiment) already raised if
        # any breach went unflagged; here we bound consecutive flags.
        assert stats.breach_ticks <= len(stats.episodes) + 1
        assert all(not ep.open for ep in stats.episodes)
        assert stats.crashes == 1
        assert result.server_throughput > 0.0

    def test_every_fault_class_journaled(self):
        mediator = faulty_mediator("app+res-aware", default_fault_plan(seed=1))
        mediator.run_for(50.0)
        kinds = {ep.kind for ep in mediator.fault_stats.episodes}
        assert {"app", "rapl", "telemetry"} <= kinds
        events = mediator.accountant.event_log
        fault_kinds = {e.kind for e in events if type(e).__name__ == "FaultEvent"}
        assert "battery" in fault_kinds  # windowed even without an ESD


class TestDeterminism:
    def test_same_plan_and_seed_identical_timeline(self):
        def timeline():
            mediator = faulty_mediator(
                "app+res-aware", default_fault_plan(seed=7), seed=3
            )
            mediator.run_for(50.0)
            return mediator.timeline

        first, second = timeline(), timeline()
        assert len(first) == len(second)
        assert first == second

    def test_noise_seed_changes_observations(self):
        def observed(seed):
            plan = FaultPlan(
                specs=(
                    FaultSpec(
                        kind="telemetry", mode="noise", start_s=1.0,
                        duration_s=3.0, magnitude=2.0,
                    ),
                ),
                seed=seed,
            )
            mediator = faulty_mediator("app+res-aware", plan, seed=3)
            mediator.run_for(5.0)
            return [r.observed_wall_w for r in mediator.timeline]

        assert observed(1) != observed(2)


class TestArrivalDuringDegradedTelemetry:
    def test_e2_admitted_without_breach(self):
        # Cap 90 leaves a 20 W dynamic budget: enough for both apps to fit
        # the TIME rotation (at 80 the policy rightly excludes x264).
        cap_w = 90.0
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="telemetry", mode="drop", start_s=5.0, duration_s=8.0),
            )
        )
        server = SimulatedServer(seed=3)
        mediator = PowerMediator(
            server, make_policy("app+res-aware"), cap_w, dt_s=0.1, seed=3, faults=plan
        )
        mediator.add_application(
            CATALOG["kmeans"].with_total_work(float("inf")), skip_overhead=True
        )
        mediator.run_for(8.0)
        assert mediator.degraded_telemetry  # watchdog tripped mid-blackout
        mediator.add_application(CATALOG["x264"].with_total_work(float("inf")))
        # Long enough to cover a full rotation period after recovery (each
        # replan restarts the rotation at slot 0).
        mediator.run_for(22.0)
        assert "x264" in mediator.managed_apps()
        assert mediator.fault_stats.breach_ticks == 0
        assert all(r.wall_w <= cap_w + 1e-6 for r in mediator.timeline)
        # Degraded mode ended once samples came back.
        assert not mediator.degraded_telemetry
        # x264 actually runs after the calibration pause (TIME rotation may
        # park it on any individual tick, so scan the tail of the timeline).
        assert any(
            r.app_power_w.get("x264", 0.0) > 0.0
            for r in mediator.timeline
            if r.time_s > 8.0
        )

    def test_degraded_mode_plans_against_reduced_cap(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="telemetry", mode="drop", start_s=2.0, duration_s=6.0),
            )
        )
        mediator = faulty_mediator("app+res-aware", plan)
        mediator.run_for(10.0)
        degraded = [r for r in mediator.timeline if r.degraded]
        assert degraded
        guard = mediator._resilience_cfg.degraded_guard_band  # noqa: SLF001
        reduced = CAP_W * (1.0 - guard)
        # While degraded the plan targets the reduced cap; the wall tracks it.
        assert all(r.wall_w <= CAP_W + 1e-6 for r in degraded)
        assert min(r.wall_w for r in degraded) <= reduced + 1e-6


class TestEsdDegradation:
    def test_battery_outage_degrades_r4_and_restores(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="battery", mode="outage", start_s=15.0, duration_s=10.0
                ),
            )
        )
        battery = default_battery()
        mediator = faulty_mediator(
            "app+res+esd-aware", plan, battery=battery, seed=3
        )
        mediator.run_for(40.0)
        modes = [(r.time_s, r.mode.value) for r in mediator.timeline]
        during = {m for t, m in modes if 15.5 <= t < 25.0}
        after = {m for t, m in modes if t >= 30.0}
        assert "esd" not in during  # R4 unavailable while the battery is out
        assert "esd" in after  # restored once the outage cleared
        assert mediator.fault_stats.breach_ticks == 0
        assert all(r.wall_w <= CAP_W + 1e-6 for r in mediator.timeline)


class TestEmergencyThrottle:
    def test_floor_throttle_fits_under_cap_within_one_tick(self):
        server = SimulatedServer(seed=0)
        for name in ("kmeans", "x264"):
            server.admit(CATALOG[name].with_total_work(float("inf")))
            server.knobs.set_knob(name, server.config.max_knob)
        hot = server.tick(0.1)
        assert hot.breakdown.wall_w > CAP_W  # genuinely breaching
        coordinator = Coordinator(server)
        floored, suspended = coordinator.emergency_throttle(CAP_W)
        assert floored or suspended
        calm = server.tick(0.1)
        assert calm.breakdown.wall_w <= CAP_W + 1e-6
