"""Integration: deeper consolidation - three or four isolated applications.

The paper evaluates pairs (one app per socket); the framework generalizes
to narrower core groups (e.g. four 3-core applications, two per socket,
still with disjoint cores). These tests exercise that extension: admission,
width-restricted knob spaces, allocation, and cap adherence.
"""

import pytest

from repro.errors import SchedulingError
from repro.core.mediator import PowerMediator
from repro.core.policies import make_policy
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG

QUAD = ("kmeans", "stream", "sssp", "x264")


def quad_mediator(config, cap, *, policy="app+res-aware", oracle=True):
    server = SimulatedServer(config)
    mediator = PowerMediator(
        server, make_policy(policy), cap, use_oracle_estimates=oracle
    )
    for name in QUAD:
        mediator.add_application(
            CATALOG[name].with_total_work(float("inf")),
            skip_overhead=True,
            group_width=3,
        )
    return mediator


class TestAdmission:
    def test_four_three_core_apps_fit(self, config):
        mediator = quad_mediator(config, 130.0)
        assert mediator.managed_apps() == sorted(QUAD)
        assert mediator.server.topology.total_free_cores() == 0

    def test_fifth_app_rejected(self, config):
        mediator = quad_mediator(config, 130.0)
        with pytest.raises(SchedulingError):
            mediator.add_application(
                CATALOG["bfs"], skip_overhead=True, group_width=3
            )

    def test_mixed_widths(self, config):
        server = SimulatedServer(config)
        mediator = PowerMediator(
            server, make_policy("app+res-aware"), 130.0, use_oracle_estimates=True
        )
        mediator.add_application(
            CATALOG["kmeans"].with_total_work(float("inf")),
            skip_overhead=True,
            group_width=6,
        )
        for name in ("stream", "sssp"):
            mediator.add_application(
                CATALOG[name].with_total_work(float("inf")),
                skip_overhead=True,
                group_width=3,
            )
        mediator.run_for(3.0)
        assert len(mediator.managed_apps()) == 3


class TestWidthRestriction:
    def test_knobs_never_exceed_group_width(self, config):
        mediator = quad_mediator(config, 130.0)
        mediator.run_for(5.0)
        for record in mediator.timeline:
            for name, knob in record.app_knobs.items():
                assert knob.cores <= 3

    def test_candidate_sets_are_width_limited(self, config):
        mediator = quad_mediator(config, 130.0)
        for name in QUAD:
            cset = mediator._oracle[name]  # noqa: SLF001 - asserting internals
            assert all(k.cores <= 3 for k in cset.knobs)
            # perf_nocap rebased to the 3-core peak.
            assert cset.relative_perf().max() == pytest.approx(1.0)

    def test_learned_estimates_also_width_limited(self, config):
        mediator = quad_mediator(config, 130.0, oracle=False)
        for name in QUAD:
            cset = mediator._estimates[name]  # noqa: SLF001
            assert all(k.cores <= 3 for k in cset.knobs)


class TestCapAdherence:
    @pytest.mark.parametrize("cap", [130.0, 110.0, 95.0])
    def test_four_apps_hold_the_cap(self, config, cap):
        mediator = quad_mediator(config, cap)
        mediator.run_for(8.0)
        for record in mediator.timeline:
            assert record.wall_w <= cap + 1e-6

    def test_everyone_progresses_at_generous_cap(self, config):
        mediator = quad_mediator(config, 130.0)
        mediator.run_for(10.0)
        for name in QUAD:
            assert mediator.normalized_throughput(name, since_s=2.0) > 0.1

    def test_util_unaware_also_works(self, config):
        mediator = quad_mediator(config, 110.0, policy="util-unaware")
        mediator.run_for(8.0)
        for record in mediator.timeline:
            assert record.wall_w <= 110.0 + 1e-6
