"""Integration: the paper's headline result shapes must hold end to end.

These are the acceptance tests of the reproduction (DESIGN.md section 5):
who wins, by roughly what factor, and where the crossovers fall. They run
the same harness the benchmarks use, on a reduced mix subset for speed -
the benchmarks run the full Table II sweep.
"""

import numpy as np
import pytest

from repro.core.simulation import run_mix_experiment, run_policy_comparison
from repro.workloads.mixes import all_mixes, get_mix

#: A representative subset: memory+compute (1), compute+compute (10),
#: media+graph with strong resource contrast (14), plus 3 and 11.
SUBSET = [get_mix(i) for i in (1, 3, 10, 11, 14)]

POLICIES = ["util-unaware", "server+res-aware", "app-aware", "app+res-aware"]


@pytest.fixture(scope="module")
def at_100w(config):
    return run_policy_comparison(
        SUBSET, POLICIES, 100.0, config=config, duration_s=20.0, warmup_s=8.0
    )


@pytest.fixture(scope="module")
def at_80w(config):
    return run_policy_comparison(
        SUBSET,
        POLICIES + ["app+res+esd-aware"],
        80.0,
        config=config,
        duration_s=40.0,
        warmup_s=15.0,
    )


def mean_throughput(results, policy):
    return float(np.mean([results[m][policy].server_throughput for m in results]))


class TestSpatialCoordination100W:
    """Fig. 8a: the paper's ordering and rough factors at the loose cap."""

    def test_app_aware_beats_both_baselines(self, at_100w):
        app = mean_throughput(at_100w, "app-aware")
        assert app > mean_throughput(at_100w, "util-unaware") * 1.05
        assert app > mean_throughput(at_100w, "server+res-aware") * 1.02

    def test_app_res_beats_app_aware(self, at_100w):
        assert mean_throughput(at_100w, "app+res-aware") > mean_throughput(
            at_100w, "app-aware"
        )

    def test_total_gain_in_paper_range(self, at_100w):
        """~20% end-to-end gain over the state of the art."""
        gain = mean_throughput(at_100w, "app+res-aware") / mean_throughput(
            at_100w, "util-unaware"
        )
        assert 1.10 <= gain <= 1.45

    def test_baselines_are_close_to_each_other(self, at_100w):
        # Over the full Table II the two baselines are within ~2% (see the
        # Fig. 8 benchmark); this subset over-weights STREAM mixes, where
        # the population-average knob is a poor fit, so allow more slack.
        ratio = mean_throughput(at_100w, "server+res-aware") / mean_throughput(
            at_100w, "util-unaware"
        )
        assert 0.82 <= ratio <= 1.15

    def test_mix10_split_favors_pagerank(self, at_100w):
        """The 55-45 split of the paper's mix-10 discussion."""
        shares = at_100w[10]["app+res-aware"].power_share
        assert shares["pagerank"] > 0.5 > shares["kmeans"]
        assert shares["pagerank"] < 0.65  # a split, not a starvation

    def test_average_split_is_uneven_but_mild(self, at_100w):
        """"a 46%-54% split, on the average"."""
        lows = []
        for mid, per in at_100w.items():
            shares = sorted(per["app+res-aware"].power_share.values())
            if sum(shares) > 0:
                lows.append(shares[0])
        assert 0.30 <= float(np.mean(lows)) <= 0.50


class TestTemporalCoordination80W:
    """Fig. 10: stringent caps amplify the gains; the ESD roughly doubles."""

    def test_gains_grow_with_stringency(self, at_100w, at_80w):
        gain_100 = mean_throughput(at_100w, "app+res-aware") / mean_throughput(
            at_100w, "util-unaware"
        )
        gain_80 = mean_throughput(at_80w, "app+res-aware") / mean_throughput(
            at_80w, "util-unaware"
        )
        assert gain_80 > gain_100

    def test_app_res_gain_is_substantial(self, at_80w):
        """The paper reports ~70%; require at least ~25%."""
        gain = mean_throughput(at_80w, "app+res-aware") / mean_throughput(
            at_80w, "util-unaware"
        )
        assert gain >= 1.25

    def test_esd_roughly_doubles(self, at_80w):
        """"a throughput boost of nearly 2x"."""
        esd = mean_throughput(at_80w, "app+res+esd-aware")
        best_non_esd = mean_throughput(at_80w, "app+res-aware")
        assert 1.5 <= esd / best_non_esd <= 4.0

    def test_esd_beats_everything(self, at_80w):
        esd = mean_throughput(at_80w, "app+res+esd-aware")
        for policy in POLICIES:
            assert esd > mean_throughput(at_80w, policy)

    def test_absolute_throughput_lower_than_100w(self, at_100w, at_80w):
        for policy in POLICIES:
            assert mean_throughput(at_80w, policy) < mean_throughput(at_100w, policy)


class TestEsdOnlyRegime70W:
    """Fig. 5's premise: at 70 W nothing runs without the battery."""

    def test_non_esd_policy_yields_zero(self, config):
        result = run_mix_experiment(
            list(get_mix(10).profiles()),
            "app+res-aware",
            70.0,
            config=config,
            duration_s=10.0,
            warmup_s=2.0,
            use_oracle_estimates=True,
        )
        assert result.server_throughput == 0.0

    def test_esd_policy_extracts_work(self, config):
        result = run_mix_experiment(
            list(get_mix(10).profiles()),
            "app+res+esd-aware",
            70.0,
            config=config,
            duration_s=40.0,
            warmup_s=15.0,
            use_oracle_estimates=True,
        )
        assert result.server_throughput > 0.1
