"""Integration: full mediator scenarios mirroring Section IV-C (Fig. 11)."""

import pytest

from repro.core.coordinator import CoordinationMode
from repro.core.events import (
    ArrivalEvent,
    CapChangeEvent,
    DepartureEvent,
)
from repro.core.mediator import PowerMediator
from repro.core.policies import make_policy
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG
from repro.workloads.mixes import get_mix


class TestArrivalScenario:
    """Fig. 11a: X264 joins SSSP under a 100 W cap."""

    @pytest.fixture(scope="class")
    def mediator(self, config):
        server = SimulatedServer(config)
        mediator = PowerMediator(
            server,
            make_policy("app+res-aware"),
            100.0,
            use_oracle_estimates=True,
            dt_s=0.1,
        )
        sssp = CATALOG["sssp"].with_total_work(float("inf"))
        x264 = CATALOG["x264"].with_total_work(float("inf"))
        mediator.add_application(sssp, skip_overhead=True)
        mediator.run_for(20.0)
        mediator.add_application(x264)  # overhead charged
        mediator.run_for(20.0)
        return mediator

    def test_sssp_runs_alone_at_high_power_first(self, mediator):
        early = [r for r in mediator.timeline if r.time_s <= 20.0]
        solo_power = [r.app_power_w.get("sssp", 0.0) for r in early[10:]]
        assert min(solo_power) > 18.0  # uncapped demand, paper's ~25 W

    def test_sssp_power_drops_on_arrival(self, mediator):
        late = mediator.timeline[-1]
        assert late.app_power_w["sssp"] < 18.0

    def test_x264_receives_an_allocation(self, mediator):
        late = mediator.timeline[-1]
        assert late.app_power_w["x264"] > 8.0

    def test_combined_power_fits_budget(self, mediator, config):
        late = mediator.timeline[-1]
        total = sum(late.app_power_w.values())
        assert total <= config.dynamic_budget_w(100.0) + 1e-6

    def test_sssp_keeps_frequency_sheds_cores(self, mediator, config):
        """The paper's headline knob story."""
        knob = mediator.timeline[-1].app_knobs["sssp"]
        assert knob.freq_ghz >= 1.8  # stays near 2 GHz
        assert knob.cores <= 4  # consolidates (paper: 6 -> 3)

    def test_x264_keeps_cores_sheds_frequency(self, mediator, config):
        knob = mediator.timeline[-1].app_knobs["x264"]
        assert knob.cores >= 5  # keeps its pipeline wide
        assert knob.freq_ghz <= 1.7  # sheds frequency (paper: 2 -> 1.4)

    def test_cap_never_violated(self, mediator):
        for record in mediator.timeline:
            assert record.wall_w <= 100.0 + 1e-6

    def test_event_log_records_arrivals(self, mediator):
        arrivals = [
            e for e in mediator.accountant.event_log if isinstance(e, ArrivalEvent)
        ]
        assert [e.profile.name for e in arrivals] == ["sssp", "x264"]


class TestDepartureScenario:
    """Fig. 11b: PageRank finishes; kmeans is uncapped and scales up."""

    @pytest.fixture(scope="class")
    def mediator(self, config):
        server = SimulatedServer(config)
        mediator = PowerMediator(
            server,
            make_policy("app+res-aware"),
            100.0,
            use_oracle_estimates=True,
            dt_s=0.1,
        )
        kmeans = CATALOG["kmeans"].with_total_work(float("inf"))
        pagerank = CATALOG["pagerank"].with_total_work(40.0)
        mediator.add_application(kmeans, skip_overhead=True)
        mediator.add_application(pagerank, skip_overhead=True)
        mediator.run_for(60.0)
        return mediator

    def test_pagerank_departed(self, mediator):
        assert mediator.managed_apps() == ["kmeans"]
        departures = [
            e for e in mediator.accountant.event_log if isinstance(e, DepartureEvent)
        ]
        assert [e.app for e in departures] == ["pagerank"]
        assert departures[0].completed

    def test_kmeans_scales_up_after_departure(self, mediator):
        departure_t = next(
            e.time_s
            for e in mediator.accountant.event_log
            if isinstance(e, DepartureEvent)
        )
        before = [
            r for r in mediator.timeline if departure_t - 3.0 < r.time_s < departure_t
        ]
        after = [r for r in mediator.timeline if r.time_s > departure_t + 3.0]
        power_before = max(r.app_power_w.get("kmeans", 0.0) for r in before)
        power_after = max(r.app_power_w.get("kmeans", 0.0) for r in after)
        assert power_after > power_before + 3.0

    def test_kmeans_ends_uncapped(self, mediator, config):
        knob = mediator.timeline[-1].app_knobs["kmeans"]
        assert knob == config.max_knob

    def test_cap_held_throughout(self, mediator):
        for record in mediator.timeline:
            assert record.wall_w <= 100.0 + 1e-6


class TestCapChangeScenario:
    """E1: the server's budget drops mid-run and recovers."""

    def test_mode_transitions_follow_the_cap(self, config):
        server = SimulatedServer(config)
        mediator = PowerMediator(
            server, make_policy("app+res-aware"), 100.0, use_oracle_estimates=True
        )
        for profile in get_mix(10).profiles():
            mediator.add_application(
                profile.with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(5.0)
        modes = [mediator.coordinator.plan.mode]
        mediator.set_power_cap(80.0)
        mediator.run_for(5.0)
        modes.append(mediator.coordinator.plan.mode)
        mediator.set_power_cap(100.0)
        mediator.run_for(5.0)
        modes.append(mediator.coordinator.plan.mode)
        assert modes == [
            CoordinationMode.SPACE,
            CoordinationMode.TIME,
            CoordinationMode.SPACE,
        ]
        caps = [e.new_cap_w for e in mediator.accountant.event_log if isinstance(e, CapChangeEvent)]
        assert caps == [100.0, 80.0, 100.0]
        for record in mediator.timeline:
            assert record.wall_w <= record.p_cap_w + 1e-6

    def test_throughput_tracks_the_cap(self, config):
        server = SimulatedServer(config)
        mediator = PowerMediator(
            server, make_policy("app+res-aware"), 100.0, use_oracle_estimates=True
        )
        for profile in get_mix(10).profiles():
            mediator.add_application(
                profile.with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(10.0)
        loose = mediator.server_objective(since_s=2.0)
        mediator.set_power_cap(80.0)
        mediator.run_for(20.0)
        overall = mediator.server_objective(since_s=12.0)
        assert overall < loose
