"""ESD controller: Eq. (5) duty cycles and the tick protocol."""

import pytest

from repro.errors import ConfigurationError, PowerBudgetError
from repro.esd.battery import LeadAcidBattery
from repro.esd.controller import DutyCycle, EsdController, Phase, compute_duty_cycle


class TestEquationFive:
    def test_paper_80w_regime_is_60_40(self):
        """Section IV-B: Lead-Acid gives a 60-40 OFF-ON split at 80 W."""
        cycle = compute_duty_cycle(
            p_idle_w=50.0,
            p_cm_w=20.0,
            sum_app_w=40.0,
            p_cap_w=80.0,
            efficiency=0.70,
            period_s=10.0,
        )
        # Eq. (5): off/on = (50+20+40-80) / (0.7 * (80-50)) = 30/21
        assert cycle.off_on_ratio == pytest.approx(30.0 / 21.0)
        assert cycle.on_fraction == pytest.approx(21.0 / 51.0)
        assert 0.55 <= cycle.off_s / cycle.period_s <= 0.65  # "60-40"

    def test_energy_balance_is_sustainable(self):
        """Per period, banked energy equals spent energy - the schedule can
        repeat forever."""
        cycle = compute_duty_cycle(
            p_idle_w=50.0,
            p_cm_w=20.0,
            sum_app_w=40.0,
            p_cap_w=80.0,
            efficiency=0.7,
            period_s=10.0,
        )
        banked = 0.7 * cycle.charge_w * cycle.off_s
        spent = cycle.discharge_w * cycle.on_s
        assert banked == pytest.approx(spent)

    def test_loose_cap_needs_no_esd(self):
        cycle = compute_duty_cycle(
            p_idle_w=50.0,
            p_cm_w=20.0,
            sum_app_w=20.0,
            p_cap_w=100.0,
            efficiency=0.7,
            period_s=10.0,
        )
        assert cycle.off_s == 0.0
        assert cycle.on_fraction == 1.0
        assert cycle.discharge_w == 0.0

    def test_cap_below_idle_rejected(self):
        with pytest.raises(PowerBudgetError):
            compute_duty_cycle(
                p_idle_w=50.0,
                p_cm_w=20.0,
                sum_app_w=40.0,
                p_cap_w=49.0,
                efficiency=0.7,
                period_s=10.0,
            )

    def test_paper_70w_fig5_regime(self):
        """Fig. 5: at 70 W the charge headroom is 20 W."""
        cycle = compute_duty_cycle(
            p_idle_w=50.0,
            p_cm_w=20.0,
            sum_app_w=40.0,
            p_cap_w=70.0,
            efficiency=1.0,
            period_s=15.0,
        )
        assert cycle.charge_w == pytest.approx(20.0)
        assert cycle.discharge_w == pytest.approx(40.0)
        # off/on = 40/20 = 2 -> 10 s off, 5 s on per 15 s period.
        assert cycle.off_s == pytest.approx(10.0)
        assert cycle.on_s == pytest.approx(5.0)

    def test_stringency_lengthens_off_phase(self):
        fractions = []
        for cap in (95.0, 85.0, 75.0, 65.0):
            cycle = compute_duty_cycle(
                p_idle_w=50.0,
                p_cm_w=20.0,
                sum_app_w=40.0,
                p_cap_w=cap,
                efficiency=0.7,
                period_s=10.0,
            )
            fractions.append(cycle.on_fraction)
        assert fractions == sorted(fractions, reverse=True)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_duty_cycle(
                p_idle_w=50.0, p_cm_w=20.0, sum_app_w=40.0,
                p_cap_w=80.0, efficiency=0.0, period_s=10.0,
            )
        with pytest.raises(ConfigurationError):
            compute_duty_cycle(
                p_idle_w=50.0, p_cm_w=20.0, sum_app_w=40.0,
                p_cap_w=80.0, efficiency=0.7, period_s=0.0,
            )


@pytest.fixture()
def cycle():
    return compute_duty_cycle(
        p_idle_w=50.0,
        p_cm_w=20.0,
        sum_app_w=40.0,
        p_cap_w=80.0,
        efficiency=0.7,
        period_s=10.0,
    )


@pytest.fixture()
def battery():
    return LeadAcidBattery(
        capacity_j=10_000.0, efficiency=0.7, max_charge_w=50.0, max_discharge_w=60.0
    )


class TestController:
    def test_starts_in_off_phase(self, battery, cycle):
        controller = EsdController(battery, cycle)
        assert controller.phase is Phase.OFF

    def test_banks_during_off(self, battery, cycle):
        controller = EsdController(battery, cycle)
        controller.begin_tick(0.1)
        drawn = controller.bank(0.1)
        assert drawn == pytest.approx(cycle.charge_w)
        assert battery.stored_j > 0

    def test_transitions_to_on_after_off_phase(self, battery, cycle):
        controller = EsdController(battery, cycle)
        elapsed = 0.0
        while elapsed < cycle.off_s:
            assert controller.begin_tick(0.1) is Phase.OFF
            controller.bank(0.1)
            elapsed += 0.1
        assert controller.begin_tick(0.1) is Phase.ON

    def test_on_transition_requires_energy(self, cycle):
        # A battery too small to hold one ON phase never transitions.
        tiny = LeadAcidBattery(
            capacity_j=1.0, efficiency=0.7, max_charge_w=50.0, max_discharge_w=60.0
        )
        controller = EsdController(tiny, cycle)
        for _ in range(200):
            phase = controller.begin_tick(0.1)
            assert phase is Phase.OFF
            controller.bank(0.1)

    def test_boost_covers_required_overshoot(self, battery, cycle):
        controller = EsdController(battery, cycle)
        battery.charge(50.0, 50.0)  # plenty banked
        while controller.begin_tick(0.1) is Phase.OFF:
            controller.bank(0.1)
        delivered = controller.boost(0.1, required_w=35.0)
        assert delivered == pytest.approx(35.0)

    def test_bank_outside_off_rejected(self, battery, cycle):
        controller = EsdController(battery, cycle)
        battery.charge(50.0, 50.0)
        while controller.begin_tick(0.1) is Phase.OFF:
            controller.bank(0.1)
        with pytest.raises(ConfigurationError):
            controller.bank(0.1)

    def test_boost_outside_on_rejected(self, battery, cycle):
        controller = EsdController(battery, cycle)
        with pytest.raises(ConfigurationError):
            controller.boost(0.1)

    def test_full_cycle_returns_to_off(self, battery, cycle):
        controller = EsdController(battery, cycle)
        battery.charge(50.0, 100.0)
        phases = []
        for _ in range(int(cycle.period_s / 0.1) + 2):
            phase = controller.begin_tick(0.1)
            phases.append(phase)
            if phase is Phase.OFF:
                controller.bank(0.1)
            else:
                controller.boost(0.1)
        assert Phase.ON in phases
        assert phases[-1] is Phase.OFF  # wrapped around

    def test_abort_on_phase(self, battery, cycle):
        controller = EsdController(battery, cycle)
        battery.charge(50.0, 100.0)
        while controller.begin_tick(0.1) is Phase.OFF:
            controller.bank(0.1)
        controller.abort_on_phase()
        assert controller.phase is Phase.OFF

    def test_can_boost_tracks_energy(self, battery, cycle):
        controller = EsdController(battery, cycle)
        assert not controller.can_boost(0.1)
        battery.charge(50.0, 10.0)
        assert controller.can_boost(0.1)

    def test_replace_cycle_restarts_off(self, battery, cycle):
        controller = EsdController(battery, cycle)
        battery.charge(50.0, 100.0)
        while controller.begin_tick(0.1) is Phase.OFF:
            controller.bank(0.1)
        controller.replace_cycle(cycle)
        assert controller.phase is Phase.OFF

    def test_no_off_phase_cycle_stays_on(self, battery):
        cycle = DutyCycle(off_s=0.0, on_s=10.0, charge_w=0.0, discharge_w=0.0)
        controller = EsdController(battery, cycle)
        assert controller.begin_tick(0.1) is Phase.ON
