"""Battery chemistry presets and their effect on the ESD scheme."""

import pytest

from repro.errors import ConfigurationError
from repro.esd.presets import BATTERY_PRESETS, make_battery


class TestPresets:
    def test_all_presets_construct(self):
        for name in BATTERY_PRESETS:
            battery = make_battery(name)
            assert battery.capacity_j > 0

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            make_battery("flux-capacitor")

    def test_lead_acid_matches_paper_regime(self):
        battery = make_battery("lead-acid")
        assert battery.efficiency == pytest.approx(0.70)
        assert battery.max_discharge_w >= 40.0  # covers the 80 W overshoot

    def test_li_ion_dominates_lead_acid(self):
        lead = make_battery("lead-acid")
        li = make_battery("li-ion")
        assert li.efficiency > lead.efficiency
        assert li.max_discharge_w > lead.max_discharge_w

    def test_ultracap_is_power_dense_energy_poor(self):
        cap = make_battery("ultracap")
        lead = make_battery("lead-acid")
        assert cap.max_discharge_w > lead.max_discharge_w
        assert cap.capacity_j < lead.capacity_j / 10

    def test_backup_reserve_floor(self):
        battery = make_battery("lead-acid-backup-reserve")
        assert battery.usable_j == 0.0  # starts at the reserve floor
        assert battery.soc == pytest.approx(0.5)

    def test_initial_soc_override(self):
        battery = make_battery("li-ion", initial_soc=1.0)
        assert battery.soc == 1.0


class TestPresetsEndToEnd:
    def test_chemistry_orders_esd_throughput(self, config):
        """Li-ion's better efficiency buys a longer ON fraction (Eq. 5),
        so the 80 W scheme does more work on it than on Lead-Acid."""
        from repro.core.simulation import run_mix_experiment
        from repro.workloads.mixes import get_mix

        results = {}
        for preset in ("lead-acid", "li-ion"):
            result = run_mix_experiment(
                list(get_mix(10).profiles()),
                "app+res+esd-aware",
                80.0,
                config=config,
                duration_s=40.0,
                warmup_s=15.0,
                battery=make_battery(preset),
                use_oracle_estimates=True,
            )
            results[preset] = result.server_throughput
        assert results["li-ion"] > results["lead-acid"]
