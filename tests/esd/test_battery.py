"""Lead-Acid battery: SoC dynamics, limits, efficiency, accounting."""

import pytest

from repro.errors import BatteryError, ConfigurationError
from repro.esd.battery import LeadAcidBattery


def make(**overrides):
    params = dict(capacity_j=1000.0, efficiency=0.8, max_charge_w=50.0, max_discharge_w=60.0)
    params.update(overrides)
    return LeadAcidBattery(**params)


class TestConstruction:
    def test_defaults(self):
        battery = make()
        assert battery.soc == 0.0
        assert battery.stored_j == 0.0

    def test_initial_soc(self):
        assert make(initial_soc=0.5).stored_j == 500.0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            make(capacity_j=0.0)

    @pytest.mark.parametrize("eff", [0.0, 1.1])
    def test_invalid_efficiency_rejected(self, eff):
        with pytest.raises(ConfigurationError):
            make(efficiency=eff)

    def test_invalid_reserve_rejected(self):
        with pytest.raises(ConfigurationError):
            make(reserve_fraction=1.0)

    def test_initial_soc_below_reserve_rejected(self):
        with pytest.raises(ConfigurationError):
            make(reserve_fraction=0.3, initial_soc=0.1)


class TestCharging:
    def test_efficiency_applies_on_charge(self):
        battery = make(efficiency=0.8)
        drawn = battery.charge(50.0, 2.0)
        assert drawn == 50.0
        assert battery.stored_j == pytest.approx(0.8 * 50.0 * 2.0)

    def test_charge_clips_at_capacity(self):
        battery = make(initial_soc=0.99)
        drawn = battery.charge(50.0, 10.0)
        assert battery.stored_j == pytest.approx(1000.0)
        assert drawn < 50.0  # the wall only supplied what fit

    def test_full_battery_draws_nothing(self):
        battery = make(initial_soc=1.0)
        assert battery.charge(50.0, 1.0) == 0.0

    def test_charge_above_limit_rejected(self):
        with pytest.raises(BatteryError):
            make().charge(51.0, 1.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(BatteryError):
            make().charge(-1.0, 1.0)

    def test_admissible_charge_clamps(self):
        assert make().admissible_charge_w(100.0) == 50.0
        assert make().admissible_charge_w(20.0) == 20.0


class TestDischarging:
    def test_discharge_delivers_requested(self):
        battery = make(initial_soc=0.5)
        delivered = battery.discharge(40.0, 2.0)
        assert delivered == 40.0
        assert battery.stored_j == pytest.approx(500.0 - 80.0)

    def test_no_efficiency_loss_on_discharge(self):
        """Round-trip loss is booked once, at charge time."""
        battery = make(initial_soc=0.5)
        battery.discharge(10.0, 1.0)
        assert battery.stored_j == pytest.approx(490.0)

    def test_discharge_clips_at_empty(self):
        battery = make(initial_soc=0.01)  # 10 J
        delivered = battery.discharge(60.0, 1.0)
        assert delivered == pytest.approx(10.0)
        assert battery.stored_j == pytest.approx(0.0)

    def test_discharge_above_limit_rejected(self):
        with pytest.raises(BatteryError):
            make(initial_soc=1.0).discharge(61.0, 1.0)

    def test_reserve_floor_protected(self):
        battery = make(reserve_fraction=0.2, initial_soc=0.3)
        delivered = battery.discharge(60.0, 10.0)
        assert delivered * 10.0 == pytest.approx(100.0)  # only above reserve
        assert battery.soc == pytest.approx(0.2)

    def test_admissible_discharge_energy_limited(self):
        battery = make(initial_soc=0.05)  # 50 J usable
        assert battery.admissible_discharge_w(60.0, 10.0) == pytest.approx(5.0)


class TestRoundTrip:
    def test_round_trip_efficiency(self):
        battery = make(efficiency=0.7)
        battery.charge(50.0, 10.0)  # banks 350 J
        total = 0.0
        while battery.usable_j > 1e-9:
            total += battery.discharge(battery.admissible_discharge_w(60.0, 1.0), 1.0)
        assert total == pytest.approx(0.7 * 500.0, rel=1e-6)


class TestStats:
    def test_equivalent_cycles(self):
        battery = make(efficiency=1.0)
        battery.charge(50.0, 20.0)  # full
        battery.discharge(50.0, 20.0)  # empty: one full cycle
        assert battery.stats.equivalent_cycles == pytest.approx(1.0)

    def test_totals_tracked(self):
        battery = make(efficiency=0.8)
        battery.charge(50.0, 1.0)
        stats = battery.stats
        assert stats.total_charged_j == pytest.approx(50.0)
        assert stats.total_stored_j == pytest.approx(40.0)

    def test_headroom(self):
        battery = make(initial_soc=0.25)
        assert battery.headroom_j == pytest.approx(750.0)

    def test_invalid_dt_rejected(self):
        with pytest.raises(BatteryError):
            make().charge(10.0, 0.0)
        with pytest.raises(BatteryError):
            make(initial_soc=1.0).discharge(10.0, -1.0)
