"""ESD failure injection: undersized, inefficient, or power-limited
batteries must degrade the scheme gracefully, never break the cap."""

import pytest

from repro.core.coordinator import CoordinationMode
from repro.core.mediator import PowerMediator
from repro.core.policies import make_policy
from repro.esd.battery import LeadAcidBattery
from repro.server.server import SimulatedServer
from repro.workloads.mixes import get_mix


def run_esd(config, battery, cap=80.0, seconds=40.0):
    server = SimulatedServer(config)
    mediator = PowerMediator(
        server,
        make_policy("app+res+esd-aware"),
        cap,
        battery=battery,
        use_oracle_estimates=True,
    )
    for profile in get_mix(10).profiles():
        mediator.add_application(
            profile.with_total_work(float("inf")), skip_overhead=True
        )
    mediator.run_for(seconds)
    return mediator


class TestBatteryFailureModes:
    def test_tiny_battery_extends_off_phase(self, config):
        """A battery that holds less than one ON phase keeps banking; the
        cap holds and *some* work eventually happens once it fills."""
        tiny = LeadAcidBattery(
            capacity_j=60.0, efficiency=0.7, max_charge_w=50.0, max_discharge_w=60.0
        )
        mediator = run_esd(config, tiny, seconds=60.0)
        for record in mediator.timeline:
            assert record.wall_w <= 80.0 + 1e-6

    def test_weak_discharge_shrinks_on_knobs(self, config):
        """A 25 W discharge limit cannot cover the full-knob overshoot
        (~40 W); the allocator must pick cheaper ON knobs instead of
        violating the cap."""
        weak = LeadAcidBattery(
            capacity_j=300_000.0,
            efficiency=0.7,
            max_charge_w=50.0,
            max_discharge_w=25.0,
        )
        mediator = run_esd(config, weak)
        plan = mediator.coordinator.plan
        assert plan.mode is CoordinationMode.ESD
        assert plan.duty_cycle.discharge_w <= 25.0 + 1e-9
        for record in mediator.timeline:
            assert record.wall_w <= 80.0 + 1e-6
        assert mediator.server_objective(since_s=15.0) > 0.05

    def test_awful_efficiency_still_sustainable(self, config):
        lossy = LeadAcidBattery(
            capacity_j=300_000.0,
            efficiency=0.3,
            max_charge_w=50.0,
            max_discharge_w=60.0,
        )
        mediator = run_esd(config, lossy, seconds=60.0)
        cycle = mediator.coordinator.plan.duty_cycle
        # Eq. 5 responds by lengthening the OFF phase, not by overdrawing.
        assert cycle.off_s > cycle.on_s * 2
        for record in mediator.timeline:
            assert record.wall_w <= 80.0 + 1e-6

    def test_efficiency_orders_throughput(self, config):
        results = {}
        for eta in (0.4, 0.9):
            battery = LeadAcidBattery(
                capacity_j=300_000.0,
                efficiency=eta,
                max_charge_w=50.0,
                max_discharge_w=60.0,
            )
            mediator = run_esd(config, battery, seconds=60.0)
            results[eta] = mediator.server_objective(since_s=20.0)
        assert results[0.9] > results[0.4]

    def test_reserve_floor_respected_by_scheme(self, config):
        reserved = LeadAcidBattery(
            capacity_j=5_000.0,
            efficiency=0.7,
            max_charge_w=50.0,
            max_discharge_w=60.0,
            reserve_fraction=0.5,
            initial_soc=0.5,
        )
        mediator = run_esd(config, reserved, seconds=40.0)
        assert min(r.battery_soc for r in mediator.timeline) >= 0.5 - 1e-9
