"""Property tests: snapshot -> restore -> run equals the uninterrupted run.

Hypothesis drives the cut point (and seed) through the whole space instead
of a handful of hand-picked ticks; any divergence is a codec that forgot a
piece of state, which these properties catch regardless of where it hides.
"""

from __future__ import annotations

import json
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import mix_recipe, run_script
from repro.persistence import MediatorKilled, Supervisor
from repro.persistence.supervisor import Advance
from repro.server.config import ServerConfig
from repro.workloads.catalog import get_application

_TOTAL_TICKS = 30

_SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _recipe_and_script(seed: int, policy: str = "app+res-aware"):
    return mix_recipe(
        [get_application("stream"), get_application("kmeans")],
        policy,
        100.0,
        config=ServerConfig(),
        duration_s=2.0,
        warmup_s=1.0,
        use_oracle_estimates=False,
        dt_s=0.1,
        seed=seed,
        faults=None,
        resilience=None,
    )


@settings(**_SETTINGS)
@given(cut=st.integers(min_value=1, max_value=_TOTAL_TICKS - 1), seed=st.integers(0, 3))
def test_snapshot_restore_run_equals_uninterrupted(cut: int, seed: int) -> None:
    """state_dict -> JSON -> load_state_dict at ANY tick preserves the run."""
    recipe, script = _recipe_and_script(seed)
    admits = [c for c in script if not isinstance(c, Advance)]

    reference = run_script(recipe, admits)
    for _ in range(_TOTAL_TICKS):
        reference.step()

    interrupted = run_script(recipe, admits)
    for _ in range(cut):
        interrupted.step()
    snapshot = json.loads(json.dumps(interrupted.state_dict()))
    resumed = recipe.build()
    resumed.load_state_dict(snapshot)
    for _ in range(_TOTAL_TICKS - cut):
        resumed.step()

    assert resumed.timeline == reference.timeline
    assert resumed.server.now_s == reference.server.now_s


@settings(**_SETTINGS)
@given(kill=st.integers(min_value=1, max_value=_TOTAL_TICKS - 1))
def test_supervised_kill_anywhere_is_bit_identical(kill: int) -> None:
    """A kill at ANY tick recovers to the uninterrupted timeline."""
    recipe, script = _recipe_and_script(0)
    baseline = run_script(recipe, script)

    fired: set[int] = set()

    def hook(mediator, tick):
        if tick == kill and tick not in fired:
            fired.add(tick)
            raise MediatorKilled(f"property kill at {tick}")

    with tempfile.TemporaryDirectory(prefix="repro-prop-") as workdir:
        supervisor = Supervisor(
            recipe, script, workdir, checkpoint_every_ticks=10, tick_hook=hook
        )
        mediator = supervisor.run()
    assert supervisor.stats.restarts == 1
    assert mediator.timeline == baseline.timeline
