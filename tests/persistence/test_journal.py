"""Write-ahead journal: durability points, torn-tail rule, validation."""

from __future__ import annotations

import json

import pytest

from repro.errors import JournalError
from repro.persistence import (
    JOURNAL_VERSION,
    JournalWriter,
    read_journal,
    repair_torn_tail,
)


def _write_basic(path, *, fsync_every_ticks=25):
    writer = JournalWriter(path, fsync_every_ticks=fsync_every_ticks)
    writer.append_meta(dt_s=0.1)
    writer.append_command(0, {"kind": "set_cap", "p_cap_w": 90.0})
    for tick in range(1, 4):
        writer.append_tick(tick)
    writer.append_checkpoint(tick=3, path="ckpt-00000003.json", command=1, end_s=None)
    return writer


def test_round_trip(tmp_path):
    path = tmp_path / "journal.jsonl"
    writer = _write_basic(path)
    writer.close()
    records = read_journal(path)
    assert [r["op"] for r in records] == [
        "meta", "command", "tick", "tick", "tick", "checkpoint",
    ]
    seqs = [r["seq"] for r in records]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    assert records[1]["command"]["p_cap_w"] == 90.0
    assert records[-1]["path"] == "ckpt-00000003.json"


def test_tick_fsync_is_batched(tmp_path):
    path = tmp_path / "journal.jsonl"
    writer = JournalWriter(path, fsync_every_ticks=3)
    writer.append_meta(dt_s=0.1)
    after_meta = writer.durable_offset
    writer.append_tick(1)
    writer.append_tick(2)
    assert writer.durable_offset == after_meta  # not yet synced
    writer.append_tick(3)
    assert writer.durable_offset > after_meta  # batch boundary synced
    writer.close()


def test_commands_fsync_immediately(tmp_path):
    path = tmp_path / "journal.jsonl"
    writer = JournalWriter(path, fsync_every_ticks=1000)
    writer.append_meta(dt_s=0.1)
    before = writer.durable_offset
    writer.append_command(0, {"kind": "set_cap", "p_cap_w": 80.0})
    assert writer.durable_offset > before
    writer.close()


def test_abort_does_not_advance_durability(tmp_path):
    path = tmp_path / "journal.jsonl"
    writer = JournalWriter(path, fsync_every_ticks=1000)
    writer.append_meta(dt_s=0.1)
    durable = writer.durable_offset
    writer.append_tick(1)  # buffered, not synced
    writer.abort()
    assert writer.durable_offset == durable
    assert path.stat().st_size > durable  # the at-risk tail did reach the file


def test_torn_final_line_is_dropped(tmp_path):
    path = tmp_path / "journal.jsonl"
    _write_basic(path).close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"seq": 99, "op": "ti')  # torn mid-write, no newline
    records = read_journal(path)
    assert [r["op"] for r in records][-1] == "checkpoint"


def test_interior_malformed_record_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    lines = [
        json.dumps({"seq": 0, "op": "meta", "version": JOURNAL_VERSION, "dt_s": 0.1}),
        '{"seq": 1, "op": "ti',  # damaged, but NOT the final line
        json.dumps({"seq": 2, "op": "tick", "tick": 1}),
    ]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="interior"):
        read_journal(path)


def test_sequence_regression_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    lines = [
        json.dumps({"seq": 5, "op": "tick", "tick": 1}),
        json.dumps({"seq": 5, "op": "tick", "tick": 2}),
    ]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="sequence"):
        read_journal(path)


def test_unknown_op_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text(json.dumps({"seq": 0, "op": "mystery"}) + "\n")
    with pytest.raises(JournalError, match="op"):
        read_journal(path)


def test_version_mismatch_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text(
        json.dumps({"seq": 0, "op": "meta", "version": 99, "dt_s": 0.1}) + "\n"
    )
    with pytest.raises(JournalError, match="version 99"):
        read_journal(path)


def test_repair_torn_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    _write_basic(path).close()
    clean_size = path.stat().st_size
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"seq": 99, "op"')
    assert repair_torn_tail(path) is True
    assert path.stat().st_size == clean_size
    assert repair_torn_tail(path) is False  # idempotent on a clean file
    # And the repaired journal is appendable without corrupting the interior.
    writer = JournalWriter(path, start_seq=read_journal(path)[-1]["seq"] + 1)
    writer.append_tick(4)
    writer.close()
    assert read_journal(path)[-1]["tick"] == 4


def test_start_seq_continues_ordering(tmp_path):
    path = tmp_path / "journal.jsonl"
    writer = JournalWriter(path)
    writer.append_meta(dt_s=0.1)
    writer.append_tick(1)
    writer.close()
    resumed = JournalWriter(path, start_seq=2)
    resumed.append_tick(2)
    resumed.close()
    assert [r["seq"] for r in read_journal(path)] == [0, 1, 2]


def test_bad_fsync_cadence_rejected(tmp_path):
    with pytest.raises(JournalError, match="fsync_every_ticks"):
        JournalWriter(tmp_path / "journal.jsonl", fsync_every_ticks=0)


def test_closed_writer_refuses_appends(tmp_path):
    writer = JournalWriter(tmp_path / "journal.jsonl")
    writer.close()
    with pytest.raises(JournalError, match="closed"):
        writer.append_tick(1)
