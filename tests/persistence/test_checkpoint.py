"""Checkpoints: bit-identical restore, atomicity, one-line failure modes."""

from __future__ import annotations

import json

import pytest

from repro.chaos import mix_recipe
from repro.errors import CheckpointError
from repro.persistence import (
    RunRecipe,
    checkpoint_filename,
    latest_checkpoint,
    read_checkpoint,
    restore_mediator,
    write_checkpoint,
)
from repro.server.config import ServerConfig


def _recipe_and_script(stream, kmeans, *, policy="app+res-aware", seed=0, faults=None):
    return mix_recipe(
        [stream, kmeans],
        policy,
        100.0,
        config=ServerConfig(),
        duration_s=4.0,
        warmup_s=2.0,
        use_oracle_estimates=False,
        dt_s=0.1,
        seed=seed,
        faults=faults,
        resilience=None,
    )


def _started_mediator(stream, kmeans, ticks=15, **kwargs):
    from repro.chaos import run_script
    from repro.persistence.supervisor import Advance

    recipe, script = _recipe_and_script(stream, kmeans, **kwargs)
    admits = [c for c in script if not isinstance(c, Advance)]
    mediator = run_script(recipe, admits)
    for _ in range(ticks):
        mediator.step()
    return recipe, mediator


def test_restore_is_bit_identical(tmp_path, stream, kmeans):
    recipe, mediator = _started_mediator(stream, kmeans)
    path = write_checkpoint(tmp_path, mediator, recipe)
    restored = restore_mediator(read_checkpoint(path))
    for _ in range(25):
        mediator.step()
        restored.step()
    assert restored.timeline == mediator.timeline
    assert restored.server.now_s == mediator.server.now_s
    for name in mediator.managed_apps():
        assert restored.normalized_throughput(name) == mediator.normalized_throughput(name)


def test_restore_is_bit_identical_with_esd(tmp_path, stream, kmeans):
    recipe, mediator = _started_mediator(
        stream, kmeans, policy="app+res+esd-aware", ticks=30
    )
    path = write_checkpoint(tmp_path, mediator, recipe)
    restored = restore_mediator(read_checkpoint(path))
    for _ in range(25):
        mediator.step()
        restored.step()
    assert restored.timeline == mediator.timeline
    assert restored.battery.stored_j == mediator.battery.stored_j
    assert restored.battery.stats == mediator.battery.stats


def test_checkpoint_document_is_pure_json(tmp_path, stream, kmeans):
    recipe, mediator = _started_mediator(stream, kmeans)
    path = write_checkpoint(tmp_path, mediator, recipe)
    # A full JSON round trip (as any reader would perform) must lose nothing.
    doc = json.loads(path.read_text())
    rebuilt = restore_mediator(read_checkpoint(path))
    direct = restore_mediator(doc)
    rebuilt.step()
    direct.step()
    assert rebuilt.timeline[-1] == direct.timeline[-1]


def test_filenames_sort_chronologically(tmp_path, stream, kmeans):
    recipe, mediator = _started_mediator(stream, kmeans, ticks=5)
    first = write_checkpoint(tmp_path, mediator, recipe)
    for _ in range(10):
        mediator.step()
    second = write_checkpoint(tmp_path, mediator, recipe)
    assert first.name == checkpoint_filename(5)
    assert second.name == checkpoint_filename(15)
    assert latest_checkpoint(tmp_path) == second


def test_latest_checkpoint_empty_dir(tmp_path):
    assert latest_checkpoint(tmp_path) is None


@pytest.mark.parametrize(
    "payload, fragment",
    [
        ("not json at all", "not valid JSON"),
        (json.dumps({"version": 1}), "checkpoint.schema"),
        (json.dumps({"schema": "other", "version": 1}), "not a mediator checkpoint"),
        (
            json.dumps({"schema": "repro-checkpoint", "version": 42}),
            "version 42 is not supported",
        ),
        (
            json.dumps({"schema": "repro-checkpoint", "version": 1}),
            "checkpoint.created_tick",
        ),
    ],
)
def test_read_failures_are_one_line(tmp_path, payload, fragment):
    path = tmp_path / "ckpt.json"
    path.write_text(payload)
    with pytest.raises(CheckpointError) as excinfo:
        read_checkpoint(path)
    message = str(excinfo.value)
    assert fragment in message
    assert "\n" not in message  # CLI prints it verbatim on one line


def test_missing_file_is_one_line(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read checkpoint"):
        read_checkpoint(tmp_path / "absent.json")


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda r: r.update(policy="galactic"), "recipe.policy"),
        (lambda r: r.pop("policy"), "recipe.policy: required"),
        (lambda r: r["config"].update(warp_factor=9), "recipe.config.warp_factor"),
        (lambda r: r.update(p_cap_w="plenty"), "recipe.p_cap_w"),
        (lambda r: r.update(sampler={"type": "stratified"}), "recipe.sampler.fraction"),
        (lambda r: r.update(use_battery="yes"), "recipe.use_battery"),
        (lambda r: r.update(faults={"seed": 0, "faults": [{"kind": "gremlin"}]}), "recipe.faults"),
        (lambda r: r.update(resilience={"bogus_knob": 1}), "recipe.resilience.bogus_knob"),
    ],
)
def test_recipe_validation_names_offending_field(stream, kmeans, mutate, fragment):
    recipe, _ = _recipe_and_script(stream, kmeans)
    raw = recipe.to_dict()
    mutate(raw)
    with pytest.raises(CheckpointError) as excinfo:
        RunRecipe.from_dict(raw)
    assert fragment in str(excinfo.value)
    assert "\n" not in str(excinfo.value)


def test_recipe_round_trip(stream, kmeans):
    recipe, _ = _recipe_and_script(stream, kmeans, seed=7)
    assert RunRecipe.from_dict(recipe.to_dict()) == recipe


def test_state_not_matching_recipe_is_one_line(tmp_path, stream, kmeans):
    recipe, mediator = _started_mediator(stream, kmeans)
    path = write_checkpoint(tmp_path, mediator, recipe)
    doc = read_checkpoint(path)
    del doc["state"]["coordinator"]
    with pytest.raises(CheckpointError, match="checkpoint.state"):
        restore_mediator(doc)


def test_no_tmp_file_left_behind(tmp_path, stream, kmeans):
    recipe, mediator = _started_mediator(stream, kmeans)
    write_checkpoint(tmp_path, mediator, recipe)
    assert not list(tmp_path.glob("*.tmp"))
