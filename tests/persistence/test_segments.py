"""Segment rotation, replay-cursor boundary conditions, and pruning.

The boundary cases ISSUE 6 calls out get explicit coverage: a replay
cursor landing exactly on a torn tail, exactly on a segment-rotation
boundary, and one past the last fsync point.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import JournalError
from repro.persistence import (
    SegmentedJournalWriter,
    list_segments,
    prune_segments,
    read_segmented,
    repair_segmented_tail,
    replay_records_from,
    segment_filename,
    segment_start_seq,
    segments_size_bytes,
)


def _fill(directory, *, records=10, per_segment=4, fsync_every_ticks=25):
    """meta + (records-1) ticks, rotated every ``per_segment`` records."""
    writer = SegmentedJournalWriter(
        directory,
        records_per_segment=per_segment,
        fsync_every_ticks=fsync_every_ticks,
    )
    writer.append_meta(dt_s=0.1)
    for tick in range(records - 1):
        writer.append_tick(tick)
    return writer


def test_segment_names_round_trip():
    assert segment_filename(0) == "journal-0000000000.jsonl"
    assert segment_start_seq(segment_filename(12345)) == 12345
    with pytest.raises(JournalError):
        segment_filename(-1)
    with pytest.raises(JournalError):
        segment_start_seq("notes.txt")


def test_rotation_preserves_the_record_stream(tmp_path):
    writer = _fill(tmp_path, records=10, per_segment=4)
    writer.close()
    segments = list_segments(tmp_path)
    assert [s.name for s in segments] == [
        segment_filename(0),
        segment_filename(4),
        segment_filename(8),
    ]
    records = read_segmented(tmp_path)
    assert [r["seq"] for r in records] == list(range(10))
    assert records[0]["op"] == "meta"
    assert segments_size_bytes(tmp_path) == sum(s.stat().st_size for s in segments)


def test_interior_segments_are_durable_in_full(tmp_path):
    writer = _fill(tmp_path, records=9, per_segment=4, fsync_every_ticks=1000)
    # Crash-close: even with fsync batching never reached, rotation synced
    # the two interior segments whole; only the live one has an at-risk tail.
    writer.abort()
    interior = list_segments(tmp_path)[:-1]
    assert len(interior) == 2
    for path in interior:
        for line in path.read_text().splitlines():
            json.loads(line)  # every interior line is whole
    records = read_segmented(tmp_path)
    assert [r["seq"] for r in records] == list(range(9))


def test_interior_damage_is_a_discontinuity(tmp_path):
    writer = _fill(tmp_path, records=10, per_segment=4)
    writer.close()
    first = list_segments(tmp_path)[0]
    lines = first.read_text().splitlines()
    first.write_text("\n".join(lines[:-1]) + "\n")  # lose a durable record
    with pytest.raises(JournalError, match="durable records are missing"):
        read_segmented(tmp_path)


def test_renamed_segment_is_detected(tmp_path):
    writer = _fill(tmp_path, records=10, per_segment=4)
    writer.close()
    first = list_segments(tmp_path)[0]
    first.rename(first.parent / segment_filename(1))
    with pytest.raises(JournalError, match="does not match"):
        read_segmented(tmp_path)


def test_cursor_exactly_on_rotation_boundary(tmp_path):
    """A cursor equal to a segment's start_seq reads that whole segment and
    nothing before it - the filename alone routes the read."""
    writer = _fill(tmp_path, records=12, per_segment=4)
    writer.close()
    tail = replay_records_from(tmp_path, 8)
    assert [r["seq"] for r in tail] == [8, 9, 10, 11]
    # One before the boundary must include the previous segment's last record.
    tail = replay_records_from(tmp_path, 7)
    assert [r["seq"] for r in tail] == [7, 8, 9, 10, 11]


def test_cursor_exactly_on_torn_tail(tmp_path):
    """A cursor pointing at the record the tear destroyed replays nothing -
    and does not error: the journal legitimately ends there now."""
    writer = _fill(tmp_path, records=10, per_segment=100, fsync_every_ticks=1)
    writer.close()
    segment = list_segments(tmp_path)[-1]
    with open(segment, "ab") as handle:
        handle.write(b'{"seq": 10, "op": "tick", "ti')  # torn mid-record
    assert repair_segmented_tail(tmp_path) is True
    assert replay_records_from(tmp_path, 10) == []
    assert [r["seq"] for r in replay_records_from(tmp_path, 9)] == [9]


def test_cursor_one_past_last_fsync_point(tmp_path):
    """After a crash that loses the whole un-fsynced tail, a cursor one past
    the last durable record replays exactly nothing."""
    writer = _fill(tmp_path, records=8, per_segment=100, fsync_every_ticks=3)
    durable = writer.durable_offset
    segment = writer.current_segment
    writer.abort()
    # Simulate the OS losing everything past the last fsync point.
    import os

    os.truncate(segment, durable)
    assert repair_segmented_tail(tmp_path) is False  # the cut is record-aligned
    records = read_segmented(tmp_path)
    last_durable_seq = records[-1]["seq"]
    assert last_durable_seq < 7  # the tail really was lost
    assert replay_records_from(tmp_path, last_durable_seq + 1) == []


def test_replay_refuses_pruned_cursor(tmp_path):
    writer = _fill(tmp_path, records=12, per_segment=4)
    writer.close()
    assert prune_segments(tmp_path, 8) == 2
    with pytest.raises(JournalError, match="pruned"):
        replay_records_from(tmp_path, 3)
    assert [r["seq"] for r in replay_records_from(tmp_path, 8)] == [8, 9, 10, 11]


def test_prune_keeps_the_cursor_segment_and_the_last(tmp_path):
    writer = _fill(tmp_path, records=12, per_segment=4)
    writer.close()
    # Cursor mid-segment: its segment (start 4) must survive.
    assert prune_segments(tmp_path, 5) == 1
    assert [s.name for s in list_segments(tmp_path)] == [
        segment_filename(4),
        segment_filename(8),
    ]
    # The live (last) segment is never pruned, whatever the cursor says.
    assert prune_segments(tmp_path, 10 ** 6) == 1
    assert [s.name for s in list_segments(tmp_path)] == [segment_filename(8)]


def test_writer_resumes_at_a_recovery_seq(tmp_path):
    writer = _fill(tmp_path, records=6, per_segment=100)
    writer.close()
    resumed = SegmentedJournalWriter(tmp_path, records_per_segment=100, start_seq=6)
    resumed.append_tick(99)
    resumed.close()
    records = read_segmented(tmp_path)
    assert [r["seq"] for r in records] == list(range(7))
    assert records[-1] == {"seq": 6, "op": "tick", "tick": 99}


def test_read_tolerates_empty_last_segment(tmp_path):
    writer = _fill(tmp_path, records=8, per_segment=4)
    writer.close()
    (tmp_path / segment_filename(8)).touch()  # rotated, died before appending
    assert [r["seq"] for r in read_segmented(tmp_path)] == list(range(8))


def test_record_stream_matches_unsegmented_journal(tmp_path):
    """Segmentation changes file boundaries, not the stream: the same
    appends through one JournalWriter produce byte-identical records."""
    from repro.persistence import JournalWriter, read_journal

    seg_dir = tmp_path / "seg"
    writer = SegmentedJournalWriter(seg_dir, records_per_segment=3)
    single = JournalWriter(tmp_path / "one.jsonl")
    for target in (writer, single):
        target.append_meta(dt_s=0.1)
        target.append_command(0, {"kind": "set-cap", "p_cap_w": 90.0})
        for tick in range(5):
            target.append_tick(tick)
        target.append_checkpoint(tick=5, path="svc-00000005.json", command=1, end_s=None)
        target.close()
    assert read_segmented(seg_dir) == read_journal(tmp_path / "one.jsonl")
    combined = "".join(p.read_text() for p in list_segments(seg_dir))
    assert combined == (tmp_path / "one.jsonl").read_text()
