"""Supervised warm restart: determinism, hang detection, recovery costs."""

from __future__ import annotations

import time

import pytest

from repro.analysis.metrics import summarize_recovery
from repro.chaos import mix_recipe, run_script
from repro.core.mediator import PowerMediator
from repro.errors import CheckpointError
from repro.learning.sampling import Sampler
from repro.persistence import (
    Advance,
    MediatorKilled,
    SetCap,
    Supervisor,
    read_journal,
)
from repro.server.config import ServerConfig


def _recipe_and_script(stream, kmeans, *, policy="app+res-aware"):
    return mix_recipe(
        [stream, kmeans],
        policy,
        100.0,
        config=ServerConfig(),
        duration_s=4.0,
        warmup_s=2.0,
        use_oracle_estimates=False,
        dt_s=0.1,
        seed=0,
        faults=None,
        resilience=None,
    )


def _kill_once_at(ticks):
    fired = set()

    def hook(mediator: PowerMediator, tick: int) -> None:
        if tick in ticks and tick not in fired:
            fired.add(tick)
            raise MediatorKilled(f"test kill at tick {tick}")

    return hook


# The acceptance criterion: determinism asserted at >= 3 distinct kill
# points, covering just-after-checkpoint, mid-cadence, and late-run.
@pytest.mark.parametrize("kill_tick", [3, 27, 51])
def test_warm_restart_is_bit_identical(tmp_path, stream, kmeans, kill_tick):
    recipe, script = _recipe_and_script(stream, kmeans)
    baseline = run_script(recipe, script)
    supervisor = Supervisor(
        recipe,
        script,
        tmp_path,
        checkpoint_every_ticks=20,
        tick_hook=_kill_once_at({kill_tick}),
    )
    mediator = supervisor.run()
    assert supervisor.stats.restarts == 1
    assert mediator.timeline == baseline.timeline  # bit-identical, tick for tick
    for name in mediator.managed_apps():
        assert mediator.normalized_throughput(name, since_s=2.0) == (
            baseline.normalized_throughput(name, since_s=2.0)
        )


def test_repeated_kills_make_progress(tmp_path, stream, kmeans):
    recipe, script = _recipe_and_script(stream, kmeans)
    baseline = run_script(recipe, script)
    supervisor = Supervisor(
        recipe,
        script,
        tmp_path,
        checkpoint_every_ticks=15,
        tick_hook=_kill_once_at({5, 6, 7, 30, 31, 55}),
    )
    mediator = supervisor.run()
    assert supervisor.stats.restarts == 6
    assert mediator.timeline == baseline.timeline


def test_kill_during_later_command(tmp_path, stream, kmeans):
    recipe, script = _recipe_and_script(stream, kmeans)
    # Split the advance and drop the cap mid-run; kill right after the E1.
    script = script[:-1] + [Advance(3.0), SetCap(80.0), Advance(3.0)]
    baseline = run_script(recipe, script)
    supervisor = Supervisor(
        recipe,
        script,
        tmp_path,
        checkpoint_every_ticks=25,
        tick_hook=_kill_once_at({31, 44}),
    )
    mediator = supervisor.run()
    assert mediator.p_cap_w == 80.0
    assert mediator.timeline == baseline.timeline


def test_torn_journal_still_recovers(tmp_path, stream, kmeans):
    recipe, script = _recipe_and_script(stream, kmeans)
    baseline = run_script(recipe, script)
    supervisor = Supervisor(
        recipe,
        script,
        tmp_path,
        checkpoint_every_ticks=20,
        fsync_every_ticks=10,
        tick_hook=_kill_once_at({13, 37}),
        tear_journal_bytes_on_crash=300,
    )
    mediator = supervisor.run()
    assert mediator.timeline == baseline.timeline
    # The surviving journal must be readable end to end (no interior damage).
    read_journal(supervisor.journal_path)


def test_hang_detection(tmp_path, stream, kmeans, monkeypatch):
    recipe, script = _recipe_and_script(stream, kmeans)
    baseline = run_script(recipe, script)
    original_step = PowerMediator.step
    hung = []

    def slow_step(self):
        if self.tick_count == 20 and not hung:
            hung.append(True)
            time.sleep(0.05)
        original_step(self)

    monkeypatch.setattr(PowerMediator, "step", slow_step)
    supervisor = Supervisor(
        recipe,
        script,
        tmp_path,
        checkpoint_every_ticks=20,
        tick_deadline_s=0.04,
    )
    mediator = supervisor.run()
    assert supervisor.stats.hangs_detected == 1
    assert supervisor.stats.restarts == 1
    assert mediator.timeline == baseline.timeline


def test_max_restarts_guards_crash_loops(tmp_path, stream, kmeans):
    recipe, script = _recipe_and_script(stream, kmeans)

    def always_dies(mediator, tick):
        if tick >= 2:
            raise MediatorKilled("deterministic bug")

    supervisor = Supervisor(
        recipe, script, tmp_path, tick_hook=always_dies, max_restarts=3
    )
    with pytest.raises(CheckpointError, match="gave up after 3 restarts"):
        supervisor.run()


def test_safe_hold_applies_guard_band(tmp_path, stream, kmeans):
    recipe, script = _recipe_and_script(stream, kmeans)
    baseline = run_script(recipe, script)
    observed = []

    def spy(mediator: PowerMediator, tick: int) -> None:
        observed.append((tick, mediator.safe_hold_remaining))
        if tick == 30 and not any(h for _, h in observed):
            raise MediatorKilled("kill for safe-hold test")

    supervisor = Supervisor(
        recipe, script, tmp_path, checkpoint_every_ticks=20, tick_hook=spy,
        safe_hold_ticks=5,
    )
    mediator = supervisor.run()
    assert supervisor.stats.restarts == 1
    # The five post-restart ticks ran in the guard-banded posture.
    held = [h for _, h in observed if h > 0]
    assert held and max(held) == 5
    # Run completes to the same length even though the posture differed.
    assert mediator.tick_count == baseline.tick_count


def test_recovery_accounting(tmp_path, stream, kmeans):
    recipe, script = _recipe_and_script(stream, kmeans)
    supervisor = Supervisor(
        recipe,
        script,
        tmp_path,
        checkpoint_every_ticks=20,
        tick_hook=_kill_once_at({35}),
    )
    supervisor.run()
    stats = supervisor.stats
    assert stats.restarts == 1
    assert stats.hangs_detected == 0
    # Killed before tick 36, last checkpoint at 20: ticks 21-35 replayed.
    assert stats.downtime_ticks == 15
    assert stats.journal_records_replayed >= stats.downtime_ticks
    assert stats.checkpoints_written >= 4  # t0, 20, post-recovery, 40, final
    assert stats.cold_relearns_avoided == 2  # both managed apps kept their state
    per_app = Sampler.budget_from_fraction(recipe.config, recipe.sampler_fraction)
    assert stats.samples_restored == 2 * per_app

    summary = summarize_recovery(stats, dt_s=0.1)
    assert summary.downtime_s == pytest.approx(1.5)
    assert summary.relearn_cost_avoided_s == pytest.approx(2 * 0.8)


def test_unsupervised_stats_stay_zero(tmp_path, stream, kmeans):
    recipe, script = _recipe_and_script(stream, kmeans)
    supervisor = Supervisor(recipe, script, tmp_path, checkpoint_every_ticks=30)
    mediator = supervisor.run()
    assert supervisor.stats.restarts == 0
    assert supervisor.stats.downtime_ticks == 0
    assert mediator.timeline == run_script(recipe, script).timeline
