"""Interior-node mechanics: deferred shrinks and state round-trips."""

import pytest

from repro.cluster.controlplane import CapAck, ControlPlaneConfig, SetCapCmd
from repro.hierarchy.node import SubtreeAgent
from repro.netsim import CONTROLLER, NetConfig, SimNetwork
from repro.observability.metrics import MetricsRegistry


def make_agent(metrics=None):
    return SubtreeAgent(
        0,
        safe_cap_w=100.0,
        rated_cap_w=float("inf"),
        config=ControlPlaneConfig(),
        metrics=metrics if metrics is not None else MetricsRegistry(),
    )


def send(net, step, epoch, extra_w, expiry=1000):
    net.send(
        CONTROLLER,
        0,
        SetCapCmd(node=0, epoch=epoch, extra_w=extra_w, lease_expiry_step=expiry),
        step,
    )


class TestDeferredShrink:
    def test_grow_applies_immediately(self):
        agent, net = make_agent(), SimNetwork(NetConfig(), 1)
        send(net, 0, epoch=1, extra_w=40.0)
        agent.step(1, net)
        assert agent.live_extra_w(1) == 40.0
        assert agent.deferred_epoch is None

    def test_shrink_is_deferred_until_downstream_fits(self):
        metrics = MetricsRegistry()
        agent, net = make_agent(metrics), SimNetwork(NetConfig(), 1)
        send(net, 0, epoch=1, extra_w=40.0)
        agent.step(1, net)
        fits = {"value": False}
        agent.downstream_fits = lambda extra_w, expiry_step, step: fits["value"]
        send(net, 1, epoch=2, extra_w=10.0)
        agent.step(2, net)
        # Old grant still enforced, shrink parked, issuance already shrunk.
        assert agent.live_extra_w(2) == 40.0
        assert agent.deferred_epoch == 2
        assert agent.issuance_extra_w(2) == 10.0
        assert metrics.counter("hierarchy.deferred_shrinks").value == 1
        # No ack went back for the deferred shrink.
        acks = [m for _, m in net.deliver(CONTROLLER, 10) if isinstance(m, CapAck)]
        assert [a.epoch for a in acks] == [1]
        # Downstream drains: the next step adopts and acks the shrink.
        fits["value"] = True
        agent.step(3, net)
        assert agent.live_extra_w(3) == 10.0 and agent.epoch == 2
        acks = [m for _, m in net.deliver(CONTROLLER, 10) if isinstance(m, CapAck)]
        assert [a.epoch for a in acks] == [2]

    def test_grow_with_earlier_expiry_is_deferred(self):
        # A bigger grant whose lease ends EARLIER is still a shrink: the
        # horizon moves backward, and downstream grants clamped to the old
        # horizon would outlive the new lease (the bonus-clamp proof's
        # whole premise). It must wait for downstream_fits like any shrink.
        agent, net = make_agent(), SimNetwork(NetConfig(), 1)
        send(net, 0, epoch=1, extra_w=20.0, expiry=50)
        agent.step(1, net)
        seen = []

        def fits(extra_w, expiry_step, step):
            seen.append((extra_w, expiry_step, step))
            return False

        agent.downstream_fits = fits
        send(net, 1, epoch=2, extra_w=40.0, expiry=46)
        agent.step(2, net)
        assert agent.deferred_epoch == 2
        assert agent.live_extra_w(2) == 20.0
        assert agent.lease_expiry_step == 50  # old horizon still enforced
        assert seen and seen[-1] == (40.0, 46, 2)

    def test_grow_with_later_expiry_applies_immediately(self):
        agent, net = make_agent(), SimNetwork(NetConfig(), 1)
        send(net, 0, epoch=1, extra_w=20.0, expiry=50)
        agent.step(1, net)
        agent.downstream_fits = lambda extra_w, expiry_step, step: False
        send(net, 1, epoch=2, extra_w=40.0, expiry=60)
        agent.step(2, net)
        assert agent.deferred_epoch is None
        assert agent.live_extra_w(2) == 40.0 and agent.lease_expiry_step == 60

    def test_expired_lease_accepts_any_horizon(self):
        # Once the old lease is dead the horizon cannot move backward under
        # anyone's feet; a fresh grant applies immediately.
        agent, net = make_agent(), SimNetwork(NetConfig(), 1)
        send(net, 0, epoch=1, extra_w=20.0, expiry=5)
        agent.step(1, net)
        agent.downstream_fits = lambda extra_w, expiry_step, step: False
        send(net, 9, epoch=2, extra_w=30.0, expiry=8)  # stale, already dead
        agent.step(10, net)
        assert agent.deferred_epoch is None
        assert agent.epoch == 2 and agent.live_extra_w(10) == 0.0

    def test_newer_grow_supersedes_deferred_shrink(self):
        agent, net = make_agent(), SimNetwork(NetConfig(), 1)
        send(net, 0, epoch=1, extra_w=40.0)
        agent.step(1, net)
        agent.downstream_fits = lambda extra_w, expiry_step, step: False
        send(net, 1, epoch=2, extra_w=10.0)
        agent.step(2, net)
        assert agent.deferred_epoch == 2
        send(net, 2, epoch=3, extra_w=50.0)
        agent.step(3, net)
        assert agent.deferred_epoch is None
        assert agent.live_extra_w(3) == 50.0 and agent.epoch == 3

    def test_deferred_shrink_dies_with_the_process(self):
        agent, net = make_agent(), SimNetwork(NetConfig(), 1)
        send(net, 0, epoch=1, extra_w=40.0)
        agent.step(1, net)
        agent.downstream_fits = lambda extra_w, expiry_step, step: False
        send(net, 1, epoch=2, extra_w=10.0)
        agent.step(2, net)
        assert agent.deferred_epoch == 2
        agent.up = False
        agent.step(3, net)  # crash: in-memory deferral is lost
        agent.up = True
        agent.step(4, net)
        assert agent.deferred_epoch is None
        assert agent.epoch == 1  # journaled grant survived the crash

    def test_state_dict_roundtrips_the_deferral(self):
        agent, net = make_agent(), SimNetwork(NetConfig(), 1)
        send(net, 0, epoch=1, extra_w=40.0)
        agent.step(1, net)
        agent.downstream_fits = lambda extra_w, expiry_step, step: False
        send(net, 1, epoch=2, extra_w=10.0)
        agent.step(2, net)
        clone = make_agent()
        clone.load_state_dict(agent.state_dict())
        assert clone.deferred_epoch == 2
        assert clone.live_extra_w(2) == 40.0
        assert clone.issuance_extra_w(2) == 10.0

    def test_without_fits_callback_shrink_applies_next_step(self):
        agent, net = make_agent(), SimNetwork(NetConfig(), 1)
        send(net, 0, epoch=1, extra_w=40.0)
        agent.step(1, net)
        send(net, 1, epoch=2, extra_w=10.0)
        agent.step(2, net)
        assert agent.live_extra_w(2) == 10.0  # no callback: applies at once
        assert agent.deferred_epoch is None
