"""Budget-tree topology: safe tiers, paths, failure-domain schedules."""

import pytest

from repro.cluster.controlplane import ControlPlaneConfig
from repro.errors import ConfigurationError, NetworkError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.hierarchy.tree import (
    SubtreeOutage,
    TreeSpec,
    TreeTopology,
    format_path,
    parse_path,
    subtree_outages_from_fault_plan,
    validate_subtree_outages,
)


def topology(fanouts=(2, 3), budget_w=1200.0, **kwargs):
    return TreeTopology(
        spec=TreeSpec(fanouts=fanouts, budget_w=budget_w, **kwargs),
        config=ControlPlaneConfig(),
    )


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fanouts": ()},
            {"fanouts": (2,) * 7},
            {"fanouts": (2, 0)},
            {"fanouts": (2,), "budget_w": 0.0},
            {"fanouts": (2,), "quantum_w": 0.0},
            {"fanouts": (2, 2), "level_names": ("a", "b")},
        ],
    )
    def test_bad_spec(self, kwargs):
        kwargs.setdefault("budget_w", 100.0)
        with pytest.raises(NetworkError):
            TreeSpec(**kwargs)

    def test_default_level_names(self):
        assert TreeSpec(fanouts=(4,), budget_w=400.0).level_names == (
            "datacenter",
            "server",
        )
        assert TreeSpec(fanouts=(2, 3, 4), budget_w=4000.0).level_names == (
            "datacenter",
            "pdu",
            "rack",
            "server",
        )

    def test_codec_roundtrip(self):
        spec = TreeSpec(fanouts=(2, 3), budget_w=1200.0, quantum_w=4.0)
        assert TreeSpec.from_dict(spec.to_dict()) == spec

    def test_malformed_doc_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed tree spec"):
            TreeSpec.from_dict({"budget_w": 10.0})


class TestPaths:
    def test_parse_and_format_invert(self):
        assert parse_path("2.0") == (2, 0)
        assert format_path((2, 0)) == "2.0"
        assert format_path(()) == "root"

    @pytest.mark.parametrize("text", ["", "a.b", "2.-1", "2..0"])
    def test_bad_paths_rejected(self, text):
        with pytest.raises(ConfigurationError):
            parse_path(text)


class TestTopology:
    def test_safe_tier_recurrence_bounds_every_level(self):
        topo = topology(fanouts=(3, 4, 5), budget_w=9000.0)
        # At every interior node the children's safe caps must sum inside
        # the node's own safe cap - this is what makes the waterfall safe.
        for path in topo.interior_paths():
            children_total = sum(
                topo.safe_caps_w[c] for c in topo.children(path)
            )
            assert children_total <= topo.safe_caps_w[path] + 1e-9

    def test_uniform_within_level(self):
        topo = topology(fanouts=(2, 3))
        level1 = {topo.safe_caps_w[(i,)] for i in range(2)}
        leaves = {topo.safe_caps_w[p] for p in topo.leaf_paths()}
        assert len(level1) == 1 and len(leaves) == 1

    def test_too_deep_budget_rejected_naming_level(self):
        with pytest.raises(NetworkError, match="no safe cap at server level"):
            topology(fanouts=(4, 4, 4), budget_w=100.0)

    def test_leaf_index_is_row_major(self):
        topo = topology(fanouts=(2, 3))
        assert [topo.leaf_index(p) for p in topo.leaf_paths()] == list(range(6))
        assert topo.leaf_index((1, 2)) == 5

    def test_leaves_under_subtree(self):
        topo = topology(fanouts=(2, 3))
        assert topo.leaves_under((1,)) == range(3, 6)
        assert topo.leaves_under(()) == range(0, 6)
        with pytest.raises(ConfigurationError, match="5 does not exist"):
            topo.leaves_under((5,))

    def test_interior_paths_are_bfs_root_first(self):
        topo = topology(fanouts=(2, 2))
        assert topo.interior_paths() == [(), (0,), (1,)]


class TestSubtreeOutages:
    def test_root_outage_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot target the root"):
            SubtreeOutage(path=(), start_step=0, end_step=5)

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            SubtreeOutage(path=(0,), start_step=5, end_step=5)

    def test_unknown_path_rejected_naming_it(self):
        topo = topology()
        with pytest.raises(
            ConfigurationError, match=r"outages\[0\]\.path: node 7"
        ):
            validate_subtree_outages(
                (SubtreeOutage(path=(7,), start_step=0, end_step=5),),
                topo,
                n_steps=50,
            )

    def test_leaf_path_rejected(self):
        topo = topology()
        with pytest.raises(ConfigurationError, match="is a\n?.*leaf|leaf"):
            validate_subtree_outages(
                (SubtreeOutage(path=(0, 0), start_step=0, end_step=5),),
                topo,
                n_steps=50,
            )

    def test_nested_overlap_rejected(self):
        topo = topology(fanouts=(2, 2, 2), budget_w=8000.0)
        outages = (
            SubtreeOutage(path=(0,), start_step=0, end_step=10),
            SubtreeOutage(path=(0, 1), start_step=5, end_step=15),
        )
        with pytest.raises(
            ConfigurationError, match=r"outages\[1\]\.start_step: overlaps"
        ):
            validate_subtree_outages(outages, topo, n_steps=50)

    def test_sibling_overlap_allowed(self):
        topo = topology()
        outages = (
            SubtreeOutage(path=(0,), start_step=0, end_step=10),
            SubtreeOutage(path=(1,), start_step=5, end_step=15),
        )
        assert validate_subtree_outages(outages, topo, n_steps=50) == outages

    def test_clamp_and_drop_past_trace(self):
        topo = topology()
        outages = (
            SubtreeOutage(path=(0,), start_step=40, end_step=99),
            SubtreeOutage(path=(1,), start_step=60, end_step=70),
        )
        (kept,) = validate_subtree_outages(outages, topo, n_steps=50)
        assert kept == SubtreeOutage(path=(0,), start_step=40, end_step=50)


class TestFaultPlanConversion:
    def test_pdu_and_rack_specs_become_outages(self):
        topo = topology(fanouts=(2, 3))
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="pdu", mode="outage", start_s=60.0, duration_s=120.0, target="1"),
                FaultSpec(kind="rack", mode="outage", start_s=0.0, duration_s=30.0, target="0"),
                FaultSpec(kind="rapl", mode="drop", start_s=5.0, duration_s=4.0),
            )
        )
        outages = subtree_outages_from_fault_plan(plan, step_s=60.0, topology=topo)
        # Depth 2: both pdu and rack faults target depth-1 nodes. The plan
        # keeps specs sorted by start time, so the rack fault converts first.
        assert outages == (
            SubtreeOutage(path=(0,), start_step=0, end_step=1),
            SubtreeOutage(path=(1,), start_step=1, end_step=3),
        )

    def test_rack_targets_deepest_interior_level(self):
        topo = topology(fanouts=(2, 2, 2), budget_w=8000.0)
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="rack", mode="outage", start_s=0.0, duration_s=60.0, target="1.0"),
            )
        )
        (outage,) = subtree_outages_from_fault_plan(plan, step_s=60.0, topology=topo)
        assert outage.path == (1, 0)

    def test_wrong_depth_target_rejected(self):
        topo = topology(fanouts=(2, 2, 2), budget_w=8000.0)
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="pdu", mode="outage", start_s=0.0, duration_s=60.0, target="1.0"),
            )
        )
        with pytest.raises(
            ConfigurationError, match="'1.0' does not name a pdu-level node"
        ):
            subtree_outages_from_fault_plan(plan, step_s=60.0, topology=topo)

    def test_unknown_target_rejected(self):
        topo = topology()
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="pdu", mode="outage", start_s=0.0, duration_s=60.0, target="9"),
            )
        )
        with pytest.raises(ConfigurationError, match="'9' does not name"):
            subtree_outages_from_fault_plan(plan, step_s=60.0, topology=topo)
