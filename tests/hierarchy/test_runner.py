"""The budget-tree runner: bit-identity, invariants, degradation, recovery."""

import pytest

from repro.cluster.controlplane import ControlPlaneConfig, run_control_plane
from repro.errors import NetworkError
from repro.hierarchy import (
    BudgetTreeSimulator,
    SubtreeOutage,
    TreeSpec,
    run_budget_tree,
)
from repro.netsim import NetConfig, PartitionWindow
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import HIERARCHY_KINDS, TraceBus, verify_trace

LOSSY = NetConfig(latency_steps=1, jitter_steps=2, loss=0.15, duplicate=0.05, seed=7)


def run_tree(fanouts=(3, 4), budget_w=1200.0, steps=60, **kwargs):
    defaults = dict(net=NetConfig(seed=1), drain_steps=15)
    defaults.update(kwargs)
    spec = TreeSpec(fanouts=fanouts, budget_w=budget_w)
    n = spec.n_leaves
    return run_budget_tree(spec, [n] * steps, **defaults)


class TestDegenerateDepthOne:
    """A one-level tree IS the flat control plane - bit for bit."""

    @pytest.mark.parametrize("net", [NetConfig(seed=1), LOSSY])
    def test_bit_identical_to_flat_control_plane(self, net):
        loads = [4, 6, 8, 8, 8, 5, 3, 8] * 5
        flat = run_control_plane(
            n_nodes=8, budget_w=800.0, loaded_counts=loads, net=net, drain_steps=12
        )
        tree = run_budget_tree(
            TreeSpec(fanouts=(8,), budget_w=800.0), loads, net=net, drain_steps=12
        )
        assert tree.caps_w == flat.caps_w
        assert tree.leaf_epochs == flat.node_epochs
        assert tree.final_epochs == {"root": flat.final_epoch}
        assert tree.zombie_free == flat.zombie_free
        assert tree.max_total_cap_w == flat.max_total_cap_w
        assert tree.net_stats == flat.net_stats

    def test_trace_hash_identical_to_flat(self):
        loads = [6] * 40
        flat_bus, tree_bus = TraceBus(), TraceBus()
        run_control_plane(
            n_nodes=6, budget_w=600.0, loaded_counts=loads, net=LOSSY,
            trace_bus=flat_bus,
        )
        run_budget_tree(
            TreeSpec(fanouts=(6,), budget_w=600.0), loads, net=LOSSY,
            trace_bus=tree_bus,
        )
        assert tree_bus.content_hash() == flat_bus.content_hash()

    def test_leaf_down_matches_flat_down_sets(self):
        steps = 50
        down = [
            frozenset({0}) if 15 <= t < 35 else frozenset() for t in range(steps)
        ]
        flat = run_control_plane(
            n_nodes=4, budget_w=400.0, loaded_counts=[4] * steps,
            down_sets=down, net=NetConfig(seed=2), drain_steps=10,
        )
        tree = run_budget_tree(
            TreeSpec(fanouts=(4,), budget_w=400.0), [4] * steps,
            net=NetConfig(seed=2), leaf_down_sets=down, drain_steps=10,
        )
        assert tree.caps_w == flat.caps_w


class TestInvariant:
    @pytest.mark.parametrize("fanouts", [(3, 4), (2, 3, 2)])
    def test_caps_never_exceed_budget_under_loss(self, fanouts):
        out = run_tree(fanouts=fanouts, steps=80, net=LOSSY)
        for row in out.caps_w:
            assert sum(row) <= out.budget_w + 1e-6
        assert out.max_total_cap_w <= out.budget_w + 1e-6
        assert out.zombie_free

    def test_safe_tier_is_reachable_without_any_messages(self):
        # Total loss: every node should still enforce its static safe cap.
        out = run_tree(
            steps=30, net=NetConfig(loss=0.999999, seed=3), drain_steps=0
        )
        leaf_safe = out.safe_caps_by_level_w[-1]
        assert out.caps_w[-1] == (leaf_safe,) * out.n_leaves

    def test_extras_flow_down_on_a_clean_network(self):
        out = run_tree(steps=60, net=NetConfig(seed=1))
        leaf_safe = out.safe_caps_by_level_w[-1]
        final = out.caps_w[-1]
        assert all(cap >= leaf_safe for cap in final)
        # Delegation must beat the pure safe tier by a real margin.
        assert sum(final) > out.n_leaves * leaf_safe * 1.05

    def test_deterministic_replay(self):
        assert run_tree(net=LOSSY) == run_tree(net=LOSSY)


class TestPartitionAutonomy:
    def test_cut_subtree_keeps_mediating_on_safe_tier(self):
        # PDU 0 is cut from the root long enough for its upstream lease to
        # lapse; its own controller keeps running, so its leaves must hold
        # the subtree's safe-tier share, not collapse to zero.
        steps = 90
        out = run_tree(
            fanouts=(3, 4),
            steps=steps,
            net=NetConfig(
                partitions=(PartitionWindow(20, 70, (0,)),), seed=5
            ),
        )
        leaf_safe = out.safe_caps_by_level_w[-1]
        mid = out.caps_w[60]
        for leaf in range(4):  # leaves under PDU 0
            assert mid[leaf] >= leaf_safe - 1e-9
        # After the heal the subtree is re-granted upstream extras.
        assert sum(out.caps_w[-1][:4]) > sum(mid[:4])
        assert out.fallbacks >= 1
        assert out.heals >= 1
        assert out.zombie_free

    def test_fallback_and_heal_are_traced(self):
        bus = TraceBus()
        run_tree(
            fanouts=(3, 4),
            steps=90,
            net=NetConfig(partitions=(PartitionWindow(20, 70, (0,)),), seed=5),
            trace_bus=bus,
        )
        verify_trace(bus.events)
        kinds = {e.kind for e in bus.events}
        assert "hier-fallback" in kinds and "hier-heal" in kinds
        assert kinds & HIERARCHY_KINDS
        scopes = {
            e.payload.get("scope") for e in bus.events if e.kind == "cp-command"
        }
        assert "root" in scopes and {"0", "1", "2"} <= scopes

    def test_deep_partition_key_must_name_interior_node(self):
        with pytest.raises(NetworkError, match="partition key"):
            BudgetTreeSimulator(
                TreeSpec(fanouts=(3, 4), budget_w=1200.0),
                net=NetConfig(seed=1),
                partitions={"9": (PartitionWindow(0, 5, (0,)),)},
            )

    def test_deep_partition_cuts_one_rack_fabric(self):
        # A partition inside PDU 0's fabric (cutting child 0 = 4 leaves).
        out = run_tree(
            fanouts=(3, 4),
            steps=90,
            partitions={"0": (PartitionWindow(20, 70, (0, 1, 2, 3)),)},
        )
        assert out.max_total_cap_w <= out.budget_w + 1e-6
        assert out.zombie_free


class TestSubtreeOutages:
    def test_whole_pdu_dark_then_recovering(self):
        metrics = MetricsRegistry()
        out = run_tree(
            fanouts=(3, 4),
            steps=100,
            net=NetConfig(seed=9),
            subtree_outages=(SubtreeOutage(path=(1,), start_step=20, end_step=60),),
            metrics=metrics,
        )
        assert out.max_total_cap_w <= out.budget_w + 1e-6
        assert out.zombie_free
        leaf_safe = out.safe_caps_by_level_w[-1]
        # Siblings keep (at least) their own flow while PDU 1 is dark.
        mid = out.caps_w[50]
        assert all(cap >= leaf_safe - 1e-9 for cap in mid[:4])
        assert all(cap >= leaf_safe - 1e-9 for cap in mid[8:])
        # After recovery the dark leaves are granted extras again.
        assert sum(out.caps_w[-1][4:8]) > 4 * leaf_safe

    def test_outage_schedule_validated_against_tree(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match=r"outages\[0\]\.path"):
            run_tree(
                subtree_outages=(
                    SubtreeOutage(path=(9,), start_step=0, end_step=5),
                )
            )


class TestCrashRestart:
    def test_interior_controller_restart_from_stale_checkpoint(self):
        spec = TreeSpec(fanouts=(3, 4), budget_w=1200.0)
        metrics = MetricsRegistry()
        sim = BudgetTreeSimulator(spec, net=NetConfig(seed=4), metrics=metrics)
        loaded = frozenset(range(spec.n_leaves))
        snapshot = None
        for step in range(120):
            if step == 30:
                snapshot = sim.checkpoint((0,))
            if step == 38:
                # Crash PDU 0's controller and restore the 8-step-old state.
                sim.restore((0,), snapshot, step, checkpoint_age_steps=8)
            row = sim.step(step, loaded)
            assert sum(row) <= spec.budget_w + 1e-6
        assert sim.restarts == 1
        assert metrics.counter("hierarchy.restarts").value == 1
        assert metrics.counter("controlplane.restarts").value == 1
        assert sim.zombie_free(119)

    def test_restart_epoch_skips_past_dead_incarnation(self):
        spec = TreeSpec(fanouts=(4,), budget_w=400.0)
        sim = BudgetTreeSimulator(spec, net=NetConfig(seed=4))
        loaded = frozenset(range(4))
        for step in range(20):
            sim.step(step, loaded)
        snapshot = sim.checkpoint(())
        epoch_then = sim.nodes[()].controller.epoch
        for step in range(20, 30):
            sim.step(step, loaded)
        sim.restore((), snapshot, 30, checkpoint_age_steps=10)
        # (age + 1) * fanout bounds what the dead incarnation issued.
        assert sim.nodes[()].controller.epoch >= epoch_then + 44
        for step in range(30, 80):
            row = sim.step(step, loaded)
            assert sum(row) <= spec.budget_w + 1e-6
        assert sim.zombie_free(79)


class TestSchedules:
    def test_empty_schedule_rejected(self):
        with pytest.raises(NetworkError, match="at least one step"):
            run_budget_tree(
                TreeSpec(fanouts=(2,), budget_w=200.0), [], net=NetConfig()
            )

    def test_overloaded_counts_rejected(self):
        with pytest.raises(NetworkError, match="loaded_counts"):
            run_budget_tree(
                TreeSpec(fanouts=(2,), budget_w=200.0), [3], net=NetConfig()
            )

    def test_mismatched_down_sets_rejected(self):
        with pytest.raises(NetworkError, match="leaf_down_sets"):
            run_budget_tree(
                TreeSpec(fanouts=(2,), budget_w=200.0),
                [2, 2],
                leaf_down_sets=[frozenset()],
                net=NetConfig(),
            )


class TestTelemetry:
    def test_demand_aggregates_upward(self):
        # Half-loaded tree: the root's reported demand should eventually
        # approximate the loaded leaves' nominal share, not the full fleet.
        spec = TreeSpec(fanouts=(2, 4), budget_w=800.0)
        sim = BudgetTreeSimulator(spec, net=NetConfig(seed=1))
        loaded = frozenset(range(4))  # only PDU 0's leaves
        for step in range(40):
            sim.step(step, loaded)
        root = sim.nodes[()].controller
        per_leaf = 800.0 / 8
        assert root.total_reported_demand_w() == pytest.approx(
            4 * per_leaf, rel=0.01
        )
        assert root.reported_demand_w(1) == pytest.approx(0.0, abs=1e-9)

    def test_hierarchy_gauges_exported(self):
        metrics = MetricsRegistry()
        run_tree(fanouts=(3, 4), metrics=metrics)
        gauges = metrics.gauges()
        assert gauges["hierarchy.levels"] == 2.0
        assert gauges["hierarchy.leaves"] == 12.0
        assert gauges["hierarchy.nodes"] == 4.0
        assert 0.0 < gauges["hierarchy.max_utilization"] <= 1.0 + 1e-9
