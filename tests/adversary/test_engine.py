"""AdversaryEngine: hook programming, burst timing, and persistence."""

import pytest

from repro.adversary.engine import AdversaryEngine
from repro.adversary.plan import AdversarySchedule, AdversarySpec
from repro.errors import AdversaryError
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG


@pytest.fixture()
def server(config):
    s = SimulatedServer(config)
    s.admit(CATALOG["stream"])
    return s


def probe_spec(**overrides) -> AdversarySpec:
    base = dict(
        app="stream", kind="probe", start_s=1.0, duration_s=5.0,
        magnitude=6.0, period_s=1.0, burst_s=0.3,
    )
    base.update(overrides)
    return AdversarySpec(**base)


class TestRegistration:
    def test_register_and_list(self, server):
        engine = AdversaryEngine(server)
        s = probe_spec()
        engine.register(s)
        assert engine.specs() == [s]
        assert engine.spec_for("stream") == s

    def test_identical_reregistration_is_a_noop(self, server):
        # Journal replay re-drives admissions; the same spec must not trip.
        engine = AdversaryEngine(server)
        engine.register(probe_spec())
        engine.register(probe_spec())
        assert len(engine.specs()) == 1

    def test_conflicting_spec_rejected(self, server):
        engine = AdversaryEngine(server)
        engine.register(probe_spec())
        with pytest.raises(AdversaryError, match="already has a registered"):
            engine.register(probe_spec(kind="spike"))

    def test_forget_clears_live_hooks(self, server):
        engine = AdversaryEngine(server)
        engine.register(probe_spec(start_s=0.0))
        # Drive into the first burst (its phase jitter is seed-dependent).
        for i in range(11):
            engine.begin_tick(i * 0.1)
            if server.parasitic_power_of("stream") > 0.0:
                break
        assert server.parasitic_power_of("stream") == 6.0
        engine.forget("stream")
        assert server.parasitic_power_of("stream") == 0.0
        assert engine.specs() == []


class TestWindows:
    def test_window_edges_reported_once(self, server):
        engine = AdversaryEngine(server)
        engine.register(probe_spec(start_s=1.0, duration_s=2.0, seed=0))
        edges = []
        for i in range(50):
            edges += engine.begin_tick(i * 0.1)
        assert edges == [
            ("stream", "probe", "start"),
            ("stream", "probe", "stop"),
        ]
        # Hooks are cleared once the window closes.
        assert server.parasitic_power_of("stream") == 0.0

    def test_inflate_programs_heartbeat_hook(self, server):
        engine = AdversaryEngine(server)
        engine.register(
            AdversarySpec(
                app="stream", kind="inflate", start_s=0.0, duration_s=1.0,
                magnitude=0.5,
            )
        )
        engine.begin_tick(0.0)
        assert server.heartbeat_inflation_of("stream") == 1.5
        for i in range(1, 15):
            engine.begin_tick(i * 0.1)
        assert server.heartbeat_inflation_of("stream") == 1.0

    def test_probe_bursts_follow_the_period(self, server):
        # seed=0 with the engine's base seed gives some fixed jitter; the
        # burst pattern must repeat with the spec's period.
        engine = AdversaryEngine(server)
        engine.register(probe_spec(start_s=0.0, duration_s=4.0, seed=3))
        pattern = []
        for i in range(40):  # 4 s at dt=0.1 -> four 1 s periods
            engine.begin_tick(i * 0.1)
            pattern.append(server.parasitic_power_of("stream") > 0.0)
        assert pattern[:10] == pattern[10:20] == pattern[20:30]
        assert sum(pattern[:10]) == 3  # 0.3 s of every 1 s period

    def test_probe_jitter_is_deterministic_per_seed(self, config):
        def pattern(seed):
            srv = SimulatedServer(config)
            srv.admit(CATALOG["stream"])
            engine = AdversaryEngine(
                srv, AdversarySchedule(specs=(probe_spec(start_s=0.0, seed=seed),))
            )
            out = []
            for i in range(20):
                engine.begin_tick(i * 0.1)
                out.append(srv.parasitic_power_of("stream"))
            return out

        assert pattern(1) == pattern(1)

    def test_spike_locks_to_the_duty_cycle_period(self, server, config):
        engine = AdversaryEngine(server)
        engine.register(
            AdversarySpec(
                app="stream", kind="spike", start_s=0.0, duration_s=25.0,
                magnitude=6.0, burst_s=0.3,
            )
        )
        burst_ticks = []
        for i in range(250):
            engine.begin_tick(i * 0.1)
            if server.parasitic_power_of("stream") > 0.0:
                burst_ticks.append(i)
        period_ticks = int(config.duty_cycle_period_s / 0.1)
        assert burst_ticks[:3] == [0, 1, 2]
        assert [t + period_ticks for t in burst_ticks[:3]] == burst_ticks[3:6]

    def test_freeride_fires_only_on_discharge_edges(self, server):
        engine = AdversaryEngine(server)
        engine.register(
            AdversarySpec(
                app="stream", kind="freeride", start_s=0.0, duration_s=10.0,
                magnitude=4.0, burst_s=0.2,
            )
        )
        draws = []
        # OFF for 5 ticks, ON for 5, OFF again: the parasite may only fire
        # at the start of the ON phase.
        phases = [False] * 5 + [True] * 5 + [False] * 5
        for i, esd_on in enumerate(phases):
            engine.begin_tick(i * 0.1, esd_on=esd_on)
            draws.append(server.parasitic_power_of("stream"))
        assert draws[:5] == [0.0] * 5
        assert draws[5] == 4.0 and draws[6] == 4.0  # 0.2 s burst at the edge
        assert draws[7:] == [0.0] * 8


class TestCalibrationDistortion:
    def test_inflate_lies_proportionally_to_power(self, server):
        engine = AdversaryEngine(server)
        engine.register(
            AdversarySpec(
                app="stream", kind="inflate", start_s=0.0, duration_s=10.0,
                magnitude=0.6,
            )
        )
        low = engine.distort_calibration("stream", 1.0, 2.0, 10.0, 20.0)
        high = engine.distort_calibration("stream", 1.0, 20.0, 10.0, 20.0)
        assert low == pytest.approx(10.0 * (1.0 + 0.6 * 0.1))
        assert high == pytest.approx(10.0 * 1.6)
        assert high > low  # shape-changing, not a uniform scale

    def test_honest_apps_and_closed_windows_are_untouched(self, server):
        engine = AdversaryEngine(server)
        assert engine.distort_calibration("stream", 1.0, 5.0, 10.0, 20.0) == 10.0
        engine.register(
            AdversarySpec(
                app="stream", kind="inflate", start_s=5.0, duration_s=1.0,
                magnitude=0.6,
            )
        )
        assert engine.distort_calibration("stream", 1.0, 5.0, 10.0, 20.0) == 10.0

    def test_power_attacks_do_not_distort_calibration(self, server):
        engine = AdversaryEngine(server)
        engine.register(probe_spec(start_s=0.0))
        assert engine.distort_calibration("stream", 0.5, 5.0, 10.0, 20.0) == 10.0


class TestPersistence:
    def test_state_round_trips_through_json(self, server):
        import json

        engine = AdversaryEngine(server)
        engine.register(probe_spec(seed=9))
        for i in range(25):
            engine.begin_tick(i * 0.1, esd_on=i % 2 == 0)
        state = json.loads(json.dumps(engine.state_dict()))
        restored = AdversaryEngine(server)
        restored.load_state_dict(state)
        assert restored.state_dict() == engine.state_dict()
        assert restored.specs() == engine.specs()
