"""Adversary schedules: spec validation, ordering, and serialization."""

import pytest

from repro.adversary.plan import (
    ADVERSARY_KINDS,
    AdversarySchedule,
    AdversarySpec,
    default_adversary_schedule,
)
from repro.errors import AdversaryError


def spec(**overrides) -> AdversarySpec:
    base = dict(app="a", kind="probe", start_s=1.0, duration_s=5.0, magnitude=6.0)
    base.update(overrides)
    return AdversarySpec(**base)


class TestSpecValidation:
    def test_valid_spec_round_trips(self):
        s = spec(period_s=2.0, burst_s=0.5, seed=7)
        assert AdversarySpec.from_dict(s.to_dict()) == s

    def test_empty_app_rejected(self):
        with pytest.raises(AdversaryError, match="non-empty app name"):
            spec(app="")

    def test_unknown_kind_rejected(self):
        with pytest.raises(AdversaryError, match="unknown adversary kind"):
            spec(kind="ddos")

    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("start_s", -1.0, "start must be non-negative"),
            ("duration_s", 0.0, "duration must be positive"),
            ("magnitude", 0.0, "magnitude must be positive"),
            ("magnitude", 60.0, "beyond any single"),
            ("period_s", 0.0, "period must be positive"),
            ("burst_s", 0.0, "burst length must be positive"),
        ],
    )
    def test_bad_field_rejected(self, field, value, match):
        with pytest.raises(AdversaryError, match=match):
            spec(**{field: value})

    def test_probe_burst_longer_than_period_rejected(self):
        with pytest.raises(AdversaryError, match="exceeds its period"):
            spec(period_s=1.0, burst_s=2.0)

    def test_implausible_inflation_rejected(self):
        with pytest.raises(AdversaryError, match="implausible"):
            spec(kind="inflate", magnitude=11.0)

    def test_window_arithmetic(self):
        s = spec(start_s=2.0, duration_s=3.0)
        assert s.end_s == 5.0
        assert not s.active_at(1.99)
        assert s.active_at(2.0)
        assert s.active_at(4.99)
        assert not s.active_at(5.0)

    def test_from_dict_names_the_json_path(self):
        with pytest.raises(AdversaryError, match=r"adversaries\[2\]"):
            AdversarySpec.from_dict(
                {"app": "a", "kind": "probe", "start_s": 0, "duration_s": 1,
                 "magnitude": -1},
                where="adversaries[2]",
            )

    def test_from_dict_missing_field_names_it(self):
        with pytest.raises(AdversaryError, match="kind"):
            AdversarySpec.from_dict({"app": "a"})


class TestSchedule:
    def test_specs_sorted_by_start(self):
        late = spec(app="b", start_s=9.0)
        early = spec(app="a", start_s=1.0)
        sched = AdversarySchedule(specs=(late, early))
        assert sched.specs == (early, late)
        assert sched.apps() == ["a", "b"]

    def test_one_strategy_per_tenant(self):
        with pytest.raises(AdversaryError, match="one strategy"):
            AdversarySchedule(specs=(spec(), spec(kind="spike")))

    def test_json_round_trip(self):
        sched = AdversarySchedule(
            specs=(spec(app="a"), spec(app="b", kind="inflate", magnitude=0.5)),
            seed=3,
        )
        assert AdversarySchedule.from_json(sched.to_json()) == sched

    def test_from_json_rejects_garbage(self):
        with pytest.raises(AdversaryError, match="not valid JSON"):
            AdversarySchedule.from_json("{nope")
        with pytest.raises(AdversaryError, match="adversaries"):
            AdversarySchedule.from_json("{}")

    def test_load_missing_file_fails_loudly(self, tmp_path):
        with pytest.raises(AdversaryError, match="cannot read"):
            AdversarySchedule.load(str(tmp_path / "nope.json"))

    def test_load_from_file(self, tmp_path):
        sched = default_adversary_schedule("x", kind="freeride")
        path = tmp_path / "plan.json"
        path.write_text(sched.to_json())
        assert AdversarySchedule.load(str(path)) == sched

    def test_spec_for(self):
        sched = AdversarySchedule(specs=(spec(app="a"),))
        assert sched.spec_for("a").app == "a"
        assert sched.spec_for("b") is None

    def test_kinds(self):
        sched = AdversarySchedule(
            specs=(spec(app="a"), spec(app="b", kind="spike"))
        )
        assert sched.kinds() == {"probe", "spike"}


class TestDefaultSchedule:
    @pytest.mark.parametrize("kind", ADVERSARY_KINDS)
    def test_every_kind_has_a_default(self, kind):
        sched = default_adversary_schedule("victim", kind=kind, start_s=3.0, seed=5)
        assert len(sched) == 1
        (s,) = sched.specs
        assert s.kind == kind and s.app == "victim" and s.start_s == 3.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(AdversaryError, match="unknown adversary kind"):
            default_adversary_schedule("victim", kind="nope")
