"""The mediated fast path is pinned to the per-tick scalar loop.

:class:`~repro.engine.planner.MediatedFleet` promises the same contract the
vector models do - *bit-identical*, not "close": a fleet advanced through
horizon segments must end every run with exactly the state, metrics and
timeline a plain ``for m in mediators: m.run_for(...)`` loop produces. Two
layers enforce it here:

1. **Kernel pins**: the closed-form accumulators (``_seq_add``,
   ``_seq_mul_final``, ``_rapl_march``) are checked element-by-element
   against the literal Python fold they replace, across magnitudes where
   float addition is far from associative. This is the load-bearing fact
   the module docstring claims (numpy accumulates strictly sequentially);
   if a numpy release ever pairwise-sums these, this file fails first.
2. **Fleet-vs-loop differentials**: seeded scenarios spanning the regimes
   the fast path replays (SPACE allocation, ESD duty cycling, defense on
   and off, both engines, mid-run cap changes, app completion, fractional
   durations) plus a hypothesis fuzz layer. Equality is ``==`` on state
   dicts, metrics and the tick timeline.

The *speed* of the fast path is priced in
``benchmarks/bench_mediator_throughput.py``; this file only proves it legal.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.mediator import PowerMediator
from repro.core.policies import make_policy
from repro.core.simulation import default_battery
from repro.core.trust import DefenseConfig
from repro.engine.planner import MediatedFleet, _rapl_march, _seq_add, _seq_mul_final
from repro.errors import ConfigurationError
from repro.observability.trace import TraceBus
from repro.server.config import DEFAULT_SERVER_CONFIG
from repro.server.server import SimulatedServer
from repro.workloads.mixes import get_mix

# ------------------------------------------------------------------ kernels


@pytest.mark.parametrize(
    "start,step,k",
    [
        (0.0, 0.1, 1000),
        (1e9, 0.1, 500),  # large/small: addition here is order-sensitive
        (3.7, -0.3333333333333333, 257),
        (0.0, 7.25, 1),
    ],
)
def test_seq_add_matches_the_python_fold(start, step, k):
    values = _seq_add(start, step, k)
    acc = start
    for i in range(k):
        acc += step
        assert values[i + 1] == acc  # bitwise: == on floats, no tolerance
    assert values[0] == start
    assert len(values) == k + 1


@pytest.mark.parametrize(
    "start,factor,k",
    [(1.0, 0.9, 400), (2.5, 0.9999999, 1000), (1e-12, 1.5, 64)],
)
def test_seq_mul_final_matches_the_python_fold(start, factor, k):
    acc = start
    for _ in range(k):
        acc *= factor
    assert _seq_mul_final(start, factor, k) == acc


@pytest.mark.parametrize("seed", range(5))
def test_rapl_march_matches_the_modulo_fold(seed):
    rng = np.random.default_rng(seed)
    wrap = float(rng.uniform(50.0, 500.0))
    e0 = float(rng.uniform(0.0, wrap))
    step = float(rng.uniform(0.01, wrap / 3.0))
    k = 4096
    values = _rapl_march(e0, step, wrap, k)
    acc = e0
    for i in range(k):
        acc = (acc + step) % wrap  # the scalar counter's advance
        assert values[i] == acc
    assert len(values) == k


# ---------------------------------------------------------- fleet-vs-loop


def _build(
    engine: str,
    mix_id: int,
    *,
    policy: str = "app+res-aware",
    cap: float = 95.0,
    seed: int = 0,
    total_work: float = float("inf"),
    defense: DefenseConfig | None = None,
    trace_bus: TraceBus | None = None,
) -> PowerMediator:
    policy_obj = make_policy(policy)
    mediator = PowerMediator(
        SimulatedServer(DEFAULT_SERVER_CONFIG, seed=0, engine=engine),
        policy_obj,
        cap,
        battery=default_battery() if policy_obj.uses_esd else None,
        use_oracle_estimates=True,
        seed=seed,
        defense=defense,
        trace_bus=trace_bus,
    )
    for profile in get_mix(mix_id).profiles():
        mediator.add_application(
            profile.with_total_work(total_work), skip_overhead=True
        )
    return mediator


def _comparable_metrics(mediator: PowerMediator) -> dict:
    doc = mediator.export_metrics()
    doc.pop("profile", None)  # wall-clock, not simulation facts
    return doc


def _assert_pair_equal(fast: PowerMediator, ref: PowerMediator) -> None:
    assert fast.state_dict() == ref.state_dict()
    assert _comparable_metrics(fast) == _comparable_metrics(ref)
    assert fast.timeline == ref.timeline


def _run_both(duration_s: float, build_kwargs: dict, **fleet_kwargs):
    """The same mediator advanced by the fleet and by the plain loop."""
    fast = _build(**build_kwargs)
    ref = _build(**build_kwargs)
    fleet = MediatedFleet([fast], **fleet_kwargs)
    fleet.run_for(duration_s)
    ref.run_for(duration_s)
    _assert_pair_equal(fast, ref)
    return fleet


@pytest.mark.parametrize("engine", ["scalar", "vector"])
@pytest.mark.parametrize(
    "policy,mix_id,cap",
    [
        ("app+res-aware", 3, 95.0),  # SPACE steady state
        ("app+res-aware", 7, 62.0),  # tight cap, throttled allocation
        ("app+res+esd-aware", 10, 80.0),  # ESD duty cycle: flows + sleep
        ("util-unaware", 1, 80.0),  # TIME rotation: all-scalar by design
    ],
)
def test_fleet_equals_loop_across_regimes(engine, policy, mix_id, cap):
    fleet = _run_both(
        20.0, dict(engine=engine, mix_id=mix_id, policy=policy, cap=cap)
    )
    if policy == "util-unaware":
        # The rejected promotion of DESIGN.md section 13: slot rotation
        # flips run-states every tick, so the fleet must refuse the fast
        # path - correct by staying scalar, not by replaying branches.
        assert fleet.fast_ticks == 0
        assert "time-rotation" in fleet.demotions
    else:
        assert fleet.fast_fraction > 0.5, fleet.demotions


def test_fleet_equals_loop_with_defense_off():
    _run_both(
        15.0,
        dict(engine="vector", mix_id=4, defense=DefenseConfig(enabled=False)),
    )


def test_fleet_equals_loop_when_apps_complete():
    # Finite work: completion events (E3) fire mid-run, forcing demotions
    # at the departure edges; the fleet must land the exact same ticks.
    fleet = _run_both(
        20.0, dict(engine="vector", mix_id=2, total_work=150.0)
    )
    assert fleet.scalar_ticks > 0  # the departures really happened


@pytest.mark.parametrize("duration", [0.1, 0.7, 3.3, 11.13])
def test_fleet_equals_loop_for_fractional_durations(duration):
    _run_both(duration, dict(engine="vector", mix_id=6))


def test_fleet_equals_loop_across_mid_run_cap_changes():
    fast = _build(engine="vector", mix_id=3)
    ref = _build(engine="vector", mix_id=3)
    fleet = MediatedFleet([fast])
    for cap in (95.0, 70.0, 110.0):
        fast.set_power_cap(cap)
        ref.set_power_cap(cap)
        fleet.run_for(6.0)
        ref.run_for(6.0)
    _assert_pair_equal(fast, ref)


def test_trace_attached_mediators_stay_scalar_and_equal():
    # Fast segments cannot synthesize per-tick trace events, so a mediator
    # with a live bus must demote every tick - and still match the loop's
    # event stream byte for byte.
    fast_bus, ref_bus = TraceBus(), TraceBus()
    fast = _build(engine="vector", mix_id=5, trace_bus=fast_bus)
    ref = _build(engine="vector", mix_id=5, trace_bus=ref_bus)
    fleet = MediatedFleet([fast])
    fleet.run_for(5.0)
    ref.run_for(5.0)
    assert fleet.fast_ticks == 0
    assert "trace-attached" in fleet.demotions
    assert fast_bus.events == ref_bus.events
    _assert_pair_equal(fast, ref)


def test_heterogeneous_fleet_advances_every_member():
    mediators = [
        _build(engine="vector", mix_id=1 + i, seed=i, cap=80.0 + 5 * i)
        for i in range(4)
    ]
    refs = [
        _build(engine="vector", mix_id=1 + i, seed=i, cap=80.0 + 5 * i)
        for i in range(4)
    ]
    fleet = MediatedFleet(mediators)
    fleet.run_for(12.0)
    for fast, ref in zip(mediators, refs):
        ref.run_for(12.0)
        assert math.isclose(fast.server.now_s, 12.0)
        _assert_pair_equal(fast, ref)
    assert fleet.fast_ticks + fleet.scalar_ticks == 4 * 120


def test_step_all_is_one_scalar_tick_each():
    mediators = [_build(engine="vector", mix_id=i + 1, seed=i) for i in range(3)]
    fleet = MediatedFleet(mediators)
    fleet.step_all()
    assert fleet.scalar_ticks == 3
    assert fleet.fast_ticks == 0
    assert all(math.isclose(m.server.now_s, 0.1) for m in mediators)


# ------------------------------------------------------------- validation


def test_fleet_rejects_bad_construction():
    with pytest.raises(ConfigurationError):
        MediatedFleet([])
    with pytest.raises(ConfigurationError):
        MediatedFleet([object()])
    good = _build(engine="scalar", mix_id=1)
    with pytest.raises(ConfigurationError):
        MediatedFleet([good], min_fast_ticks=0)
    with pytest.raises(ConfigurationError):
        MediatedFleet([good], min_fast_ticks=16, max_segment_ticks=8)
    with pytest.raises(ConfigurationError):
        MediatedFleet([good]).run_for(0.0)


# ----------------------------------------------------------------- fuzzing

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
@given(
    mix_id=st.integers(min_value=1, max_value=15),
    policy=st.sampled_from(("app+res-aware", "app+res+esd-aware")),
    cap=st.integers(min_value=65, max_value=115),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    engine=st.sampled_from(("scalar", "vector")),
    duration_ticks=st.integers(min_value=1, max_value=180),
    min_fast=st.integers(min_value=1, max_value=32),
)
def test_fuzzed_fleet_runs_equal_the_loop(
    mix_id, policy, cap, seed, engine, duration_ticks, min_fast
):
    from repro.errors import ReproError

    kwargs = dict(
        engine=engine, mix_id=mix_id, policy=policy, cap=float(cap), seed=seed
    )
    duration = duration_ticks * 0.1
    try:
        ref = _build(**kwargs)
        ref.run_for(duration)
    except ReproError as ref_exc:
        fast = _build(**kwargs)
        with pytest.raises(type(ref_exc)) as fast_exc:
            MediatedFleet([fast], min_fast_ticks=min_fast).run_for(duration)
        assert str(fast_exc.value) == str(ref_exc)
        return
    fast = _build(**kwargs)
    MediatedFleet([fast], min_fast_ticks=min_fast).run_for(duration)
    _assert_pair_equal(fast, ref)
