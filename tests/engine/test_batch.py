"""BatchFleet: the fleet-scale batch stepper pinned to looped scalar servers.

``BatchFleet`` advances a whole fleet's engine phase (power breakdown, work
progression, completion, psys energy) with array ops. Its contract is the
same as the per-server vector models': *bit-identical* to running one
scalar :class:`SimulatedServer` per mix and ticking them in a Python loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import BatchFleet
from repro.errors import ConfigurationError, KnobError, SchedulingError
from repro.server.config import DEFAULT_SERVER_CONFIG, KnobSetting
from repro.server.server import SimulatedServer
from repro.workloads.mixes import get_mix


def _scalar_fleet(mixes, *, total_work: float):
    servers = []
    for mix in mixes:
        server = SimulatedServer(DEFAULT_SERVER_CONFIG, seed=0)
        for profile in sorted(mix.profiles(), key=lambda p: p.name):
            server.admit(profile.with_total_work(total_work))
        servers.append(server)
    return servers


@pytest.mark.parametrize("n_ticks", [1, 50, 400])
def test_batch_fleet_matches_scalar_servers_bitwise(n_ticks: int):
    mixes = [get_mix(1 + (i % 15)) for i in range(12)]
    servers = _scalar_fleet(mixes, total_work=30.0)
    fleet = BatchFleet(
        DEFAULT_SERVER_CONFIG,
        mixes=[[p.with_total_work(30.0) for p in m.profiles()] for m in mixes],
    )

    results = None
    for _ in range(n_ticks):
        results = [server.tick(0.1) for server in servers]
    fleet.advance(n_ticks)

    scalar_wall = np.array([r.breakdown.wall_w for r in results])
    assert np.array_equal(scalar_wall, fleet.wall_power_w())
    scalar_energy = np.array([s.rapl.read_energy_j("psys") for s in servers])
    assert np.array_equal(scalar_energy, fleet.energy_j())
    for i, (server, mix) in enumerate(zip(servers, mixes)):
        for profile in mix.profiles():
            handle = server.handle_of(profile.name)
            assert fleet.work_done(i, profile.name) == handle.work_done
            assert fleet.is_active(i, profile.name) == (not handle.completed)


def test_batch_fleet_tracks_knob_changes_bitwise():
    """Mid-run knob writes (what a mediator does every reallocation) keep
    the fleet pinned to the scalar servers."""
    mixes = [get_mix(3), get_mix(10)]
    servers = _scalar_fleet(mixes, total_work=float("inf"))
    fleet = BatchFleet(
        DEFAULT_SERVER_CONFIG,
        mixes=[list(m.profiles()) for m in mixes],
    )
    throttled = KnobSetting(1.5, 3, 6.0)
    for _ in range(20):
        for server in servers:
            server.tick(0.1)
    fleet.advance(20)
    target = sorted(mixes[1].names())[0]
    servers[1].knobs.set_knob(target, throttled)
    fleet.set_knob(1, target, throttled)
    assert fleet.knob_of(1, target) == throttled
    results = None
    for _ in range(30):
        results = [server.tick(0.1) for server in servers]
    fleet.advance(30)
    scalar_wall = np.array([r.breakdown.wall_w for r in results])
    assert np.array_equal(scalar_wall, fleet.wall_power_w())


def test_batch_fleet_completion_deactivates_apps():
    fleet = BatchFleet(
        DEFAULT_SERVER_CONFIG,
        mixes=[[p.with_total_work(0.5) for p in get_mix(1).profiles()]],
    )
    fleet.advance(500)
    for name in get_mix(1).names():
        assert not fleet.is_active(0, name)
        assert fleet.work_done(0, name) == 0.5
    before = fleet.wall_power_w().copy()
    fleet.tick()
    # A fully-drained server idles at exactly idle + chassis-management.
    cfg = DEFAULT_SERVER_CONFIG
    assert fleet.wall_power_w()[0] == (cfg.p_idle_w + cfg.p_cm_w) + 0.0
    assert np.array_equal(before, fleet.wall_power_w())


def test_batch_fleet_rejects_bad_construction():
    with pytest.raises(ConfigurationError):
        BatchFleet(DEFAULT_SERVER_CONFIG, mixes=[])
    with pytest.raises(ConfigurationError):
        BatchFleet(
            DEFAULT_SERVER_CONFIG, mixes=[list(get_mix(1).profiles())], dt_s=0.0
        )
    profiles = list(get_mix(1).profiles())
    with pytest.raises(SchedulingError):
        BatchFleet(DEFAULT_SERVER_CONFIG, mixes=[profiles + [profiles[0]]])


def test_batch_fleet_rejects_unknown_apps_and_off_grid_knobs():
    fleet = BatchFleet(DEFAULT_SERVER_CONFIG, mixes=[list(get_mix(1).profiles())])
    with pytest.raises(SchedulingError):
        fleet.work_done(0, "no-such-app")
    with pytest.raises(KnobError):
        fleet.set_knob(0, sorted(get_mix(1).names())[0], KnobSetting(9.9, 1, 3.0))
