"""Differential testing: the vector engine is pinned to the scalar reference.

The vector fast path promises *bit-identical* behaviour - not "close", not
"within tolerance": the same trace hash, the same metrics, the same final
state tree. This suite enforces that promise three ways:

1. A fixed matrix of >= 25 seeded scenarios spanning every Table II regime:
   all fifteen mixes, every policy, learned and oracle estimation, ESD on
   and off, fault injection, and each adversary kind. Each scenario runs
   once per engine and the whole observable outcome must match exactly.
2. A state-level check: mediators built from the same recipe under each
   engine must end a run with *equal state_dicts* (the engine is
   construction-time configuration, not state).
3. A hypothesis fuzz layer that composes random app subsets, caps,
   policies, seeds, ESD, faults, and adversaries - so the pin does not
   quietly depend on the hand-picked matrix.

Equality here is ``==`` on hashes, floats, and dicts. Any ulp of drift in
any tick flips the trace hash, which is the point.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.adversary.plan import ADVERSARY_KINDS, default_adversary_schedule
from repro.core.simulation import default_battery, run_mix_experiment
from repro.faults.plan import FaultPlan, FaultSpec
from repro.observability.trace import TraceBus, summarize_trace, verify_trace
from repro.persistence.checkpoint import RunRecipe
from repro.workloads.mixes import get_mix


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One seeded run both engines must reproduce identically."""

    name: str
    mix_id: int
    policy: str
    p_cap_w: float
    seed: int
    use_oracle_estimates: bool = True
    esd: bool = False
    faulted: bool = False
    adversary_kind: str | None = None
    duration_s: float = 5.0
    warmup_s: float = 2.0


def _compressed_fault_plan(seed: int = 0) -> FaultPlan:
    """The acceptance plan's fault classes, squeezed into a short run."""
    return FaultPlan(
        specs=(
            FaultSpec(kind="app", mode="hang", start_s=1.0, duration_s=1.0),
            FaultSpec(kind="rapl", mode="drop", start_s=2.2, duration_s=0.8),
            FaultSpec(kind="telemetry", mode="drop", start_s=3.2, duration_s=0.6),
            FaultSpec(
                kind="telemetry", mode="noise", start_s=4.0, duration_s=0.6,
                magnitude=0.8,
            ),
            FaultSpec(kind="battery", mode="outage", start_s=4.8, duration_s=0.8),
        ),
        seed=seed,
    )


def _matrix() -> list[Scenario]:
    scenarios: list[Scenario] = []
    # Every Table II mix, cycling through the paper's policies and a spread
    # of caps; seeds differ per scenario so no two runs share RNG streams.
    policies = ("util-unaware", "app+res-aware", "app+res+esd-aware")
    caps = (70.0, 80.0, 90.0, 100.0)
    for mix_id in range(1, 16):
        scenarios.append(
            Scenario(
                name=f"mix{mix_id:02d}-{policies[mix_id % 3]}",
                mix_id=mix_id,
                policy=policies[mix_id % 3],
                p_cap_w=caps[mix_id % 4],
                seed=mix_id,
            )
        )
    # The learned pipeline (calibration sampling, estimator fit) exercises
    # the CandidateSet fast path plus every noise stream.
    for i, mix_id in enumerate((2, 7, 10)):
        scenarios.append(
            Scenario(
                name=f"mix{mix_id:02d}-learned",
                mix_id=mix_id,
                policy="app+res-aware",
                p_cap_w=85.0,
                seed=100 + i,
                use_oracle_estimates=False,
            )
        )
    # Explicit ESD arms (battery installed even under a non-ESD policy).
    for mix_id, policy in ((5, "app+res-aware"), (10, "app+res+esd-aware")):
        scenarios.append(
            Scenario(
                name=f"mix{mix_id:02d}-esd-{policy}",
                mix_id=mix_id,
                policy=policy,
                p_cap_w=75.0,
                seed=200 + mix_id,
                esd=True,
            )
        )
    # Faulted runs: every fault class fires inside the window.
    for mix_id, policy in ((4, "app+res-aware"), (10, "app+res+esd-aware")):
        scenarios.append(
            Scenario(
                name=f"mix{mix_id:02d}-faulted-{policy}",
                mix_id=mix_id,
                policy=policy,
                p_cap_w=80.0,
                seed=300 + mix_id,
                faulted=True,
                duration_s=6.0,
            )
        )
    # Adversarial runs: one scenario per attack kind, defenses armed.
    for i, kind in enumerate(ADVERSARY_KINDS):
        scenarios.append(
            Scenario(
                name=f"mix01-adversary-{kind}",
                mix_id=1,
                policy="app+res-aware",
                p_cap_w=90.0,
                seed=400 + i,
                adversary_kind=kind,
                duration_s=6.0,
            )
        )
    # Combined regimes: every batched planning phase live in one run - ESD
    # duty cycling (battery flows + deep-sleep residency), defense/trust
    # scoring, an adversary driving it, and optionally the fault classes.
    # These are the scenarios the MediatedFleet segment flush must survive
    # wholesale, so the cross-engine pin covers each phase interacting.
    for i, kind in enumerate(ADVERSARY_KINDS):
        scenarios.append(
            Scenario(
                name=f"mix10-combined-esd-{kind}",
                mix_id=10,
                policy="app+res+esd-aware",
                p_cap_w=78.0,
                seed=500 + i,
                esd=True,
                adversary_kind=kind,
                duration_s=6.0,
            )
        )
    scenarios.append(
        Scenario(
            name="mix05-combined-esd-faulted-adversary",
            mix_id=5,
            policy="app+res+esd-aware",
            p_cap_w=78.0,
            seed=600,
            esd=True,
            faulted=True,
            adversary_kind=ADVERSARY_KINDS[0],
            duration_s=6.0,
        )
    )
    return scenarios


SCENARIOS = _matrix()


def test_matrix_meets_the_acceptance_floor():
    assert len(SCENARIOS) >= 25
    assert any(s.faulted for s in SCENARIOS)
    assert {s.adversary_kind for s in SCENARIOS if s.adversary_kind} == set(
        ADVERSARY_KINDS
    )
    assert any(s.esd for s in SCENARIOS)
    assert any(not s.use_oracle_estimates for s in SCENARIOS)
    # The combined regimes: ESD + defense + adversary in the same run, for
    # every attack kind, plus one with the fault classes layered on top.
    combined = [s for s in SCENARIOS if s.esd and s.adversary_kind]
    assert {s.adversary_kind for s in combined} == set(ADVERSARY_KINDS)
    assert any(s.faulted for s in combined)


def _run(scenario: Scenario, engine: str):
    bus = TraceBus()
    result = run_mix_experiment(
        list(get_mix(scenario.mix_id).profiles()),
        scenario.policy,
        scenario.p_cap_w,
        mix_id=scenario.mix_id,
        duration_s=scenario.duration_s,
        warmup_s=scenario.warmup_s,
        battery=default_battery() if scenario.esd else None,
        use_oracle_estimates=scenario.use_oracle_estimates,
        seed=scenario.seed,
        faults=_compressed_fault_plan(scenario.seed) if scenario.faulted else None,
        adversaries=(
            None
            if scenario.adversary_kind is None
            else default_adversary_schedule(
                get_mix(scenario.mix_id).names()[0],
                kind=scenario.adversary_kind,
                start_s=1.0,
                seed=scenario.seed,
            )
        ),
        trace_bus=bus,
        engine=engine,
    )
    verify_trace(bus.events)
    return result, summarize_trace(bus.events)


def _comparable_metrics(metrics: dict | None) -> dict | None:
    """Everything except the wall-clock ``profile`` section (the one part of
    the export that measures host time, not simulated behaviour)."""
    if metrics is None:
        return None
    return {k: v for k, v in metrics.items() if k != "profile"}


@pytest.mark.parametrize("scenario", SCENARIOS, ids=[s.name for s in SCENARIOS])
def test_engines_are_trace_identical(scenario: Scenario):
    scalar_result, scalar_summary = _run(scenario, "scalar")
    vector_result, vector_summary = _run(scenario, "vector")
    assert vector_summary["hash"] == scalar_summary["hash"], (
        f"{scenario.name}: vector trace diverged from the scalar reference "
        f"(modes scalar={scalar_summary['modes']} vector={vector_summary['modes']})"
    )
    assert vector_summary["modes"] == scalar_summary["modes"]
    assert vector_result.normalized_throughput == scalar_result.normalized_throughput
    assert vector_result.power_share == scalar_result.power_share
    assert vector_result.server_throughput == scalar_result.server_throughput
    assert vector_result.mean_wall_power_w == scalar_result.mean_wall_power_w
    assert _comparable_metrics(vector_result.metrics) == _comparable_metrics(
        scalar_result.metrics
    )


@pytest.mark.parametrize("seed", [0, 7, 23])
def test_final_state_dicts_are_equal(seed: int):
    """The engine must be invisible to the state tree: a run under either
    engine ends in exactly the same mediator state (which is also what makes
    cross-engine checkpoint restore legal)."""
    states = {}
    for engine in ("scalar", "vector"):
        recipe = RunRecipe(
            policy="app+res+esd-aware",
            p_cap_w=80.0,
            use_oracle_estimates=True,
            seed=seed,
            engine=engine,
        )
        mediator = recipe.build()
        for profile in get_mix(10).profiles():
            mediator.add_application(
                profile.with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(6.0)
        states[engine] = mediator.state_dict()
    assert states["vector"] == states["scalar"]


def test_cross_engine_checkpoint_restore(tmp_path):
    """A checkpoint written under one engine restores under the other and
    continues bit-identically - state carries no engine residue."""
    from repro.persistence.checkpoint import (
        read_checkpoint,
        restore_mediator,
        write_checkpoint,
    )

    def build(engine: str):
        recipe = RunRecipe(
            policy="app+res-aware", p_cap_w=85.0, seed=5,
            use_oracle_estimates=True, engine=engine,
        )
        mediator = recipe.build()
        for profile in get_mix(3).profiles():
            mediator.add_application(
                profile.with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(3.0)
        return recipe, mediator

    scalar_recipe, scalar_med = build("scalar")
    path = write_checkpoint(tmp_path, scalar_med, scalar_recipe)
    doc = read_checkpoint(path)
    # Flip the recorded engine before restoring: the state must not care.
    doc["recipe"]["engine"] = "vector"
    resumed = restore_mediator(doc)
    assert resumed.server.engine == "vector"
    scalar_med.run_for(2.0)
    resumed.run_for(2.0)
    assert resumed.state_dict() == scalar_med.state_dict()


# ----------------------------------------------------------------- fuzzing

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@st.composite
def fuzzed_scenarios(draw) -> Scenario:
    mix_id = draw(st.integers(min_value=1, max_value=15))
    policy = draw(
        st.sampled_from(("util-unaware", "app+res-aware", "app+res+esd-aware"))
    )
    adversary = draw(st.sampled_from((None, *ADVERSARY_KINDS)))
    return Scenario(
        name="fuzz",
        mix_id=mix_id,
        policy=policy,
        p_cap_w=float(draw(st.integers(min_value=60, max_value=120))),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        use_oracle_estimates=draw(st.booleans()),
        esd=draw(st.booleans()),
        faulted=draw(st.booleans()),
        adversary_kind=adversary,
        duration_s=3.0,
        warmup_s=1.0,
    )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
@given(scenario=fuzzed_scenarios())
def test_fuzzed_runs_are_trace_identical(scenario: Scenario):
    # Some fuzzed scenarios legitimately abort (e.g. an undefended policy
    # that cannot hold the cap against an aggressive adversary). That is
    # still a differential property: both engines must fail identically.
    from repro.errors import ReproError

    try:
        scalar_result, scalar_summary = _run(scenario, "scalar")
    except ReproError as scalar_exc:
        with pytest.raises(type(scalar_exc)) as vector_exc:
            _run(scenario, "vector")
        assert str(vector_exc.value) == str(scalar_exc)
        return
    vector_result, vector_summary = _run(scenario, "vector")
    assert vector_summary["hash"] == scalar_summary["hash"]
    assert vector_summary["modes"] == scalar_summary["modes"]
    assert _comparable_metrics(vector_result.metrics) == _comparable_metrics(
        scalar_result.metrics
    )


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
@given(
    mix_id=st.integers(min_value=1, max_value=15),
    kind=st.sampled_from(ADVERSARY_KINDS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    faulted=st.booleans(),
)
def test_fuzzed_combined_regimes_end_in_equal_state(
    mix_id: int, kind: str, seed: int, faulted: bool
):
    """The full planning stack at once - ESD duty cycling, deep sleep,
    defense scoring, an adversary, optionally faults - must leave *equal
    state trees* under either engine, not just equal traces. This is the
    regime every batched phase of the mediated fast path replays, so the
    state-level pin here is what licenses the segment flush wholesale."""
    from repro.core.mediator import PowerMediator
    from repro.core.policies import make_policy
    from repro.errors import ReproError
    from repro.server.config import DEFAULT_SERVER_CONFIG
    from repro.server.server import SimulatedServer

    def build_and_run(engine: str):
        mediator = PowerMediator(
            SimulatedServer(DEFAULT_SERVER_CONFIG, seed=0, engine=engine),
            make_policy("app+res+esd-aware"),
            78.0,
            battery=default_battery(),
            use_oracle_estimates=True,
            seed=seed,
            faults=_compressed_fault_plan(seed) if faulted else None,
            adversaries=default_adversary_schedule(
                get_mix(mix_id).names()[0], kind=kind, start_s=1.0, seed=seed
            ),
        )
        for profile in get_mix(mix_id).profiles():
            mediator.add_application(
                profile.with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(6.0)
        return mediator

    try:
        scalar_med = build_and_run("scalar")
    except ReproError as scalar_exc:
        with pytest.raises(type(scalar_exc)) as vector_exc:
            build_and_run("vector")
        assert str(vector_exc.value) == str(scalar_exc)
        return
    vector_med = build_and_run("vector")
    assert vector_med.state_dict() == scalar_med.state_dict()
    assert _comparable_metrics(vector_med.export_metrics()) == _comparable_metrics(
        scalar_med.export_metrics()
    )
