"""Vector model equivalence: every quantity, every knob, every profile.

The per-server vector models answer point queries by indexing precomputed
response surfaces. This module pins each surface cell to the scalar model's
answer with ``==`` (no tolerance), across the full 432-knob space and the
whole workload catalog - the exhaustive version of the equivalence contract
the differential suite checks end-to-end.
"""

from __future__ import annotations

import pytest

from repro.core.utility import CandidateSet
from repro.engine import VectorPerformanceModel, VectorPowerModel, validate_engine
from repro.errors import ConfigurationError
from repro.server.config import DEFAULT_SERVER_CONFIG, KnobSetting, ServerConfig
from repro.server.perf_model import PerformanceModel
from repro.server.power_model import PowerModel
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG

KNOBS = DEFAULT_SERVER_CONFIG.knob_space()


@pytest.mark.parametrize("name", sorted(CATALOG))
def test_every_cell_matches_the_scalar_models(name: str):
    profile = CATALOG[name]
    config = DEFAULT_SERVER_CONFIG
    s_perf = PerformanceModel(config)
    s_power = PowerModel(config, s_perf)
    v_perf = VectorPerformanceModel(config)
    v_power = VectorPowerModel(config, v_perf)
    for knob in KNOBS:
        assert v_perf.compute_rate(profile, knob) == s_perf.compute_rate(
            profile, knob
        )
        assert v_perf.memory_rate(profile, knob) == s_perf.memory_rate(profile, knob)
        assert v_perf.rate(profile, knob) == s_perf.rate(profile, knob)
        assert v_perf.core_utilization(profile, knob) == s_perf.core_utilization(
            profile, knob
        )
        assert v_perf.achieved_bandwidth_gbs(
            profile, knob
        ) == s_perf.achieved_bandwidth_gbs(profile, knob)
        assert v_power.core_power_w(profile, knob) == s_power.core_power_w(
            profile, knob
        )
        assert v_power.dram_power_w(profile, knob) == s_power.dram_power_w(
            profile, knob
        )
        assert v_power.app_power_w(profile, knob) == s_power.app_power_w(
            profile, knob
        )
    assert v_perf.peak_rate(profile) == s_perf.peak_rate(profile)


def test_vector_results_are_python_floats():
    """No np.float64 may leak out: downstream code JSON-serializes these
    values and compares state_dicts with ``==`` against scalar runs."""
    profile = CATALOG["stream"]
    v_perf = VectorPerformanceModel(DEFAULT_SERVER_CONFIG)
    v_power = VectorPowerModel(DEFAULT_SERVER_CONFIG, v_perf)
    knob = KNOBS[17]
    for value in (
        v_perf.rate(profile, knob),
        v_perf.core_utilization(profile, knob),
        v_power.app_power_w(profile, knob),
        v_perf.peak_rate(profile),
    ):
        assert type(value) is float


def test_off_grid_knobs_fall_back_to_the_scalar_path():
    """Point queries off the precomputed grid (other hardware configs built
    ad hoc by callers) answer through the scalar superclass - still exact."""
    profile = CATALOG["kmeans"]
    config = DEFAULT_SERVER_CONFIG
    v_perf = VectorPerformanceModel(config)
    s_perf = PerformanceModel(config)
    off_grid = KnobSetting(1.25, 3, 7.5)
    assert v_perf.rate(profile, off_grid) == s_perf.rate(profile, off_grid)


def test_candidate_set_fast_path_matches_the_scalar_build():
    profile = CATALOG["pagerank"].with_total_work(float("inf"))
    config = DEFAULT_SERVER_CONFIG
    scalar = CandidateSet.from_models(
        profile, config, power_model=PowerModel(config, PerformanceModel(config))
    )
    vector = CandidateSet.from_models(
        profile, config, power_model=VectorPowerModel(config)
    )
    assert vector.knobs == scalar.knobs
    assert vector.power_w.tolist() == scalar.power_w.tolist()
    assert vector.perf.tolist() == scalar.perf.tolist()
    assert vector.perf_nocap == scalar.perf_nocap


def test_surface_cache_shares_grids_but_not_profile_surfaces():
    from repro.engine import grid_for, surface_for

    config = DEFAULT_SERVER_CONFIG
    assert grid_for(config) is grid_for(ServerConfig())
    a = surface_for(config, CATALOG["stream"])
    b = surface_for(config, CATALOG["stream"].with_total_work(50.0))
    assert a is b, "total_work does not change the response surface"
    c = surface_for(config, CATALOG["stream"].scaled(base_rate_factor=0.5))
    assert c is not a


def test_engine_validation_and_server_wiring():
    assert validate_engine("scalar") == "scalar"
    assert validate_engine("vector") == "vector"
    with pytest.raises(ConfigurationError, match="unknown engine"):
        validate_engine("warp")
    server = SimulatedServer(engine="vector")
    assert server.engine == "vector"
    assert isinstance(server._perf, VectorPerformanceModel)
    assert SimulatedServer().engine == "scalar"
    # The engine is construction-time configuration, never state.
    assert "engine" not in server.state_dict()
