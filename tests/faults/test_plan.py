"""Fault plans: validation, ordering, JSON round-trips."""

import pytest

from repro.errors import FaultError
from repro.faults import FAULT_MODES, SCOPED_KINDS, FaultPlan, FaultSpec, default_fault_plan


class TestSpecValidation:
    def test_valid_windowed_spec(self):
        spec = FaultSpec(kind="rapl", mode="drop", start_s=5.0, duration_s=2.0)
        assert not spec.instantaneous
        assert spec.end_s == 7.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="quantum", mode="drop", start_s=0.0, duration_s=1.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="rapl", mode="outage", start_s=0.0, duration_s=1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="rapl", mode="drop", start_s=-1.0, duration_s=1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="rapl", mode="drop", start_s=0.0, duration_s=-1.0)

    def test_windowed_fault_needs_duration(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="telemetry", mode="drop", start_s=0.0, duration_s=0.0)

    def test_instant_fault_needs_no_duration(self):
        spec = FaultSpec(kind="app", mode="crash", start_s=3.0)
        assert spec.instantaneous
        assert spec.end_s == 3.0

    def test_derate_magnitude_bounds(self):
        with pytest.raises(FaultError):
            FaultSpec(
                kind="battery", mode="derate", start_s=0.0, duration_s=1.0,
                magnitude=0.0,
            )
        with pytest.raises(FaultError):
            FaultSpec(
                kind="battery", mode="derate", start_s=0.0, duration_s=1.0,
                magnitude=1.0,
            )

    def test_fade_magnitude_bounds(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="battery", mode="fade", start_s=0.0, magnitude=1.5)

    def test_noise_needs_positive_magnitude(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="telemetry", mode="noise", start_s=0.0, duration_s=1.0)


class TestPlan:
    def test_specs_sorted_by_start(self):
        late = FaultSpec(kind="app", mode="hang", start_s=9.0, duration_s=1.0)
        early = FaultSpec(kind="rapl", mode="drop", start_s=1.0, duration_s=1.0)
        plan = FaultPlan(specs=(late, early))
        assert plan.specs == (early, late)

    def test_len_and_kinds(self):
        plan = default_fault_plan()
        assert len(plan) == 6
        assert plan.kinds() == {"app", "rapl", "telemetry", "battery"}

    def test_default_plan_exercises_every_kind(self):
        # Every kind except the scoped ones: node/pdu/rack outages are
        # cluster- and hierarchy-scope while the default plan drives a
        # single server's substrate.
        assert default_fault_plan().kinds() == set(FAULT_MODES) - SCOPED_KINDS


class TestSerialization:
    def test_json_roundtrip(self):
        plan = default_fault_plan(seed=11)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_load_from_file(self, tmp_path):
        plan = default_fault_plan(seed=3)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.load(str(path)) == plan

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FaultError):
            FaultPlan.load(str(tmp_path / "absent.json"))

    def test_invalid_json_raises(self):
        with pytest.raises(FaultError):
            FaultPlan.from_json("{not json")

    def test_wrong_shape_raises(self):
        with pytest.raises(FaultError):
            FaultPlan.from_json('{"seed": 0}')

    def test_spec_missing_field_raises(self):
        with pytest.raises(FaultError):
            FaultPlan.from_json('{"faults": [{"kind": "rapl"}]}')

    def test_seed_defaults_to_zero(self):
        plan = FaultPlan.from_json('{"faults": []}')
        assert plan.seed == 0 and len(plan) == 0
