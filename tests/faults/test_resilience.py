"""Degraded-mode machinery: watchdog hysteresis, retrier backoff, episode
accounting."""

import pytest

from repro.core.resilience import (
    ActuationRetrier,
    FaultStats,
    ResilienceConfig,
    TelemetryWatchdog,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG


class TestWatchdog:
    def test_degrades_after_threshold(self):
        wd = TelemetryWatchdog(ResilienceConfig(stale_threshold=3))
        assert wd.observe(False) is None
        assert wd.observe(False) is None
        assert wd.observe(False) == "degraded"
        assert wd.degraded

    def test_single_good_sample_does_not_recover(self):
        wd = TelemetryWatchdog(ResilienceConfig(stale_threshold=2, recovery_threshold=2))
        wd.observe(False)
        wd.observe(False)
        assert wd.degraded
        assert wd.observe(True) is None
        assert wd.degraded
        assert wd.observe(True) == "recovered"
        assert not wd.degraded

    def test_flapping_resets_counters(self):
        wd = TelemetryWatchdog(ResilienceConfig(stale_threshold=3))
        wd.observe(False)
        wd.observe(False)
        wd.observe(True)  # resets the bad streak
        wd.observe(False)
        wd.observe(False)
        assert not wd.degraded
        assert wd.observe(False) == "degraded"

    def test_transitions_fire_once(self):
        wd = TelemetryWatchdog(ResilienceConfig(stale_threshold=1))
        assert wd.observe(False) == "degraded"
        assert wd.observe(False) is None


class TestFaultStats:
    def test_episode_lifecycle_and_mttr(self):
        stats = FaultStats()
        stats.open_episode("rapl", None, 1.0)
        stats.open_episode("telemetry", None, 2.0)
        stats.close_episode("rapl", None, 4.0)
        stats.close_episode("telemetry", None, 3.0)
        assert stats.mttr_s() == pytest.approx(2.0)  # mean of 3.0 and 1.0

    def test_open_is_idempotent_per_key(self):
        stats = FaultStats()
        stats.open_episode("rapl", "a", 1.0)
        stats.open_episode("rapl", "a", 2.0)
        assert len(stats.episodes) == 1

    def test_close_without_open_is_noop(self):
        stats = FaultStats()
        stats.close_episode("rapl", None, 1.0)
        assert stats.episodes == []

    def test_mttr_none_when_nothing_closed(self):
        stats = FaultStats()
        stats.open_episode("rapl", None, 1.0)
        assert stats.mttr_s() is None


class TestActuationRetrier:
    @pytest.fixture()
    def rig(self):
        """A server whose knob writes fail, plus a retrier watching it."""
        server = SimulatedServer()
        server.admit(CATALOG["kmeans"].with_total_work(float("inf")))
        injector = FaultInjector(
            FaultPlan(
                specs=(
                    FaultSpec(kind="rapl", mode="drop", start_s=0.0, duration_s=60.0),
                )
            ),
            server,
        )
        injector.begin_tick(0.0)
        config = ResilienceConfig(max_actuation_attempts=3)
        return server, injector, ActuationRetrier(server.knobs, config)

    def test_retries_follow_exponential_backoff(self, rig):
        server, _, retrier = rig
        stats = FaultStats()
        assert not server.knobs.set_knob("kmeans", server.config.min_knob)
        retry_ticks = []
        for tick in range(1, 8):
            before = stats.actuation_retries
            retrier.service(stats)
            if stats.actuation_retries > before:
                retry_ticks.append(tick)
        # Adopted at tick 1; first retry one tick later, then doubled gap.
        assert retry_ticks == [2, 4]

    def test_escalates_to_suspension_after_max_attempts(self, rig):
        server, _, retrier = rig
        stats = FaultStats()
        assert not server.knobs.set_knob("kmeans", server.config.min_knob)
        escalated = []
        for _ in range(12):
            _, esc = retrier.service(stats)
            escalated.extend(esc)
            if escalated:
                break
        assert escalated == ["kmeans"]
        assert server.knobs.is_suspended("kmeans")
        assert "kmeans" not in server.knobs.failed_writes()
        assert stats.actuation_escalations == 1

    def test_verified_retry_reported_and_cleared(self, rig):
        server, injector, retrier = rig
        stats = FaultStats()
        assert not server.knobs.set_knob("kmeans", server.config.min_knob)
        retrier.service(stats)  # adopt
        injector.begin_tick(61.0)  # fault clears before the first retry
        verified, escalated = retrier.service(stats)
        assert verified == ["kmeans"] and not escalated
        assert server.knobs.knob_of("kmeans") == server.config.min_knob
        assert retrier.pending == {}

    def test_out_of_band_clear_drops_pending(self, rig):
        server, injector, retrier = rig
        stats = FaultStats()
        assert not server.knobs.set_knob("kmeans", server.config.min_knob)
        retrier.service(stats)  # adopt
        injector.begin_tick(61.0)
        # A later direct write verifies, clearing the registry out-of-band.
        assert server.knobs.set_knob("kmeans", server.config.max_knob)
        verified, escalated = retrier.service(stats)
        assert verified == [] and escalated == []
        assert retrier.pending == {}

    def test_forget_stops_tracking(self, rig):
        server, _, retrier = rig
        stats = FaultStats()
        assert not server.knobs.set_knob("kmeans", server.config.min_knob)
        retrier.service(stats)
        retrier.forget("kmeans")
        assert retrier.pending == {}
