"""Fault injector: window mechanics, substrate hooks, telemetry filtering."""

import pytest

from repro.esd.battery import LeadAcidBattery
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.server.config import KnobSetting
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG


@pytest.fixture()
def server():
    srv = SimulatedServer()
    for name in ("kmeans", "x264"):
        srv.admit(CATALOG[name].with_total_work(float("inf")))
    return srv


def make_injector(server, *specs, seed=0, battery=None):
    return FaultInjector(
        FaultPlan(specs=tuple(specs), seed=seed), server, battery=battery
    )


class TestWindows:
    def test_enter_and_exit_transitions(self, server):
        spec = FaultSpec(kind="rapl", mode="drop", start_s=1.0, duration_s=2.0)
        inj = make_injector(server, spec)
        assert inj.begin_tick(0.0) == ([], [])
        _, transitions = inj.begin_tick(1.0)
        assert len(transitions) == 1 and transitions[0].entered
        assert inj.active_kinds() == {"rapl"}
        _, transitions = inj.begin_tick(3.0)
        assert len(transitions) == 1 and not transitions[0].entered
        assert inj.active_kinds() == set()

    def test_instant_fires_exactly_once(self, server):
        spec = FaultSpec(kind="app", mode="crash", start_s=1.0, target="x264")
        inj = make_injector(server, spec)
        crashed, transitions = inj.begin_tick(1.5)
        assert crashed == ["x264"]
        assert len(transitions) == 1 and transitions[0].entered
        assert inj.begin_tick(2.0) == ([], [])

    def test_unnamed_target_resolves_alphabetically_first(self, server):
        spec = FaultSpec(kind="app", mode="hang", start_s=0.0, duration_s=1.0)
        inj = make_injector(server, spec)
        _, transitions = inj.begin_tick(0.0)
        assert transitions[0].target == "kmeans"
        assert server.handle_of("kmeans").hung


class TestRaplFaults:
    def test_drop_swallows_writes(self, server):
        spec = FaultSpec(kind="rapl", mode="drop", start_s=0.0, duration_s=1.0)
        inj = make_injector(server, spec)
        inj.begin_tick(0.0)
        before = server.knobs.knob_of("kmeans")
        assert not server.knobs.set_knob("kmeans", server.config.min_knob)
        assert server.knobs.knob_of("kmeans") == before
        assert "kmeans" in server.knobs.failed_writes()
        inj.begin_tick(2.0)  # window closed: writes land again
        assert server.knobs.set_knob("kmeans", server.config.min_knob)

    def test_partial_lands_only_frequency(self, server):
        spec = FaultSpec(kind="rapl", mode="partial", start_s=0.0, duration_s=1.0)
        inj = make_injector(server, spec)
        inj.begin_tick(0.0)
        current = server.knobs.knob_of("kmeans")
        requested = KnobSetting(
            server.config.freq_min_ghz, current.cores - 1, current.dram_power_w
        )
        assert not server.knobs.set_knob("kmeans", requested)
        landed = server.knobs.knob_of("kmeans")
        assert landed.freq_ghz == requested.freq_ghz
        assert landed.cores == current.cores  # torn write: cores untouched

    def test_stale_readback_reports_pre_fault_knob(self, server):
        pre = server.knobs.knob_of("kmeans")
        spec = FaultSpec(kind="rapl", mode="stale", start_s=0.0, duration_s=1.0)
        inj = make_injector(server, spec)
        inj.begin_tick(0.0)
        assert not server.knobs.set_knob("kmeans", server.config.min_knob)
        # The write landed (true knob moved) but readback lies.
        assert server.knobs.knob_of("kmeans") == server.config.min_knob
        assert server.knobs.readback("kmeans") == pre
        inj.begin_tick(2.0)
        assert server.knobs.readback("kmeans") == server.config.min_knob


class TestTelemetryFaults:
    def test_drop_loses_samples(self, server):
        spec = FaultSpec(kind="telemetry", mode="drop", start_s=0.0, duration_s=1.0)
        inj = make_injector(server, spec)
        inj.begin_tick(0.0)
        assert inj.filter_wall_sample(80.0) == (None, False)
        assert inj.telemetry_fault_active()

    def test_stale_freezes_last_healthy_sample(self, server):
        spec = FaultSpec(kind="telemetry", mode="stale", start_s=1.0, duration_s=1.0)
        inj = make_injector(server, spec)
        inj.begin_tick(0.0)
        assert inj.filter_wall_sample(75.0) == (75.0, True)
        inj.begin_tick(1.0)
        assert inj.filter_wall_sample(90.0) == (75.0, False)

    def test_noise_is_seeded_and_fresh(self, server):
        spec = FaultSpec(
            kind="telemetry", mode="noise", start_s=0.0, duration_s=1.0, magnitude=2.0
        )
        a = make_injector(server, spec, seed=5)
        b = make_injector(server, spec, seed=5)
        a.begin_tick(0.0)
        b.begin_tick(0.0)
        va, fresh_a = a.filter_wall_sample(80.0)
        vb, fresh_b = b.filter_wall_sample(80.0)
        assert fresh_a and fresh_b
        assert va == vb
        assert va != 80.0

    def test_healthy_samples_pass_through(self, server):
        inj = make_injector(server)
        inj.begin_tick(0.0)
        assert inj.filter_wall_sample(66.0) == (66.0, True)

    def test_blackout_freezes_heartbeats(self, server):
        spec = FaultSpec(kind="telemetry", mode="drop", start_s=0.0, duration_s=1.0)
        inj = make_injector(server, spec)
        inj.begin_tick(0.0)
        assert server.heartbeats.in_blackout
        inj.begin_tick(2.0)
        assert not server.heartbeats.in_blackout


class TestBatteryFaults:
    def test_outage_toggles_availability(self, server):
        battery = LeadAcidBattery(1000.0, initial_soc=0.5)
        spec = FaultSpec(kind="battery", mode="outage", start_s=0.0, duration_s=1.0)
        inj = make_injector(server, spec, battery=battery)
        inj.begin_tick(0.0)
        assert not battery.available
        inj.begin_tick(2.0)
        assert battery.available

    def test_derate_scales_discharge_and_restores(self, server):
        battery = LeadAcidBattery(1000.0, max_discharge_w=60.0, initial_soc=0.5)
        spec = FaultSpec(
            kind="battery", mode="derate", start_s=0.0, duration_s=1.0, magnitude=0.5
        )
        inj = make_injector(server, spec, battery=battery)
        inj.begin_tick(0.0)
        assert battery.max_discharge_w == pytest.approx(30.0)
        inj.begin_tick(2.0)
        assert battery.max_discharge_w == pytest.approx(60.0)

    def test_fade_shrinks_capacity_once(self, server):
        battery = LeadAcidBattery(1000.0, initial_soc=1.0)
        spec = FaultSpec(kind="battery", mode="fade", start_s=0.0, magnitude=0.2)
        inj = make_injector(server, spec, battery=battery)
        inj.begin_tick(0.0)
        assert battery.capacity_j == pytest.approx(800.0)
        assert battery.total_faded_j == pytest.approx(200.0)
        inj.begin_tick(1.0)
        assert battery.capacity_j == pytest.approx(800.0)

    def test_battery_specs_inert_without_battery(self, server):
        spec = FaultSpec(kind="battery", mode="outage", start_s=0.0, duration_s=1.0)
        inj = make_injector(server, spec)
        crashed, transitions = inj.begin_tick(0.0)
        assert not crashed and len(transitions) == 1


class TestAppFaults:
    def test_hang_toggles_handle_flag(self, server):
        spec = FaultSpec(
            kind="app", mode="hang", start_s=0.0, duration_s=1.0, target="x264"
        )
        inj = make_injector(server, spec)
        inj.begin_tick(0.0)
        assert server.handle_of("x264").hung
        inj.begin_tick(2.0)
        assert not server.handle_of("x264").hung

    def test_hung_app_draws_power_but_makes_no_progress(self, server):
        spec = FaultSpec(
            kind="app", mode="hang", start_s=0.0, duration_s=5.0, target="kmeans"
        )
        inj = make_injector(server, spec)
        inj.begin_tick(0.0)
        result = server.tick(0.1)
        assert result.progressed["kmeans"] == 0.0
        assert result.breakdown.app_w["kmeans"] > 0.0
        assert result.progressed["x264"] > 0.0
