"""ServerConfig: Table I constants, knob space, validation."""

import pytest

from repro.errors import ConfigurationError, KnobError
from repro.server.config import DEFAULT_SERVER_CONFIG, KnobSetting, ServerConfig


class TestTableI:
    """The defaults must match the paper's platform exactly."""

    def test_core_count(self, config):
        assert config.total_cores == 12
        assert config.sockets == 2
        assert config.cores_per_socket == 6

    def test_frequency_range_and_steps(self, config):
        freqs = config.frequencies_ghz
        assert len(freqs) == 9
        assert freqs[0] == 1.2
        assert freqs[-1] == 2.0

    def test_power_constants(self, config):
        assert config.p_idle_w == 50.0
        assert config.p_cm_w == 20.0
        assert config.p_dynamic_max_w == 60.0

    def test_rated_power(self, config):
        assert config.uncapped_power_w == 130.0

    def test_llc_and_memory(self, config):
        assert config.llc_mb_per_socket == 15.0
        assert config.memory_gb == 8.0


class TestKnobSpace:
    def test_knob_space_size(self, config):
        # 9 frequencies x 6 core counts x 8 DRAM levels
        assert len(config.knob_space()) == 9 * 6 * 8

    def test_knob_space_order_is_stable(self, config):
        assert config.knob_space() == config.knob_space()
        assert config.knob_space() == list(config.iter_knob_space())

    def test_max_and_min_knobs_are_members(self, config):
        space = config.knob_space()
        assert config.max_knob in space
        assert config.min_knob in space

    def test_max_knob_values(self, config):
        knob = config.max_knob
        assert knob == KnobSetting(2.0, 6, 10.0)

    def test_min_knob_values(self, config):
        assert config.min_knob == KnobSetting(1.2, 1, 3.0)

    def test_dram_levels(self, config):
        assert config.dram_powers_w == [3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]

    def test_core_counts(self, config):
        assert config.core_counts == [1, 2, 3, 4, 5, 6]


class TestValidation:
    def test_validate_accepts_grid_points(self, config):
        config.validate_knob(KnobSetting(1.5, 3, 7.0))

    def test_validate_rejects_off_grid_frequency(self, config):
        with pytest.raises(KnobError):
            config.validate_knob(KnobSetting(1.55, 3, 7.0))

    def test_validate_rejects_bad_core_count(self, config):
        with pytest.raises(KnobError):
            config.validate_knob(KnobSetting(1.5, 7, 7.0))

    def test_validate_rejects_bad_dram_power(self, config):
        with pytest.raises(KnobError):
            config.validate_knob(KnobSetting(1.5, 3, 2.0))

    def test_invalid_frequency_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(freq_min_ghz=2.0, freq_max_ghz=1.0)

    def test_invalid_core_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(cores_min=0)

    def test_invalid_dram_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(dram_power_min_w=10.0, dram_power_max_w=3.0)

    def test_dram_min_below_static_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(dram_power_min_w=1.0)

    def test_bad_guard_band_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(rapl_guard_band=1.5)

    def test_zero_sockets_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(sockets=0)


class TestDynamicBudget:
    def test_paper_100w_scenario(self, config):
        assert config.dynamic_budget_w(100.0) == 30.0

    def test_paper_80w_scenario(self, config):
        assert config.dynamic_budget_w(80.0) == 10.0

    def test_paper_70w_scenario_is_negative(self, config):
        # At 70 W not even chip-maintenance power fits: ESD territory.
        assert config.dynamic_budget_w(70.0) == 0.0


class TestDefaultInstance:
    def test_default_is_table_i(self):
        assert DEFAULT_SERVER_CONFIG == ServerConfig()
