"""Sleep controller: PC6 state machine, wake latency accounting."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.server.config import ServerConfig
from repro.server.sleep import SleepController, SleepState


@pytest.fixture()
def sleep(config):
    return SleepController(config)


class TestStateMachine:
    def test_starts_active(self, sleep):
        assert sleep.state is SleepState.ACTIVE
        assert not sleep.in_deep_sleep

    def test_enter_and_wake(self, sleep):
        sleep.enter_pc6(runnable_apps=0)
        assert sleep.in_deep_sleep
        sleep.wake()
        assert not sleep.in_deep_sleep

    def test_enter_with_running_apps_rejected(self, sleep):
        with pytest.raises(SimulationError):
            sleep.enter_pc6(runnable_apps=2)

    def test_reentry_is_idempotent(self, sleep):
        sleep.enter_pc6(0)
        sleep.enter_pc6(0)
        assert sleep.pc6_entries == 1

    def test_wake_when_awake_is_free(self, sleep):
        assert sleep.wake() == 0.0
        assert sleep.total_wake_penalty_s == 0.0


class TestWakePenalty:
    def test_wake_returns_latency(self, sleep, config):
        sleep.enter_pc6(0)
        assert sleep.wake() == config.pc6_wake_latency_s

    def test_penalty_consumed_from_next_tick(self, sleep, config):
        sleep.enter_pc6(0)
        sleep.wake()
        dt = 0.1
        usable = sleep.consume_wake_penalty(dt)
        assert usable == pytest.approx(1.0 - config.pc6_wake_latency_s / dt)

    def test_penalty_consumed_only_once(self, sleep):
        sleep.enter_pc6(0)
        sleep.wake()
        sleep.consume_wake_penalty(0.1)
        assert sleep.consume_wake_penalty(0.1) == 1.0

    def test_long_penalty_spills_over_ticks(self, config):
        slow = SleepController(ServerConfig(pc6_wake_latency_s=0.15))
        slow.enter_pc6(0)
        slow.wake()
        assert slow.consume_wake_penalty(0.1) == 0.0  # fully eaten
        assert slow.consume_wake_penalty(0.1) == pytest.approx(0.5)

    def test_cumulative_penalty(self, sleep, config):
        for _ in range(3):
            sleep.enter_pc6(0)
            sleep.wake()
        assert sleep.total_wake_penalty_s == pytest.approx(
            3 * config.pc6_wake_latency_s
        )

    def test_invalid_tick_rejected(self, sleep):
        with pytest.raises(ConfigurationError):
            sleep.consume_wake_penalty(0.0)


class TestResidency:
    def test_pc6_time_accumulates(self, sleep):
        sleep.enter_pc6(0)
        sleep.advance(1.5)
        sleep.advance(0.5)
        assert sleep.time_in_pc6_s == pytest.approx(2.0)

    def test_active_time_not_counted(self, sleep):
        sleep.advance(5.0)
        assert sleep.time_in_pc6_s == 0.0

    def test_negative_time_rejected(self, sleep):
        with pytest.raises(ConfigurationError):
            sleep.advance(-1.0)
