"""Power model: Eq. (2) decomposition, worked examples from Section II-A."""

import pytest

from repro.errors import ConfigurationError
from repro.server.config import KnobSetting
from repro.server.power_model import PowerBreakdown, PowerModel
from repro.workloads.catalog import CATALOG


def knob(f=2.0, n=6, m=10.0):
    return KnobSetting(f, n, m)


class TestAppPower:
    def test_uncapped_demand_near_paper_20w(self, power_model):
        """Section II-A: an application's dynamic power is about 20 W."""
        for profile in CATALOG.values():
            demand = power_model.max_app_power_w(profile)
            assert 13.0 <= demand <= 27.0, profile.name

    def test_min_power_near_paper_10w(self, power_model):
        """Section IV-B: "each needs a minimum of 10 W to run"."""
        for profile in CATALOG.values():
            minimum = power_model.min_app_power_w(profile)
            assert 6.0 <= minimum <= 11.0, profile.name

    def test_power_grows_with_frequency(self, power_model, kmeans):
        p_low = power_model.app_power_w(kmeans, knob(f=1.2))
        p_high = power_model.app_power_w(kmeans, knob(f=2.0))
        assert p_high > p_low

    def test_power_grows_with_cores_for_compute_apps(self, power_model, kmeans):
        p1 = power_model.app_power_w(kmeans, knob(n=1))
        p6 = power_model.app_power_w(kmeans, knob(n=6))
        assert p6 > p1

    def test_dram_power_respects_allocation(self, power_model, stream):
        for m in (3.0, 5.0, 8.0, 10.0):
            assert power_model.dram_power_w(stream, knob(m=m)) <= m + 1e-9

    def test_memory_bound_app_draws_its_dram_allocation(self, power_model, stream):
        # STREAM saturates whatever bandwidth the allocation buys.
        assert power_model.dram_power_w(stream, knob(m=8.0)) == pytest.approx(8.0, abs=0.3)

    def test_compute_app_dram_power_tracks_demand_not_allocation(
        self, power_model, kmeans
    ):
        p_small = power_model.dram_power_w(kmeans, knob(m=4.0))
        p_large = power_model.dram_power_w(kmeans, knob(m=10.0))
        # Raising the allocation above demand does not add draw.
        assert p_large == pytest.approx(p_small, abs=0.2)

    def test_stalled_cores_draw_less(self, power_model, stream, kmeans):
        # Same core count and frequency: the memory-stalled app's cores
        # draw less than the busy app's.
        assert power_model.core_power_w(stream, knob()) < power_model.core_power_w(
            kmeans, knob()
        )


class TestServerBreakdown:
    def test_idle_server_draws_p_idle_plus_cm(self, power_model, config):
        down = power_model.server_breakdown({})
        assert down.idle_w == config.p_idle_w
        assert down.cm_w == config.p_cm_w  # uncore awake while merely idle
        assert down.wall_w == 70.0

    def test_deep_sleep_drops_cm(self, power_model, config):
        down = power_model.server_breakdown({}, deep_sleep=True)
        assert down.cm_w == 0.0
        assert down.wall_w == config.p_idle_w

    def test_single_app_near_paper_90w(self, power_model, kmeans):
        """Section II-A: one app in isolation pushes the server to ~90 W."""
        down = power_model.server_breakdown({"kmeans": (kmeans, knob())})
        assert down.wall_w == pytest.approx(90.0, abs=7.0)

    def test_two_apps_pay_cm_once(self, power_model, kmeans, pagerank):
        """Section II-A: co-location amortizes P_cm (the non-convexity)."""
        solo_a = power_model.server_breakdown({"a": (kmeans, knob())})
        solo_b = power_model.server_breakdown({"b": (pagerank, knob())})
        both = power_model.server_breakdown(
            {"a": (kmeans, knob()), "b": (pagerank, knob())}
        )
        assert both.wall_w == pytest.approx(
            solo_a.wall_w + solo_b.wall_w - 70.0, abs=1e-6
        )

    def test_esd_flows_enter_wall_power(self, power_model, kmeans):
        charge = power_model.server_breakdown(
            {"a": (kmeans, knob())}, esd_charge_w=15.0
        )
        discharge = power_model.server_breakdown(
            {"a": (kmeans, knob())}, esd_discharge_w=15.0
        )
        base = power_model.server_breakdown({"a": (kmeans, knob())})
        assert charge.wall_w == pytest.approx(base.wall_w + 15.0)
        assert discharge.wall_w == pytest.approx(base.wall_w - 15.0)

    def test_simultaneous_charge_and_discharge_rejected(self, power_model):
        with pytest.raises(ConfigurationError):
            power_model.server_breakdown({}, esd_charge_w=5.0, esd_discharge_w=5.0)

    def test_negative_flows_rejected(self, power_model):
        with pytest.raises(ConfigurationError):
            power_model.server_breakdown({}, esd_charge_w=-1.0)

    def test_deep_sleep_with_running_apps_rejected(self, power_model, kmeans):
        with pytest.raises(ConfigurationError):
            power_model.server_breakdown({"a": (kmeans, knob())}, deep_sleep=True)

    def test_breakdown_components_sum_to_wall(self, power_model, kmeans, stream):
        down = power_model.server_breakdown(
            {"a": (kmeans, knob()), "b": (stream, knob())},
            esd_charge_w=5.0,
        )
        assert down.wall_w == pytest.approx(
            down.idle_w + down.cm_w + down.dynamic_w + 5.0
        )

    def test_served_excludes_esd(self, power_model, kmeans):
        down = power_model.server_breakdown(
            {"a": (kmeans, knob())}, esd_discharge_w=10.0
        )
        assert down.served_w == pytest.approx(down.wall_w + 10.0)


class TestConstruction:
    def test_mismatched_perf_model_rejected(self, config):
        from repro.server.config import ServerConfig
        from repro.server.perf_model import PerformanceModel

        other = PerformanceModel(ServerConfig())
        with pytest.raises(ConfigurationError):
            PowerModel(config, other)
