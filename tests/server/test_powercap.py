"""Hardware powercap zones: closed-loop per-app isolation."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.server.config import ServerConfig
from repro.server.powercap import HardwarePowercap, PowercapZone
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG


def run_with_zones(server, powercap, seconds, dt=0.1):
    result = None
    for _ in range(int(seconds / dt)):
        result = server.tick(dt)
        powercap.on_tick(result)
    return result


@pytest.fixture()
def capped_server(config):
    server = SimulatedServer(config)
    server.admit(CATALOG["kmeans"].with_total_work(float("inf")))
    server.admit(CATALOG["stream"].with_total_work(float("inf")))
    return server


class TestZoneValidation:
    def test_invalid_limit_rejected(self, config):
        with pytest.raises(ConfigurationError):
            PowercapZone("a", 0.0, config)

    def test_invalid_window_rejected(self, config):
        with pytest.raises(ConfigurationError):
            PowercapZone("a", 10.0, config, window_s=0.0)

    def test_invalid_hysteresis_rejected(self, config):
        with pytest.raises(ConfigurationError):
            PowercapZone("a", 10.0, config, hysteresis=1.0)

    def test_limit_setter_validates(self, config):
        zone = PowercapZone("a", 10.0, config)
        with pytest.raises(ConfigurationError):
            zone.limit_w = -1.0

    def test_zone_for_unknown_app_rejected(self, capped_server):
        with pytest.raises(SchedulingError):
            HardwarePowercap(capped_server).set_zone("ghost", 10.0)

    def test_clear_unknown_zone_rejected(self, capped_server):
        with pytest.raises(SchedulingError):
            HardwarePowercap(capped_server).clear_zone("kmeans")


class TestClosedLoop:
    def test_converges_below_limit(self, capped_server):
        powercap = HardwarePowercap(capped_server)
        powercap.set_zone("kmeans", 12.0)
        result = run_with_zones(capped_server, powercap, 25.0)
        assert result.breakdown.app_w["kmeans"] <= 12.0 + 1e-9

    def test_unthrottles_when_limit_rises(self, capped_server):
        powercap = HardwarePowercap(capped_server)
        zone = powercap.set_zone("kmeans", 12.0)
        run_with_zones(capped_server, powercap, 25.0)
        throttled = zone.position
        assert throttled > 0
        zone.limit_w = 30.0  # far above demand: the zone should fully relax
        run_with_zones(capped_server, powercap, 25.0)
        assert zone.position < throttled
        assert zone.stats.unthrottle_steps > 0

    def test_generous_limit_never_throttles(self, capped_server):
        powercap = HardwarePowercap(capped_server)
        zone = powercap.set_zone("kmeans", 30.0)
        run_with_zones(capped_server, powercap, 10.0)
        assert zone.position == 0
        assert zone.stats.throttle_steps == 0

    def test_zones_isolate_independently(self, capped_server):
        """One zone's throttling never touches the other app's knob."""
        powercap = HardwarePowercap(capped_server)
        powercap.set_zone("kmeans", 10.0)
        run_with_zones(capped_server, powercap, 20.0)
        assert capped_server.knobs.knob_of("stream") == capped_server.config.max_knob

    def test_sum_of_zone_limits_bounds_dynamic_power(self, capped_server):
        powercap = HardwarePowercap(capped_server)
        powercap.set_zone("kmeans", 11.0)
        powercap.set_zone("stream", 12.0)
        run_with_zones(capped_server, powercap, 30.0)
        result = run_with_zones(capped_server, powercap, 5.0)
        assert result.breakdown.dynamic_w <= powercap.total_limit_w() + 1e-9

    def test_violation_ticks_counted_then_corrected(self, capped_server):
        powercap = HardwarePowercap(capped_server)
        zone = powercap.set_zone("kmeans", 12.0)
        run_with_zones(capped_server, powercap, 25.0)
        # Transient violations existed while the loop converged...
        assert zone.stats.violation_ticks > 0
        before = zone.stats.violation_ticks
        run_with_zones(capped_server, powercap, 10.0)
        # ...but none occur at steady state.
        assert zone.stats.violation_ticks == before

    def test_suspended_app_is_left_alone(self, capped_server):
        powercap = HardwarePowercap(capped_server)
        zone = powercap.set_zone("kmeans", 12.0)
        capped_server.suspend("kmeans")
        run_with_zones(capped_server, powercap, 5.0)
        assert zone.stats.throttle_steps == 0

    def test_zone_respects_group_width(self, config):
        server = SimulatedServer(config)
        server.admit(
            CATALOG["kmeans"].with_total_work(float("inf")), group_width=3
        )
        powercap = HardwarePowercap(server)
        powercap.set_zone("kmeans", 8.0)
        run_with_zones(server, powercap, 25.0)
        assert server.knobs.knob_of("kmeans").cores <= 3

    def test_replacing_a_zone_resets_control(self, capped_server):
        powercap = HardwarePowercap(capped_server)
        powercap.set_zone("kmeans", 12.0)
        run_with_zones(capped_server, powercap, 15.0)
        fresh = powercap.set_zone("kmeans", 15.0)
        assert fresh.position == 0
