"""Performance model: bottleneck structure, monotonicity, normalization."""

import pytest

from repro.errors import ConfigurationError
from repro.server.config import KnobSetting
from repro.workloads.profiles import WorkloadProfile


def knob(f=2.0, n=6, m=10.0):
    return KnobSetting(f, n, m)


class TestComputeRate:
    def test_scales_with_amdahl(self, perf_model, kmeans):
        one = perf_model.compute_rate(kmeans, knob(n=1))
        six = perf_model.compute_rate(kmeans, knob(n=6))
        assert six == pytest.approx(one * kmeans.amdahl_speedup(6))

    def test_scales_with_frequency_sensitivity(self, perf_model, kmeans):
        slow = perf_model.compute_rate(kmeans, knob(f=1.2))
        fast = perf_model.compute_rate(kmeans, knob(f=2.0))
        assert fast / slow == pytest.approx((2.0 / 1.2) ** kmeans.dvfs_sensitivity)

    def test_base_rate_is_the_scale(self, perf_model, config):
        a = WorkloadProfile("a", "graph", 0.5, 1.0, 1.0, 0.0, 1.0, 1.0)
        b = WorkloadProfile("b", "graph", 0.5, 2.0, 1.0, 0.0, 1.0, 1.0)
        k = knob()
        assert perf_model.compute_rate(b, k) == pytest.approx(
            2.0 * perf_model.compute_rate(a, k)
        )


class TestMemoryRate:
    def test_infinite_for_zero_traffic(self, perf_model):
        pure = WorkloadProfile("pure", "media", 0.9, 1.0, 1.0, 0.0, 1.0, 1.0)
        assert perf_model.memory_rate(pure, knob()) == float("inf")

    def test_bandwidth_grows_with_dram_allocation(self, perf_model, stream):
        low = perf_model.memory_rate(stream, knob(m=3.0))
        high = perf_model.memory_rate(stream, knob(m=10.0))
        assert high > low

    def test_core_pull_limits_bandwidth(self, perf_model, config):
        # One core cannot pull the full DIMM allocation's bandwidth.
        one = perf_model.usable_bandwidth_gbs(knob(n=1, m=10.0))
        six = perf_model.usable_bandwidth_gbs(knob(n=6, m=10.0))
        assert one < six
        assert one <= config.core_bw_gbs  # <= one core's pull at f_max

    def test_allocation_limits_bandwidth(self, perf_model, config):
        bw = perf_model.usable_bandwidth_gbs(knob(n=6, m=4.0))
        expected = (4.0 - config.dram_static_w) / config.dram_w_per_gbs
        assert bw == pytest.approx(expected)


class TestAchievedRate:
    def test_rate_never_exceeds_either_bound(self, perf_model, stream):
        for m in (3.0, 6.0, 10.0):
            k = knob(m=m)
            r = perf_model.rate(stream, k)
            assert r <= perf_model.compute_rate(stream, k) + 1e-9
            assert r <= perf_model.memory_rate(stream, k) + 1e-9

    def test_stream_is_memory_bound_at_max_knob(self, perf_model, stream):
        k = knob()
        assert perf_model.memory_rate(stream, k) < perf_model.compute_rate(stream, k)

    def test_kmeans_is_compute_bound_at_max_knob(self, perf_model, kmeans):
        k = knob()
        assert perf_model.compute_rate(kmeans, k) < perf_model.memory_rate(kmeans, k)

    def test_zero_memory_rate_gives_zero(self, perf_model, config):
        # An app with traffic but a DRAM allocation at background power.
        hungry = WorkloadProfile("hungry", "memory", 0.9, 1.0, 0.2, 5.0, 0.8, 1.0)
        tiny = KnobSetting(2.0, 6, 3.0)
        # m=3 leaves a little above static power, so rate is small but
        # positive; the hard-zero case needs m == static, which the knob
        # grid cannot express - assert the small-positive behaviour.
        assert 0.0 < perf_model.rate(hungry, tiny) < perf_model.rate(hungry, knob())


class TestMonotonicity:
    """More of any resource never hurts performance."""

    @pytest.mark.parametrize("app_name", ["kmeans", "stream", "sssp", "bfs"])
    def test_frequency_monotone(self, perf_model, config, app_name):
        from repro.workloads.catalog import CATALOG

        profile = CATALOG[app_name]
        rates = [perf_model.rate(profile, knob(f=f)) for f in config.frequencies_ghz]
        assert all(b >= a - 1e-12 for a, b in zip(rates, rates[1:]))

    @pytest.mark.parametrize("app_name", ["kmeans", "stream", "sssp", "bfs"])
    def test_cores_monotone(self, perf_model, config, app_name):
        from repro.workloads.catalog import CATALOG

        profile = CATALOG[app_name]
        rates = [perf_model.rate(profile, knob(n=n)) for n in config.core_counts]
        assert all(b >= a - 1e-12 for a, b in zip(rates, rates[1:]))

    @pytest.mark.parametrize("app_name", ["kmeans", "stream", "sssp", "bfs"])
    def test_dram_monotone(self, perf_model, config, app_name):
        from repro.workloads.catalog import CATALOG

        profile = CATALOG[app_name]
        rates = [perf_model.rate(profile, knob(m=m)) for m in config.dram_powers_w]
        assert all(b >= a - 1e-12 for a, b in zip(rates, rates[1:]))


class TestNormalization:
    def test_relative_performance_at_max_knob_is_one(self, perf_model, config, kmeans):
        assert perf_model.relative_performance(kmeans, config.max_knob) == pytest.approx(1.0)

    def test_relative_performance_below_one_elsewhere(self, perf_model, config, kmeans):
        assert perf_model.relative_performance(kmeans, config.min_knob) < 1.0

    def test_peak_rate_positive_for_catalog(self, perf_model):
        from repro.workloads.catalog import CATALOG

        for profile in CATALOG.values():
            assert perf_model.peak_rate(profile) > 0

    def test_completion_time(self, perf_model, config, kmeans):
        t = perf_model.completion_time_s(kmeans, config.max_knob)
        assert t == pytest.approx(kmeans.total_work / perf_model.peak_rate(kmeans))


class TestUtilization:
    def test_compute_bound_app_fully_utilized(self, perf_model, kmeans):
        assert perf_model.core_utilization(kmeans, knob()) > 0.9

    def test_memory_bound_app_stalls(self, perf_model, stream):
        assert perf_model.core_utilization(stream, knob()) < 0.6

    def test_utilization_bounded(self, perf_model):
        from repro.workloads.catalog import CATALOG

        for profile in CATALOG.values():
            u = perf_model.core_utilization(profile, knob())
            assert 0.0 <= u <= 1.0
