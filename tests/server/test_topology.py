"""Topology: core-group reservations, placement, the taskset substrate."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.server.config import ServerConfig
from repro.server.topology import ServerTopology


@pytest.fixture()
def topo(config):
    return ServerTopology(config)


class TestAdmission:
    def test_first_app_gets_a_full_group(self, topo, config):
        group = topo.admit("a")
        assert group.width == config.cores_max
        assert group.dedicated_dimm

    def test_two_apps_land_on_different_sockets(self, topo):
        a = topo.admit("a")
        b = topo.admit("b")
        assert a.socket != b.socket
        assert a.dedicated_dimm and b.dedicated_dimm

    def test_groups_are_disjoint(self, topo):
        a = topo.admit("a")
        b = topo.admit("b")
        assert not set(a.cores) & set(b.cores)

    def test_duplicate_admit_rejected(self, topo):
        topo.admit("a")
        with pytest.raises(SchedulingError):
            topo.admit("a")

    def test_third_full_width_app_rejected(self, topo):
        topo.admit("a")
        topo.admit("b")
        with pytest.raises(SchedulingError):
            topo.admit("c")  # no socket has 6 free cores

    def test_narrow_groups_share_a_socket(self, topo):
        topo.admit("a", width=3)
        topo.admit("b", width=3)
        c = topo.admit("c", width=3)
        d = topo.admit("d", width=3)
        assert topo.total_free_cores() == 0
        assert not c.dedicated_dimm or not d.dedicated_dimm

    def test_socket_sharing_clears_dedicated_dimm(self, topo):
        a = topo.admit("a", width=3)
        assert a.dedicated_dimm
        topo.admit("b", width=6)  # other socket
        topo.admit("c", width=3)  # must share with a
        assert not topo.group_of("a").dedicated_dimm
        assert not topo.group_of("c").dedicated_dimm
        assert topo.group_of("b").dedicated_dimm

    def test_invalid_width_rejected(self, topo):
        with pytest.raises(ConfigurationError):
            topo.admit("a", width=0)
        with pytest.raises(ConfigurationError):
            topo.admit("b", width=7)


class TestRelease:
    def test_release_frees_cores(self, topo, config):
        topo.admit("a")
        topo.release("a")
        assert topo.total_free_cores() == config.total_cores

    def test_release_restores_dedication(self, topo):
        topo.admit("a", width=3)
        topo.admit("b", width=6)
        topo.admit("c", width=3)
        topo.release("c")
        assert topo.group_of("a").dedicated_dimm

    def test_release_unknown_rejected(self, topo):
        with pytest.raises(SchedulingError):
            topo.release("ghost")

    def test_readmission_after_release(self, topo):
        topo.admit("a")
        topo.admit("b")
        topo.release("a")
        topo.admit("c")  # reuses the freed socket


class TestTasksetMask:
    def test_mask_is_prefix_of_group(self, topo):
        group = topo.admit("a")
        mask = topo.taskset_mask("a", 3)
        assert mask == group.cores[:3]

    def test_full_mask(self, topo):
        group = topo.admit("a")
        assert topo.taskset_mask("a", group.width) == group.cores

    def test_mask_beyond_width_rejected(self, topo):
        topo.admit("a", width=3)
        with pytest.raises(ConfigurationError):
            topo.taskset_mask("a", 4)

    def test_zero_cores_rejected(self, topo):
        topo.admit("a")
        with pytest.raises(ConfigurationError):
            topo.taskset_mask("a", 0)


class TestQueries:
    def test_apps_on_socket(self, topo):
        a = topo.admit("a")
        assert topo.apps_on_socket(a.socket) == ["a"]

    def test_free_cores_on_bad_socket(self, topo):
        with pytest.raises(ConfigurationError):
            topo.free_cores_on_socket(5)

    def test_groups_view_is_a_copy(self, topo):
        topo.admit("a")
        view = topo.groups
        view.clear()
        assert topo.group_of("a")  # unaffected
