"""The discrete-time engine: admission, ticks, progress, completion."""

import pytest

from repro.errors import ConfigurationError, SchedulingError, SimulationError
from repro.server.config import KnobSetting, ServerConfig
from repro.server.server import SimulatedServer


class TestAdmission:
    def test_admit_registers_everywhere(self, server, kmeans):
        server.admit(kmeans)
        assert server.applications() == ["kmeans"]
        assert "kmeans" in server.heartbeats.registered()
        assert server.knobs.knob_of("kmeans") == server.config.max_knob

    def test_duplicate_admission_rejected(self, server, kmeans):
        server.admit(kmeans)
        with pytest.raises(SchedulingError):
            server.admit(kmeans)

    def test_admit_suspended(self, server, kmeans):
        server.admit(kmeans, start_suspended=True)
        assert server.active_applications() == []

    def test_third_app_rolls_back_cleanly(self, server, kmeans, stream, pagerank):
        server.admit(kmeans)
        server.admit(stream)
        with pytest.raises(SchedulingError):
            server.admit(pagerank)
        # The failed admit must leave no residue anywhere.
        assert server.applications() == ["kmeans", "stream"]
        assert "pagerank" not in server.heartbeats.registered()

    def test_remove_returns_handle(self, server, kmeans):
        server.admit(kmeans)
        handle = server.remove("kmeans")
        assert handle.name == "kmeans"
        assert server.applications() == []

    def test_readmission_after_remove(self, server, kmeans):
        server.admit(kmeans)
        server.remove("kmeans")
        server.admit(kmeans)


class TestTick:
    def test_progress_matches_rate(self, server, kmeans):
        server.admit(kmeans)
        result = server.tick(1.0)
        expected = server.perf_model.rate(kmeans, server.config.max_knob)
        assert result.progressed["kmeans"] == pytest.approx(expected)

    def test_clock_advances(self, server, kmeans):
        server.admit(kmeans)
        server.tick(0.5)
        server.tick(0.25)
        assert server.now_s == pytest.approx(0.75)

    def test_suspended_app_makes_no_progress(self, server, kmeans):
        server.admit(kmeans, start_suspended=True)
        result = server.tick(1.0)
        assert result.progressed == {}

    def test_wall_power_matches_model(self, server, kmeans, stream):
        server.admit(kmeans)
        server.admit(stream)
        result = server.tick(0.1)
        expected = server.power_model.server_power_w(
            {
                "kmeans": (kmeans, server.config.max_knob),
                "stream": (stream, server.config.max_knob),
            }
        )
        assert result.breakdown.wall_w == pytest.approx(expected)

    def test_rapl_psys_tracks_wall(self, server, kmeans):
        server.admit(kmeans)
        result = server.tick(0.1)
        assert server.rapl.domain("psys").last_power_w == pytest.approx(
            result.breakdown.wall_w
        )

    def test_heartbeats_follow_progress(self, server, kmeans):
        server.admit(kmeans)
        for _ in range(20):
            server.tick(0.1)
        rate = server.heartbeats.heart_rate("kmeans")
        assert rate == pytest.approx(
            server.perf_model.rate(kmeans, server.config.max_knob), rel=0.05
        )

    def test_nonpositive_tick_rejected(self, server):
        with pytest.raises(ConfigurationError):
            server.tick(0.0)


class TestCompletion:
    def test_app_completes_when_work_done(self, server, kmeans):
        short = kmeans.with_total_work(1.0)
        server.admit(short)
        rate = server.perf_model.rate(short, server.config.max_knob)
        completed = []
        for _ in range(int(2.0 / (0.1 * rate)) + 10):
            result = server.tick(0.1)
            completed.extend(result.completed)
            if completed:
                break
        assert completed == ["kmeans"]
        handle = server.handle_of("kmeans")
        assert handle.completed
        assert handle.progress_fraction == 1.0

    def test_completed_app_stops_drawing_power(self, server, kmeans):
        server.admit(kmeans.with_total_work(0.01))
        server.tick(1.0)  # finishes immediately
        result = server.tick(0.1)
        assert result.breakdown.app_w == {}
        assert result.breakdown.wall_w == pytest.approx(70.0)  # idle + cm

    def test_work_never_overshoots_total(self, server, kmeans):
        server.admit(kmeans.with_total_work(1.0))
        for _ in range(50):
            server.tick(0.1)
        assert server.handle_of("kmeans").work_done == pytest.approx(1.0)


class TestSuspendResumePenalty:
    def test_resume_charges_cache_refill(self, server, kmeans):
        server.admit(kmeans)
        server.tick(0.1)
        server.suspend("kmeans")
        server.tick(0.1)
        server.resume("kmeans")
        result = server.tick(0.1)
        full = server.perf_model.rate(kmeans, server.config.max_knob) * 0.1
        expected = full * (1.0 - server.config.resume_penalty_s / 0.1)
        assert result.progressed["kmeans"] == pytest.approx(expected)

    def test_resume_without_suspend_is_free(self, server, kmeans):
        server.admit(kmeans)
        server.resume("kmeans")
        assert server.handle_of("kmeans").resumes == 0

    def test_resume_counter(self, server, kmeans):
        server.admit(kmeans)
        for _ in range(3):
            server.suspend("kmeans")
            server.resume("kmeans")
        assert server.handle_of("kmeans").resumes == 3


class TestDeepSleep:
    def test_deep_sleep_drops_to_idle(self, server, kmeans):
        server.admit(kmeans, start_suspended=True)
        result = server.tick(0.1, deep_sleep=True)
        assert result.breakdown.wall_w == pytest.approx(server.config.p_idle_w)

    def test_deep_sleep_with_active_apps_rejected(self, server, kmeans):
        server.admit(kmeans)
        with pytest.raises(SimulationError):
            server.tick(0.1, deep_sleep=True)

    def test_wake_penalty_reduces_first_tick_work(self, server, kmeans):
        server.admit(kmeans, start_suspended=True)
        server.tick(0.1, deep_sleep=True)
        server.resume("kmeans")
        result = server.tick(0.1)
        full = server.perf_model.rate(kmeans, server.config.max_knob) * 0.1
        # Both the PC6 wake latency and the resume refill are charged.
        assert result.progressed["kmeans"] < full


class TestCapAssertion:
    def test_within_cap_passes(self, server, kmeans):
        server.admit(kmeans)
        server.tick(0.1)
        server.assert_within_cap(200.0)

    def test_violation_raises(self, server, kmeans):
        server.admit(kmeans)
        server.tick(0.1)
        with pytest.raises(SimulationError):
            server.assert_within_cap(60.0)


class TestTrueResponse:
    def test_oracle_matches_models(self, server, kmeans):
        server.admit(kmeans)
        knob = KnobSetting(1.5, 3, 6.0)
        power, rate = server.true_response("kmeans", knob)
        assert power == pytest.approx(server.power_model.app_power_w(kmeans, knob))
        assert rate == pytest.approx(server.perf_model.rate(kmeans, knob))
