"""Knob controller: validated actuation of f/n/m and suspend/resume."""

import pytest

from repro.errors import KnobError, SchedulingError
from repro.server.config import KnobSetting
from repro.server.knobs import KnobController
from repro.server.rapl import RaplInterface
from repro.server.topology import ServerTopology


@pytest.fixture()
def setup(config):
    topo = ServerTopology(config)
    rapl = RaplInterface(config.sockets)
    knobs = KnobController(config, topo, rapl)
    topo.admit("a")
    topo.admit("b")
    return topo, rapl, knobs


class TestAttachment:
    def test_attach_defaults_to_max_knob(self, setup, config):
        _, _, knobs = setup
        knobs.attach("a")
        assert knobs.knob_of("a") == config.max_knob

    def test_attach_with_initial(self, setup):
        _, _, knobs = setup
        initial = KnobSetting(1.5, 3, 6.0)
        knobs.attach("a", initial)
        assert knobs.knob_of("a") == initial

    def test_attach_requires_admission(self, setup):
        _, _, knobs = setup
        with pytest.raises(SchedulingError):
            knobs.attach("ghost")

    def test_double_attach_rejected(self, setup):
        _, _, knobs = setup
        knobs.attach("a")
        with pytest.raises(SchedulingError):
            knobs.attach("a")

    def test_detach(self, setup):
        _, _, knobs = setup
        knobs.attach("a")
        knobs.detach("a")
        assert knobs.attached() == []


class TestActuation:
    def test_set_frequency_only(self, setup):
        _, _, knobs = setup
        knobs.attach("a")
        knobs.set_frequency("a", 1.4)
        knob = knobs.knob_of("a")
        assert knob.freq_ghz == 1.4
        assert knob.cores == 6

    def test_set_cores_only(self, setup):
        _, _, knobs = setup
        knobs.attach("a")
        knobs.set_cores("a", 3)
        assert knobs.knob_of("a").cores == 3

    def test_set_dram_only(self, setup):
        _, _, knobs = setup
        knobs.attach("a")
        knobs.set_dram_power("a", 5.0)
        assert knobs.knob_of("a").dram_power_w == 5.0

    def test_off_grid_setting_rejected(self, setup):
        _, _, knobs = setup
        knobs.attach("a")
        with pytest.raises(KnobError):
            knobs.set_frequency("a", 1.55)

    def test_cores_beyond_group_rejected(self, setup, config):
        topo, rapl, _ = setup
        narrow_topo = ServerTopology(config)
        narrow_topo.admit("n", width=3)
        narrow = KnobController(config, narrow_topo, RaplInterface(config.sockets))
        narrow.attach("n", KnobSetting(2.0, 3, 10.0))
        with pytest.raises(KnobError):
            narrow.set_cores("n", 4)


class TestDramLimitMirroring:
    def test_attach_pushes_dram_limit(self, setup):
        topo, rapl, knobs = setup
        knobs.attach("a")
        socket = topo.group_of("a").socket
        assert rapl.power_limit(f"dram-{socket}") == 10.0

    def test_set_dram_updates_limit(self, setup):
        topo, rapl, knobs = setup
        knobs.attach("a")
        knobs.set_dram_power("a", 4.0)
        socket = topo.group_of("a").socket
        assert rapl.power_limit(f"dram-{socket}") == 4.0

    def test_shared_socket_sums_limits(self, config):
        topo = ServerTopology(config)
        rapl = RaplInterface(config.sockets)
        knobs = KnobController(config, topo, rapl)
        a = topo.admit("a", width=3)
        topo.admit("filler", width=6)  # occupy the other socket
        topo.admit("c", width=3)  # shares with a
        knobs.attach("a", KnobSetting(2.0, 3, 6.0))
        knobs.attach("c", KnobSetting(2.0, 3, 4.0))
        assert rapl.power_limit(f"dram-{a.socket}") == 10.0


class TestSuspendResume:
    def test_suspend_removes_from_running(self, setup):
        _, _, knobs = setup
        knobs.attach("a")
        knobs.attach("b")
        knobs.suspend("a")
        assert knobs.running_apps() == ["b"]
        assert knobs.is_suspended("a")

    def test_resume_restores(self, setup):
        _, _, knobs = setup
        knobs.attach("a")
        knobs.suspend("a")
        knobs.resume("a")
        assert knobs.running_apps() == ["a"]

    def test_suspend_is_idempotent(self, setup):
        _, _, knobs = setup
        knobs.attach("a")
        knobs.suspend("a")
        knobs.suspend("a")
        assert knobs.is_suspended("a")

    def test_unknown_app_rejected(self, setup):
        _, _, knobs = setup
        with pytest.raises(SchedulingError):
            knobs.suspend("ghost")
