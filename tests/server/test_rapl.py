"""RAPL interface: counters, limits, violations, noise, wraparound."""

import pytest

from repro.errors import ConfigurationError
from repro.server.rapl import (
    ENERGY_WRAP_J,
    RaplDomain,
    RaplInterface,
    energy_delta_j,
)


@pytest.fixture()
def rapl():
    return RaplInterface(sockets=2)


class TestDomains:
    def test_expected_domains_exist(self, rapl):
        assert rapl.domain_names == [
            "dram-0",
            "dram-1",
            "package-0",
            "package-1",
            "psys",
        ]

    def test_unknown_domain_rejected(self, rapl):
        with pytest.raises(ConfigurationError):
            rapl.domain("package-7")

    def test_needs_at_least_one_socket(self):
        with pytest.raises(ConfigurationError):
            RaplInterface(sockets=0)


class TestCounters:
    def test_energy_accumulates(self, rapl):
        rapl.advance({"psys": 100.0}, 2.0)
        rapl.advance({"psys": 50.0}, 1.0)
        assert rapl.read_energy_j("psys") == pytest.approx(250.0)

    def test_counters_are_monotonic(self, rapl):
        values = []
        for _ in range(5):
            rapl.advance({"package-0": 30.0}, 0.1)
            values.append(rapl.read_energy_j("package-0"))
        assert values == sorted(values)

    def test_missing_domains_accumulate_zero(self, rapl):
        rapl.advance({"psys": 100.0}, 1.0)
        assert rapl.read_energy_j("dram-0") == 0.0

    def test_negative_power_rejected(self, rapl):
        with pytest.raises(ConfigurationError):
            rapl.advance({"psys": -1.0}, 1.0)

    def test_time_cannot_go_backwards(self, rapl):
        with pytest.raises(ConfigurationError):
            rapl.advance({"psys": 1.0}, -0.1)


class TestPowerReadings:
    def test_noise_free_reading_is_exact(self, rapl):
        rapl.advance({"psys": 88.0}, 0.1)
        assert rapl.read_power_w("psys") == 88.0

    def test_noisy_readings_vary_but_stay_nonnegative(self):
        noisy = RaplInterface(sockets=1, noise_std_w=5.0, seed=42)
        noisy.advance({"psys": 1.0}, 0.1)
        readings = [noisy.read_power_w("psys") for _ in range(50)]
        assert min(readings) >= 0.0
        assert len(set(readings)) > 1

    def test_noise_is_seeded(self):
        a = RaplInterface(sockets=1, noise_std_w=2.0, seed=7)
        b = RaplInterface(sockets=1, noise_std_w=2.0, seed=7)
        a.advance({"psys": 50.0}, 0.1)
        b.advance({"psys": 50.0}, 0.1)
        assert a.read_power_w("psys") == b.read_power_w("psys")

    def test_negative_noise_std_rejected(self):
        with pytest.raises(ConfigurationError):
            RaplInterface(sockets=1, noise_std_w=-1.0)


class TestLimits:
    def test_set_and_read_limit(self, rapl):
        rapl.set_power_limit("dram-0", 7.0)
        assert rapl.power_limit("dram-0") == 7.0

    def test_clear_limit(self, rapl):
        rapl.set_power_limit("dram-0", 7.0)
        rapl.set_power_limit("dram-0", None)
        assert rapl.power_limit("dram-0") is None

    def test_nonpositive_limit_rejected(self, rapl):
        with pytest.raises(ConfigurationError):
            rapl.set_power_limit("dram-0", 0.0)

    def test_violation_detection(self, rapl):
        rapl.set_power_limit("package-0", 20.0)
        rapl.advance({"package-0": 25.0}, 0.1)
        assert rapl.violations() == ["package-0"]

    def test_no_violation_at_limit(self, rapl):
        rapl.set_power_limit("package-0", 20.0)
        rapl.advance({"package-0": 20.0}, 0.1)
        assert rapl.violations() == []

    def test_uncapped_domain_never_violates(self, rapl):
        rapl.advance({"package-0": 1000.0}, 0.1)
        assert rapl.violations() == []


class TestWraparound:
    """The 32-bit ``energy_uj`` counter wraps ~every 54 s at 80 W; consumers
    must difference with :func:`energy_delta_j`, never raw subtraction."""

    def test_wrap_range_matches_hardware_register(self):
        assert ENERGY_WRAP_J == pytest.approx(2**32 * 1e-6)

    def test_counter_wraps_at_range(self):
        dom = RaplDomain("psys", wrap_range_j=100.0)
        dom.advance(30.0, 3.0)  # 90 J
        dom.advance(30.0, 1.0)  # +30 J -> 120 J -> wraps to 20 J
        assert dom.energy_j == pytest.approx(20.0)

    def test_counter_stays_below_range_under_long_accumulation(self):
        dom = RaplDomain("psys")
        for _ in range(200):
            dom.advance(80.0, 0.5)  # 8 kJ total: crosses the wrap once
        assert 0.0 <= dom.energy_j < ENERGY_WRAP_J

    def test_delta_without_wrap(self):
        assert energy_delta_j(50.0, 20.0) == pytest.approx(30.0)

    def test_delta_across_wrap(self):
        assert energy_delta_j(5.0, 95.0, wrap_range_j=100.0) == pytest.approx(10.0)

    def test_delta_recovers_true_energy_across_wrap(self):
        dom = RaplDomain("psys", wrap_range_j=100.0)
        dom.advance(40.0, 2.0)  # 80 J
        before = dom.energy_j
        dom.advance(40.0, 1.0)  # +40 J, wraps
        assert dom.energy_j < before  # raw subtraction would go negative
        assert energy_delta_j(
            dom.energy_j, before, wrap_range_j=100.0
        ) == pytest.approx(40.0)

    def test_bad_wrap_range_rejected(self):
        with pytest.raises(ConfigurationError):
            energy_delta_j(1.0, 0.0, wrap_range_j=0.0)

    def test_interface_domains_use_hardware_wrap_range(self, rapl):
        assert rapl.domain("psys").wrap_range_j == ENERGY_WRAP_J
