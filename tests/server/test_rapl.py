"""RAPL interface: counters, limits, violations, noise."""

import pytest

from repro.errors import ConfigurationError
from repro.server.rapl import RaplInterface


@pytest.fixture()
def rapl():
    return RaplInterface(sockets=2)


class TestDomains:
    def test_expected_domains_exist(self, rapl):
        assert rapl.domain_names == [
            "dram-0",
            "dram-1",
            "package-0",
            "package-1",
            "psys",
        ]

    def test_unknown_domain_rejected(self, rapl):
        with pytest.raises(ConfigurationError):
            rapl.domain("package-7")

    def test_needs_at_least_one_socket(self):
        with pytest.raises(ConfigurationError):
            RaplInterface(sockets=0)


class TestCounters:
    def test_energy_accumulates(self, rapl):
        rapl.advance({"psys": 100.0}, 2.0)
        rapl.advance({"psys": 50.0}, 1.0)
        assert rapl.read_energy_j("psys") == pytest.approx(250.0)

    def test_counters_are_monotonic(self, rapl):
        values = []
        for _ in range(5):
            rapl.advance({"package-0": 30.0}, 0.1)
            values.append(rapl.read_energy_j("package-0"))
        assert values == sorted(values)

    def test_missing_domains_accumulate_zero(self, rapl):
        rapl.advance({"psys": 100.0}, 1.0)
        assert rapl.read_energy_j("dram-0") == 0.0

    def test_negative_power_rejected(self, rapl):
        with pytest.raises(ConfigurationError):
            rapl.advance({"psys": -1.0}, 1.0)

    def test_time_cannot_go_backwards(self, rapl):
        with pytest.raises(ConfigurationError):
            rapl.advance({"psys": 1.0}, -0.1)


class TestPowerReadings:
    def test_noise_free_reading_is_exact(self, rapl):
        rapl.advance({"psys": 88.0}, 0.1)
        assert rapl.read_power_w("psys") == 88.0

    def test_noisy_readings_vary_but_stay_nonnegative(self):
        noisy = RaplInterface(sockets=1, noise_std_w=5.0, seed=42)
        noisy.advance({"psys": 1.0}, 0.1)
        readings = [noisy.read_power_w("psys") for _ in range(50)]
        assert min(readings) >= 0.0
        assert len(set(readings)) > 1

    def test_noise_is_seeded(self):
        a = RaplInterface(sockets=1, noise_std_w=2.0, seed=7)
        b = RaplInterface(sockets=1, noise_std_w=2.0, seed=7)
        a.advance({"psys": 50.0}, 0.1)
        b.advance({"psys": 50.0}, 0.1)
        assert a.read_power_w("psys") == b.read_power_w("psys")

    def test_negative_noise_std_rejected(self):
        with pytest.raises(ConfigurationError):
            RaplInterface(sockets=1, noise_std_w=-1.0)


class TestLimits:
    def test_set_and_read_limit(self, rapl):
        rapl.set_power_limit("dram-0", 7.0)
        assert rapl.power_limit("dram-0") == 7.0

    def test_clear_limit(self, rapl):
        rapl.set_power_limit("dram-0", 7.0)
        rapl.set_power_limit("dram-0", None)
        assert rapl.power_limit("dram-0") is None

    def test_nonpositive_limit_rejected(self, rapl):
        with pytest.raises(ConfigurationError):
            rapl.set_power_limit("dram-0", 0.0)

    def test_violation_detection(self, rapl):
        rapl.set_power_limit("package-0", 20.0)
        rapl.advance({"package-0": 25.0}, 0.1)
        assert rapl.violations() == ["package-0"]

    def test_no_violation_at_limit(self, rapl):
        rapl.set_power_limit("package-0", 20.0)
        rapl.advance({"package-0": 20.0}, 0.1)
        assert rapl.violations() == []

    def test_uncapped_domain_never_violates(self, rapl):
        rapl.advance({"package-0": 1000.0}, 0.1)
        assert rapl.violations() == []
