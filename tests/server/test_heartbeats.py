"""Heartbeats: registration, windowed rates, decay, noise."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.server.heartbeats import HeartbeatMonitor


@pytest.fixture()
def monitor():
    return HeartbeatMonitor(window_s=2.0)


class TestRegistration:
    def test_register_and_list(self, monitor):
        monitor.register("a")
        monitor.register("b")
        assert monitor.registered() == ["a", "b"]

    def test_duplicate_registration_rejected(self, monitor):
        monitor.register("a")
        with pytest.raises(SchedulingError):
            monitor.register("a")

    def test_unregister(self, monitor):
        monitor.register("a")
        monitor.unregister("a")
        assert monitor.registered() == []

    def test_unregister_unknown_rejected(self, monitor):
        with pytest.raises(SchedulingError):
            monitor.unregister("ghost")

    def test_emit_for_unknown_rejected(self, monitor):
        with pytest.raises(SchedulingError):
            monitor.emit("ghost", 0.1, 1.0)


class TestRates:
    def test_steady_rate(self, monitor):
        monitor.register("a")
        for i in range(1, 41):
            monitor.emit("a", i * 0.1, 0.5)  # 5 beats/s
        assert monitor.heart_rate("a") == pytest.approx(5.0, rel=0.05)

    def test_rate_decays_to_zero_when_suspended(self, monitor):
        monitor.register("a")
        for i in range(1, 21):
            monitor.emit("a", i * 0.1, 1.0)
        assert monitor.heart_rate("a") > 0
        for i in range(21, 60):
            monitor.emit("a", i * 0.1, 0.0)  # suspended
        assert monitor.heart_rate("a") == 0.0

    def test_empty_history_rate_is_zero(self, monitor):
        monitor.register("a")
        assert monitor.heart_rate("a") == 0.0

    def test_total_beats_accumulate(self, monitor):
        monitor.register("a")
        for i in range(1, 11):
            monitor.emit("a", i * 0.1, 2.0)
        assert monitor.total_beats("a") == pytest.approx(20.0)

    def test_negative_beats_rejected(self, monitor):
        monitor.register("a")
        with pytest.raises(ConfigurationError):
            monitor.emit("a", 0.1, -1.0)


class TestEmitValidation:
    """A lying or corrupted reporter must fail loudly, never skew a rate."""

    @pytest.mark.parametrize("beats", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_beats_rejected(self, monitor, beats):
        monitor.register("a")
        with pytest.raises(ConfigurationError, match="non-finite heartbeat count"):
            monitor.emit("a", 0.1, beats)

    @pytest.mark.parametrize("time_s", [float("nan"), float("inf")])
    def test_non_finite_timestamp_rejected(self, monitor, time_s):
        monitor.register("a")
        with pytest.raises(ConfigurationError, match="non-finite heartbeat timestamp"):
            monitor.emit("a", time_s, 1.0)

    def test_duplicate_tick_report_rejected(self, monitor):
        monitor.register("a")
        monitor.emit("a", 0.1, 1.0)
        with pytest.raises(ConfigurationError, match="duplicate heartbeat report"):
            monitor.emit("a", 0.1, 1.0)  # would double-count silently

    def test_time_travel_rejected(self, monitor):
        monitor.register("a")
        monitor.emit("a", 0.2, 1.0)
        with pytest.raises(ConfigurationError, match="already reported through"):
            monitor.emit("a", 0.1, 1.0)

    def test_rejected_report_leaves_totals_untouched(self, monitor):
        monitor.register("a")
        monitor.emit("a", 0.1, 1.0)
        with pytest.raises(ConfigurationError):
            monitor.emit("a", 0.1, float("nan"))
        assert monitor.total_beats("a") == pytest.approx(1.0)
        monitor.emit("a", 0.2, 1.0)  # the stream recovers after the reject
        assert monitor.total_beats("a") == pytest.approx(2.0)


class TestNoise:
    def test_noise_is_seeded_and_nonnegative(self):
        a = HeartbeatMonitor(noise_relative_std=0.1, seed=3)
        b = HeartbeatMonitor(noise_relative_std=0.1, seed=3)
        for m in (a, b):
            m.register("x")
            m.emit("x", 0.1, 1.0)
        assert a.heart_rate("x") == b.heart_rate("x")
        assert a.heart_rate("x") >= 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            HeartbeatMonitor(window_s=0.0)

    def test_invalid_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            HeartbeatMonitor(noise_relative_std=-0.1)
