"""Shared fixtures: the default server, models, and catalog profiles.

Also provides a SIGALRM-based per-test timeout fallback for environments
without ``pytest-timeout`` (CI installs the real plugin and passes
``--timeout``; the fallback keeps a hung mediator from wedging a local run).
"""

from __future__ import annotations

import importlib.util
import signal

import pytest

_HAS_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None
_FALLBACK_TIMEOUT_S = 120


if not _HAS_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(item):
        marker = item.get_closest_marker("timeout")
        limit = int(marker.args[0]) if marker and marker.args else _FALLBACK_TIMEOUT_S

        def _expired(signum, frame):
            raise TimeoutError(f"test exceeded the {limit} s fallback timeout")

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.alarm(limit)
        try:
            return (yield)
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)

from repro.server.config import ServerConfig
from repro.server.perf_model import PerformanceModel
from repro.server.power_model import PowerModel
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG


@pytest.fixture(scope="session")
def config() -> ServerConfig:
    """The paper's Table I platform (shared; it is immutable)."""
    return ServerConfig()


@pytest.fixture(scope="session")
def perf_model(config: ServerConfig) -> PerformanceModel:
    return PerformanceModel(config)


@pytest.fixture(scope="session")
def power_model(config: ServerConfig, perf_model: PerformanceModel) -> PowerModel:
    return PowerModel(config, perf_model)


@pytest.fixture()
def server(config: ServerConfig) -> SimulatedServer:
    """A fresh noise-free server per test."""
    return SimulatedServer(config)


@pytest.fixture(params=("scalar", "vector"))
def engine(request) -> str:
    """Both server-model implementations.

    Fixtures built on this (``make_mediator``, and any test requesting it
    directly) run twice - once per engine - so every behaviour they pin is
    continuously proven engine-independent, complementing the dedicated
    differential suite in ``tests/engine/``.
    """
    return request.param


@pytest.fixture()
def make_mediator(config: ServerConfig, engine: str):
    """Shared tiny-run factory: a mediator on a fresh server.

    The seconds-long mediator runs that used to be re-declared per test
    module. Keyword arguments pass through to :class:`PowerMediator`;
    ESD-using policies get the default battery unless one is supplied.
    """
    from repro.core.mediator import PowerMediator
    from repro.core.policies import make_policy
    from repro.core.simulation import default_battery

    def make(policy: str = "app+res-aware", cap: float = 100.0, **kwargs):
        server = SimulatedServer(config, engine=engine)
        policy_obj = make_policy(policy)
        battery = (
            default_battery() if policy_obj.uses_esd else kwargs.pop("battery", None)
        )
        return PowerMediator(
            server,
            policy_obj,
            cap,
            battery=battery,
            use_oracle_estimates=kwargs.pop("use_oracle_estimates", True),
            **kwargs,
        )

    return make


@pytest.fixture()
def apps(stream, kmeans):
    """The default two-app tiny mix (chaos/service harness runs)."""
    return [stream, kmeans]


@pytest.fixture(scope="session")
def service_cfg() -> dict:
    """Small, fast service recipe: modest load, tight checkpoint cadence."""
    return dict(
        rate_per_s=0.4,
        clients=3,
        ingest_capacity=6,
        drain_per_tick=2,
        cap_levels=(90.0, 105.0),
        cap_change_every_s=8.0,
        checkpoint_every_ticks=50,
        telemetry_every_ticks=20,
    )


@pytest.fixture(scope="session")
def kmeans():
    return CATALOG["kmeans"]


@pytest.fixture(scope="session")
def stream():
    return CATALOG["stream"]


@pytest.fixture(scope="session")
def pagerank():
    return CATALOG["pagerank"]


@pytest.fixture(scope="session")
def sssp():
    return CATALOG["sssp"]
