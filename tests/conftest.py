"""Shared fixtures: the default server, models, and catalog profiles.

Also provides a SIGALRM-based per-test timeout fallback for environments
without ``pytest-timeout`` (CI installs the real plugin and passes
``--timeout``; the fallback keeps a hung mediator from wedging a local run).
"""

from __future__ import annotations

import importlib.util
import signal

import pytest

_HAS_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None
_FALLBACK_TIMEOUT_S = 120


if not _HAS_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(item):
        marker = item.get_closest_marker("timeout")
        limit = int(marker.args[0]) if marker and marker.args else _FALLBACK_TIMEOUT_S

        def _expired(signum, frame):
            raise TimeoutError(f"test exceeded the {limit} s fallback timeout")

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.alarm(limit)
        try:
            return (yield)
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)

from repro.server.config import ServerConfig
from repro.server.perf_model import PerformanceModel
from repro.server.power_model import PowerModel
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG


@pytest.fixture(scope="session")
def config() -> ServerConfig:
    """The paper's Table I platform (shared; it is immutable)."""
    return ServerConfig()


@pytest.fixture(scope="session")
def perf_model(config: ServerConfig) -> PerformanceModel:
    return PerformanceModel(config)


@pytest.fixture(scope="session")
def power_model(config: ServerConfig, perf_model: PerformanceModel) -> PowerModel:
    return PowerModel(config, perf_model)


@pytest.fixture()
def server(config: ServerConfig) -> SimulatedServer:
    """A fresh noise-free server per test."""
    return SimulatedServer(config)


@pytest.fixture(scope="session")
def kmeans():
    return CATALOG["kmeans"]


@pytest.fixture(scope="session")
def stream():
    return CATALOG["stream"]


@pytest.fixture(scope="session")
def pagerank():
    return CATALOG["pagerank"]


@pytest.fixture(scope="session")
def sssp():
    return CATALOG["sssp"]
