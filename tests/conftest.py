"""Shared fixtures: the default server, models, and catalog profiles."""

from __future__ import annotations

import pytest

from repro.server.config import ServerConfig
from repro.server.perf_model import PerformanceModel
from repro.server.power_model import PowerModel
from repro.server.server import SimulatedServer
from repro.workloads.catalog import CATALOG


@pytest.fixture(scope="session")
def config() -> ServerConfig:
    """The paper's Table I platform (shared; it is immutable)."""
    return ServerConfig()


@pytest.fixture(scope="session")
def perf_model(config: ServerConfig) -> PerformanceModel:
    return PerformanceModel(config)


@pytest.fixture(scope="session")
def power_model(config: ServerConfig, perf_model: PerformanceModel) -> PowerModel:
    return PowerModel(config, perf_model)


@pytest.fixture()
def server(config: ServerConfig) -> SimulatedServer:
    """A fresh noise-free server per test."""
    return SimulatedServer(config)


@pytest.fixture(scope="session")
def kmeans():
    return CATALOG["kmeans"]


@pytest.fixture(scope="session")
def stream():
    return CATALOG["stream"]


@pytest.fixture(scope="session")
def pagerank():
    return CATALOG["pagerank"]


@pytest.fixture(scope="session")
def sssp():
    return CATALOG["sssp"]
