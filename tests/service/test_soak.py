"""The ISSUE 6 acceptance soak, plus a tier-1 miniature of it.

The miniature runs the same scenario - open-loop traffic with diurnal
modulation and overload bursts, client churn, mid-stream kills with torn
journal tails - at a few hundred ticks so it rides in the default suite.
The full 50k-tick soak is opt-in (``REPRO_SOAK=1``); CI runs it as a
scheduled job and publishes the metrics artifact.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.chaos import ChurnSchedule, run_service_soak, service_kill_ticks
from repro.errors import ChaosError
from repro.service import ServiceConfig
from repro.workloads import BurstWindow

SOAK = os.environ.get("REPRO_SOAK") == "1"


def _config(**overrides):
    base = dict(
        rate_per_s=0.5,
        clients=4,
        diurnal_amplitude=0.3,
        diurnal_period_s=120.0,
        ingest_capacity=8,
        backpressure="shed-oldest",
        drain_per_tick=2,
        overload_drain_per_tick=1,
        bursts=(BurstWindow(10.0, 16.0, 40.0), BurstWindow(40.0, 45.0, 40.0)),
        cap_levels=(90.0, 110.0, 80.0),
        cap_change_every_s=15.0,
        checkpoint_every_ticks=100,
        telemetry_every_ticks=25,
        work_scale=0.05,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def test_schedules_are_deterministic():
    assert service_kill_ticks(1000, 3, 7) == service_kill_ticks(1000, 3, 7)
    a = ChurnSchedule(clients=4, total_ticks=500, events=6, seed=3)
    b = ChurnSchedule(clients=4, total_ticks=500, events=6, seed=3)
    ticks = [t for t in range(900) if a.at(t)]
    assert ticks and [a.at(t) for t in ticks] == [b.at(t) for t in ticks]
    assert a.event_count == 12  # a disconnect and a reconnect per event


def test_miniature_soak(tmp_path):
    report = run_service_soak(
        _config(),
        tmp_path,
        total_ticks=600,
        kills=2,
        churn_events=6,
        chaos_seed=7,
        tear_journal_bytes=256,
        expect_sheds=True,
        expect_overload=True,
    )
    assert report.restarts == 2
    assert report.replayed_ticks > 0
    assert report.shed_commands > 0
    assert report.replayed_deliveries > 0
    assert report.counters["service.ingest.safety_shed"] == 0
    assert report.counters["service.commands.cap_applied"] == 3


def test_soak_rejects_unmet_expectations(tmp_path):
    # No bursts -> no sheds -> expect_sheds must fail loudly.
    with pytest.raises(ChaosError, match="shed none"):
        run_service_soak(
            _config(bursts=()),
            tmp_path,
            total_ticks=200,
            kills=1,
            churn_events=2,
            chaos_seed=1,
            expect_sheds=True,
        )


@pytest.mark.soak
@pytest.mark.timeout(900)
@pytest.mark.skipif(not SOAK, reason="set REPRO_SOAK=1 to run the full soak")
def test_acceptance_soak_50k(tmp_path):
    """ISSUE 6 acceptance: a seeded 50k-tick open-loop soak with client
    churn, ingest overload, and mid-stream supervisor kill/restart holds
    the cap at every tick, keeps footprints bounded, never sheds a
    cap-safety command, replays every reconnect gap-free, and stitches a
    trace that hashes identically to the uninterrupted run."""
    config = _config(
        diurnal_period_s=600.0,
        bursts=(
            BurstWindow(300.0, 330.0, 40.0),
            BurstWindow(1800.0, 1840.0, 40.0),
            BurstWindow(3900.0, 3930.0, 40.0),
        ),
        cap_change_every_s=120.0,
        checkpoint_every_ticks=1000,
    )
    report = run_service_soak(
        config,
        tmp_path,
        total_ticks=50_000,
        kills=3,
        churn_events=12,
        chaos_seed=2020,
        tear_journal_bytes=512,
        expect_sheds=True,
        expect_overload=True,
    )
    assert report.ticks == 50_000
    assert report.restarts == 3
    assert report.counters["service.ingest.safety_shed"] == 0
    assert report.shed_commands > 0
    assert report.replayed_deliveries > 0
    out = os.environ.get("REPRO_SOAK_REPORT")
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "ticks": report.ticks,
                    "kill_ticks": list(report.kill_ticks),
                    "restarts": report.restarts,
                    "replayed_ticks": report.replayed_ticks,
                    "breach_ticks": report.breach_ticks,
                    "shed_commands": report.shed_commands,
                    "replayed_deliveries": report.replayed_deliveries,
                    "trace_hash": report.trace_hash,
                    "counters": report.counters,
                },
                handle,
                indent=2,
                sort_keys=True,
            )
