"""Client sessions: sequencing, replay-on-reconnect, gap detection."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.observability.metrics import MetricsRegistry
from repro.service import ClientSession, SessionRegistry
from repro.service.sessions import Delivery


def _registry(clients=3, window=16):
    return SessionRegistry(clients=clients, window=window, metrics=MetricsRegistry())


def test_deliveries_are_sequenced_per_client():
    registry = _registry()
    for tick in range(3):
        registry.deliver(0, tick, "ack", {"n": tick})
    registry.deliver(1, 0, "ack", {})
    assert registry.session(0).next_seq == 3
    assert registry.session(1).next_seq == 1
    assert registry.session(0).delivered_through == 2  # connected: consumed live
    assert registry.session(0).pending == 0


def test_unknown_client_is_loud():
    registry = _registry()
    with pytest.raises(ServiceError, match="unknown client"):
        registry.deliver(7, 0, "ack", {})
    with pytest.raises(ConfigurationError):
        ClientSession(0, window=0)


def test_disconnect_accrues_and_reconnect_replays_gap_free():
    registry = _registry()
    registry.deliver(0, 0, "ack", {"n": 0})
    registry.disconnect(0)
    for tick in range(1, 5):
        registry.deliver(0, tick, "telemetry", {"n": tick})
    session = registry.session(0)
    assert session.delivered_through == 0  # frozen while away
    assert session.pending == 4
    missed = registry.reconnect(0)
    assert [d.seq for d in missed] == [1, 2, 3, 4]
    assert [d.payload["n"] for d in missed] == [1, 2, 3, 4]
    assert session.delivered_through == 4
    assert registry.reconnect(0) == []  # idempotent


def test_reconnect_detects_window_overrun():
    registry = _registry(window=4)
    registry.deliver(0, 0, "ack", {})
    registry.disconnect(0)
    for tick in range(6):  # more than the window retains
        registry.deliver(0, tick, "telemetry", {})
    with pytest.raises(ServiceError, match="replay gap"):
        registry.reconnect(0)


def test_reconnect_detects_fully_evicted_window():
    session = ClientSession(0, window=2)
    session.deliver(0, "ack", {})
    session.disconnect()
    session.deliver(1, "a", {})
    session.deliver(2, "b", {})
    session.deliver(3, "c", {})  # seq 1 evicted; cursor still at 0
    with pytest.raises(ServiceError, match="replay gap"):
        session.reconnect()


def test_broadcast_reaches_disconnected_sessions():
    registry = _registry(clients=2)
    registry.disconnect(1)
    registry.broadcast(5, "telemetry", {"tick": 5})
    assert registry.session(0).delivered_through == 0
    assert registry.session(1).pending == 1
    missed = registry.reconnect(1)
    assert len(missed) == 1 and missed[0].kind == "telemetry"


def test_counters_track_session_traffic():
    registry = _registry(clients=2)
    metrics = registry._metrics
    registry.deliver(0, 0, "ack", {})
    registry.disconnect(0)
    registry.disconnect(0)  # idempotent: counted once
    registry.deliver(0, 1, "ack", {})
    registry.reconnect(0)
    assert metrics.counter("service.sessions.deliveries").value == 2
    assert metrics.counter("service.sessions.disconnects").value == 1
    assert metrics.counter("service.sessions.reconnects").value == 1
    assert metrics.counter("service.sessions.replayed").value == 1


def test_state_round_trip_preserves_cursors():
    registry = _registry(clients=2, window=8)
    registry.deliver(0, 0, "ack", {"n": 0})
    registry.disconnect(0)
    registry.deliver(0, 1, "ack", {"n": 1})
    state = json.loads(json.dumps(registry.state_dict()))
    restored = _registry(clients=2, window=8)
    restored.load_state_dict(state)
    session = restored.session(0)
    assert session.connected is False
    assert session.next_seq == 2
    assert session.delivered_through == 0
    missed = restored.reconnect(0)
    assert [d.payload["n"] for d in missed] == [1]
    assert Delivery.from_dict(missed[0].to_dict()) == missed[0]
