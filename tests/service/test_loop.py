"""The service event loop: pipeline semantics, config validation, recovery."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.persistence.segments import read_segmented
from repro.service import MediatorService, ServiceConfig, ServiceKilled
from repro.workloads import BurstWindow

# The small, fast recipe lives in the shared ``service_cfg`` fixture
# (tests/conftest.py); tests override individual keys inline.


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ServiceConfig(policy="does-not-exist")
    with pytest.raises(ConfigurationError):
        ServiceConfig(rate_per_s=float("inf"))
    with pytest.raises(ConfigurationError):
        ServiceConfig(backpressure="drop-newest")
    with pytest.raises(ConfigurationError):
        ServiceConfig(cap_levels=(90.0, -1.0))
    with pytest.raises(ConfigurationError):
        ServiceConfig(drain_per_tick=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(overload_enter_fraction=0.3, overload_exit_fraction=0.5)


def test_open_loop_run_admits_and_completes_jobs(service_cfg, tmp_path):
    config = ServiceConfig(**{**service_cfg, "work_scale": 0.02})
    service = MediatorService(config, tmp_path)
    service.run_for_ticks(400)
    service.close()
    counters = dict(service.metrics.counters())
    assert service.tick == 400
    assert service.mediator.tick_count == 400
    assert counters["service.admit.admitted"] >= 1
    assert counters["service.jobs.completed"] >= 1
    assert counters["service.sessions.deliveries"] > 0


def test_cap_schedule_flows_through_the_safety_lane(service_cfg, tmp_path):
    config = ServiceConfig(**service_cfg)
    service = MediatorService(config, tmp_path)
    service.run_for_ticks(200)  # cap changes at ticks 80 and 160
    service.close()
    counters = dict(service.metrics.counters())
    assert counters["service.commands.cap_applied"] == 2
    assert counters["service.ingest.safety_accepted"] == 2
    assert service.mediator.p_cap_w == 105.0  # second level in force
    # The provisioner got an acknowledgement for each change.
    provisioner = service.sessions.session(config.provisioner_client)
    assert provisioner.next_seq >= 2


def test_identical_runs_hash_identically(service_cfg, tmp_path):
    a = MediatorService(ServiceConfig(**service_cfg), tmp_path / "a")
    b = MediatorService(ServiceConfig(**service_cfg), tmp_path / "b")
    a.run_for_ticks(150)
    b.run_for_ticks(150)
    a.close()
    b.close()
    assert a.content_hash() == b.content_hash()
    assert dict(a.metrics.counters()) == dict(b.metrics.counters())


def test_journal_records_the_command_stream(service_cfg, tmp_path):
    service = MediatorService(ServiceConfig(**service_cfg), tmp_path)
    service.run_for_ticks(120)
    service.close()
    records = read_segmented(service.journal_dir)
    ops = [r["op"] for r in records]
    assert ops[0] == "meta"
    assert ops.count("tick") == 120
    assert ops.count("checkpoint") >= 2  # tick 0 + every 50
    commands = [r for r in records if r["op"] == "command"]
    assert commands, "drained commands must be journaled write-ahead"
    kinds = {c["command"]["kind"] for c in commands}
    assert "set-cap" in kinds
    # Command indices are the global drain sequence: strictly increasing.
    indices = [c["index"] for c in commands]
    assert indices == sorted(indices)


def test_kill_and_warm_restart_is_invisible_in_the_stream(service_cfg, tmp_path):
    baseline = MediatorService(ServiceConfig(**service_cfg), tmp_path / "base")
    baseline.run_for_ticks(160)
    baseline.close()

    def killer(tick, fired=[]):
        if tick == 77 and not fired:
            fired.append(tick)
            raise ServiceKilled("chaos")

    chaos = MediatorService(
        ServiceConfig(**service_cfg),
        tmp_path / "chaos",
        tick_hook=killer,
        tear_journal_bytes_on_crash=128,
    )
    chaos.run_for_ticks(160)
    chaos.close()
    assert chaos.tick == 160
    assert chaos.content_hash() == baseline.content_hash()
    counters = dict(chaos.metrics.counters())
    assert counters["service.restarts"] == 1
    assert counters["service.replayed_ticks"] >= 1
    # Sim-side accounting matches the uninterrupted run exactly.
    base_counters = dict(baseline.metrics.counters())
    for name in ("service.sessions.deliveries", "service.admit.admitted",
                 "service.commands.cap_applied", "service.ingest.accepted"):
        assert counters.get(name) == base_counters.get(name), name


def test_block_policy_defers_bursts_without_loss(service_cfg, tmp_path):
    config = ServiceConfig(
        **{**service_cfg, "backpressure": "block", "ingest_capacity": 3, "drain_per_tick": 1,
           "overload_drain_per_tick": 1,
           "bursts": (BurstWindow(2.0, 5.0, 60.0),)},
    )
    service = MediatorService(config, tmp_path)
    service.run_for_ticks(300)
    service.close()
    counters = dict(service.metrics.counters())
    assert counters.get("service.ingest.deferred", 0) > 0
    assert counters.get("service.ingest.shed", 0) == 0
    assert counters.get("service.ingest.rejected", 0) == 0
    # Everything offered was eventually accepted or is still carried over.
    assert counters["service.ingest.accepted"] > 0


def test_run_for_ticks_validates(service_cfg, tmp_path):
    service = MediatorService(ServiceConfig(**service_cfg), tmp_path)
    with pytest.raises(ConfigurationError):
        service.run_for_ticks(0)
    service.close()
