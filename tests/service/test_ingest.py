"""Ingest buffer: backpressure policies, the safety lane, overload hysteresis."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.observability.metrics import MetricsRegistry
from repro.service import BACKPRESSURE_POLICIES, IngestBuffer
from repro.service.commands import (
    CancelJob,
    SetCapCommand,
    SubmitJob,
    command_from_dict,
    command_to_dict,
    is_cap_safety,
)
from repro.service.ingest import ACCEPTED, DEFERRED, REJECTED
from repro.workloads.catalog import CATALOG


def _submit(i):
    return SubmitJob(client=0, client_seq=i, profile=CATALOG["stream"])


def _buffer(policy, capacity=3, **kwargs):
    return IngestBuffer(
        capacity=capacity, policy=policy, metrics=MetricsRegistry(), **kwargs
    )


def test_validation():
    with pytest.raises(ConfigurationError):
        _buffer("reject", capacity=0)
    with pytest.raises(ConfigurationError):
        _buffer("round-robin")
    with pytest.raises(ConfigurationError):
        _buffer("reject", overload_enter_fraction=0.4, overload_exit_fraction=0.5)
    with pytest.raises(ConfigurationError):
        SetCapCommand(client=0, client_seq=0, p_cap_w=float("nan"))
    with pytest.raises(ConfigurationError):
        SubmitJob(client=-1, client_seq=0, profile=CATALOG["stream"])
    with pytest.raises(ConfigurationError):
        CancelJob(client=0, client_seq=0, app="")


def test_commands_round_trip_through_journal_form():
    commands = [
        _submit(0),
        CancelJob(client=1, client_seq=4, app="stream#c0j0"),
        SetCapCommand(client=9, client_seq=2, p_cap_w=80.0),
    ]
    for command in commands:
        assert command_from_dict(command_to_dict(command)) == command
    with pytest.raises(ServiceError):
        command_from_dict({"kind": "advance"})


@pytest.mark.parametrize("policy", BACKPRESSURE_POLICIES)
def test_accepts_until_full(policy):
    buffer = _buffer(policy)
    for i in range(3):
        assert buffer.offer(_submit(i)) == (ACCEPTED, None)
    assert buffer.occupancy == 3


def test_reject_policy_refuses_overflow():
    buffer = _buffer("reject")
    for i in range(3):
        buffer.offer(_submit(i))
    assert buffer.offer(_submit(3)) == (REJECTED, None)
    assert buffer.occupancy == 3
    assert buffer._metrics.counter("service.ingest.rejected").value == 1


def test_block_policy_defers_overflow():
    buffer = _buffer("block")
    for i in range(3):
        buffer.offer(_submit(i))
    assert buffer.offer(_submit(3)) == (DEFERRED, None)
    assert buffer.occupancy == 3  # the deferred command stays outside
    buffer.pop_regular(1)
    assert buffer.offer(_submit(3)) == (ACCEPTED, None)


def test_shed_oldest_policy_evicts_for_freshness():
    buffer = _buffer("shed-oldest")
    for i in range(3):
        buffer.offer(_submit(i))
    disposition, victim = buffer.offer(_submit(3))
    assert disposition == ACCEPTED
    assert victim == _submit(0)  # oldest goes
    drained = buffer.pop_regular(10)
    assert [c.client_seq for c in drained] == [1, 2, 3]
    assert buffer._metrics.counter("service.ingest.shed").value == 1


def test_safety_lane_is_never_full():
    buffer = _buffer("reject", capacity=1)
    buffer.offer(_submit(0))
    for seq in range(10):  # far past the regular capacity
        cap = SetCapCommand(client=9, client_seq=seq, p_cap_w=70.0 + seq)
        assert is_cap_safety(cap)
        assert buffer.offer(cap) == (ACCEPTED, None)
    assert buffer.safety_occupancy == 10
    assert buffer.occupancy == 1
    drained = buffer.pop_safety()
    assert len(drained) == 10 and buffer.safety_occupancy == 0
    assert buffer._metrics.counter("service.ingest.safety_accepted").value == 10
    # Shedding never touched safety even while the regular lane overflowed.
    assert buffer._metrics.counter("service.ingest.shed").value == 0


def test_overload_hysteresis():
    buffer = _buffer("reject", capacity=10)
    for i in range(7):
        buffer.offer(_submit(i))
    assert buffer.refresh_overload() is None  # 0.7 < enter 0.8
    buffer.offer(_submit(7))
    assert buffer.refresh_overload() == "enter"  # 0.8
    buffer.pop_regular(2)
    assert buffer.refresh_overload() is None  # 0.6 still above exit 0.5
    buffer.pop_regular(1)
    assert buffer.refresh_overload() == "exit"  # 0.5
    assert buffer.refresh_overload() is None


def test_state_round_trip():
    buffer = _buffer("shed-oldest")
    buffer.offer(_submit(0))
    buffer.offer(SetCapCommand(client=9, client_seq=0, p_cap_w=85.0))
    buffer.overloaded = True
    state = buffer.state_dict()
    import json

    state = json.loads(json.dumps(state))  # must ride in a JSON checkpoint
    restored = _buffer("shed-oldest")
    restored.load_state_dict(state)
    assert restored.occupancy == 1
    assert restored.safety_occupancy == 1
    assert restored.overloaded is True
    assert restored.pop_safety()[0].p_cap_w == 85.0
