"""Service mode and adversarial tenants: the submit-side declaration, its
codec, and the mediator defenses firing inside the event loop."""

from __future__ import annotations

import pytest

from repro.adversary.plan import AdversarySpec
from repro.core.trust import TrustState
from repro.errors import AdversaryError
from repro.service import MediatorService, ServiceConfig
from repro.service.commands import SubmitJob, command_from_dict, command_to_dict
from repro.workloads.catalog import CATALOG

ADV = {
    "app": "stream", "kind": "probe", "start_s": 2.0, "duration_s": 20.0,
    "magnitude": 12.0, "period_s": 1.0, "burst_s": 0.3, "seed": 0,
}


def submit(i=0, profile=None, adversary=None):
    return SubmitJob(
        client=0, client_seq=i,
        profile=profile or CATALOG["stream"],
        adversary=adversary,
    )


class TestCommandValidation:
    def test_adversary_field_round_trips_through_the_codec(self):
        cmd = submit(adversary=dict(ADV))
        doc = command_to_dict(cmd)
        assert doc["adversary"]["kind"] == "probe"
        restored = command_from_dict(doc)
        assert restored.adversary == cmd.adversary
        assert restored.adversary_spec() == AdversarySpec.from_dict(ADV)

    def test_honest_submit_has_no_spec(self):
        assert submit().adversary_spec() is None

    def test_app_name_mismatch_rejected(self):
        with pytest.raises(AdversaryError, match="targets"):
            submit(profile=CATALOG["kmeans"], adversary=dict(ADV))

    def test_invalid_spec_rejected_at_the_boundary(self):
        with pytest.raises(AdversaryError, match="submit.adversary"):
            submit(adversary={**ADV, "magnitude": -1.0})


class TestServiceDefense:
    def test_adversarial_submit_is_admitted_then_quarantined(self, tmp_path):
        """An adversarial tenant enters through the normal admission path;
        the declaration programs the simulation while the mediator's own
        defenses (which never read it) catch and quarantine the tenant."""
        config = ServiceConfig(
            rate_per_s=1e-9,  # effectively no background offers: we drive admission
            clients=1,
            cap_levels=(),
            checkpoint_every_ticks=200,
        )
        service = MediatorService(config, tmp_path)
        honest = SubmitJob(client=0, client_seq=0, profile=CATALOG["kmeans"])
        attacker = SubmitJob(
            client=0, client_seq=1, profile=CATALOG["stream"],
            adversary=dict(ADV),
        )
        service._offer_all(0, [honest, attacker])
        service.run_for_ticks(150)
        service.close()

        counters = dict(service.metrics.counters())
        assert counters["service.admit.admitted"] == 2
        assert counters["service.admit.adversarial"] == 1
        trust = service.mediator.trust
        assert trust.state_of("stream") is TrustState.QUARANTINED
        assert trust.state_of("kmeans") is TrustState.TRUSTED
        mediator_counters = service.mediator.export_metrics()["counters"]
        assert mediator_counters["defense.transitions.quarantined"] >= 1

    def test_adversary_declaration_survives_the_journal(self, tmp_path):
        """The journal carries the declaration verbatim, so replay re-arms
        the same attack (register_adversary is idempotent on replay)."""
        from repro.persistence.segments import read_segmented

        config = ServiceConfig(
            rate_per_s=1e-9, clients=1, cap_levels=(),
            checkpoint_every_ticks=200,
        )
        service = MediatorService(config, tmp_path)
        service._offer_all(0, [submit(adversary=dict(ADV))])
        service.run_for_ticks(20)
        service.close()

        journaled = [
            doc["command"] for doc in read_segmented(service.journal_dir)
            if doc.get("op") == "command"
            and doc["command"].get("kind") == "submit"
            and "adversary" in doc["command"]
        ]
        assert len(journaled) == 1
        assert command_from_dict(journaled[0]).adversary_spec() == (
            AdversarySpec.from_dict(ADV)
        )
