"""Retention: trace sealing/compaction, segment pruning, checkpoint pruning."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, TraceError
from repro.observability import StreamingTraceBus, TraceBus
from repro.observability.metrics import MetricsRegistry
from repro.persistence import SegmentedJournalWriter, list_segments
from repro.service import RetentionConfig, RetentionManager


def test_config_validation():
    with pytest.raises(ConfigurationError):
        RetentionConfig(retain_trace_events=0)
    with pytest.raises(ConfigurationError):
        RetentionConfig(keep_checkpoints=0)


def _emit_ticks(bus, ticks, *, start=0):
    for tick in range(start, start + ticks):
        bus.begin_tick(tick, tick * 0.1)
        bus.emit("tick", {"time_s": tick * 0.1, "cap_w": 100.0, "wall_w": 50.0})


def test_streaming_bus_hash_is_compaction_invariant():
    """Sealing + evicting the prefix must not change the content hash."""
    plain = TraceBus()
    streaming = StreamingTraceBus(retain_events=8)
    _emit_ticks(plain, 50)
    _emit_ticks(streaming, 50)
    streaming.set_seal_mark(streaming.mark())
    streaming.compact()
    assert streaming.retained_events <= 8
    assert streaming.sealed_events > 0
    assert streaming.content_hash() == plain.content_hash()
    # More events after compaction still extend the same hash stream.
    _emit_ticks(plain, 10, start=50)
    _emit_ticks(streaming, 10, start=50)
    assert streaming.content_hash() == plain.content_hash()


def test_streaming_bus_never_seals_past_the_mark():
    bus = StreamingTraceBus(retain_events=4)
    _emit_ticks(bus, 20)
    bus.set_seal_mark(10)
    bus.compact()
    # Events at seq >= 10 are unsealable: they may still be truncated.
    assert bus.sealed_through <= 10
    assert bus.truncate_to_mark(10) == 10  # drops retained seqs 10..19
    with pytest.raises(TraceError):
        bus.truncate_to_mark(bus.sealed_through - 1)
    with pytest.raises(TraceError):
        bus.set_seal_mark(5)  # the seal mark is monotone


def test_retention_pass_bounds_everything(tmp_path):
    metrics = MetricsRegistry()
    config = RetentionConfig(
        retain_trace_events=8, records_per_segment=5, keep_checkpoints=2
    )
    manager = RetentionManager(config, metrics=metrics)

    bus = StreamingTraceBus(retain_events=8)
    _emit_ticks(bus, 40)
    journal_dir = tmp_path / "journal"
    writer = SegmentedJournalWriter(journal_dir, records_per_segment=5)
    writer.append_meta(dt_s=0.1)
    for tick in range(30):
        writer.append_tick(tick)
    writer.close()
    checkpoint_dir = tmp_path / "checkpoints"
    checkpoint_dir.mkdir()
    for tick in (100, 200, 300, 400):
        (checkpoint_dir / f"svc-{tick:08d}.json").write_text("{}")

    manager.run(
        bus=bus,
        journal_dir=journal_dir,
        checkpoint_dir=checkpoint_dir,
        safe_seq=23,
        safe_mark=30,
    )
    # Only the sealable prefix (seq < safe_mark 30) may be evicted: 10 of
    # the 40 events must stay, even though the soft cap is 8.
    assert bus.retained_events == 10
    assert bus.sealed_through == 30
    segments = list_segments(journal_dir)
    # Segments wholly before seq 23 are gone; the one holding 23 survives.
    assert all(int(s.name.split("-")[1].split(".")[0]) + 5 > 23 for s in segments[:-1])
    assert metrics.counter("service.retention.segments_pruned").value == 4
    names = sorted(p.name for p in checkpoint_dir.glob("svc-*.json"))
    assert names == ["svc-00000300.json", "svc-00000400.json"]
    assert metrics.gauge("service.retention.journal_segments").value == len(segments)
    assert metrics.gauge("service.retention.trace_events").value == bus.retained_events


def test_trace_spill_sink_receives_evicted_events(tmp_path):
    sink = tmp_path / "spill.jsonl"
    bus = StreamingTraceBus(retain_events=4, sink_path=sink)
    _emit_ticks(bus, 20)
    bus.set_seal_mark(bus.mark())
    bus.compact()
    bus.close_sink()
    lines = sink.read_text().splitlines()
    assert len(lines) >= 16  # everything evicted landed in the sink
    import json

    seqs = [json.loads(line)["seq"] for line in lines if json.loads(line)["seq"] is not None]
    assert seqs == sorted(seqs)
