"""The command-line interface: every subcommand runs and prints its report."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mix", "--policy", "heracles"])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["utility", "--app", "doom"])


class TestSubcommands:
    def test_mix(self, capsys):
        code = main(
            [
                "mix", "--mix", "10", "--cap", "100", "--oracle",
                "--duration", "6", "--warmup", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "pagerank" in out and "kmeans" in out
        assert "server throughput" in out

    def test_compare(self, capsys):
        code = main(
            [
                "compare", "--cap", "100", "--mixes", "10",
                "--policies", "util-unaware,app+res-aware",
                "--oracle", "--duration", "6", "--warmup", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "util-unaware" in out and "app+res-aware" in out
        assert "relative to util-unaware" in out

    def test_utility(self, capsys):
        code = main(["utility", "--app", "stream"])
        out = capsys.readouterr().out
        assert code == 0
        assert "memory" in out
        assert "demand" in out

    def test_calibrate(self, capsys):
        code = main(["calibrate", "--fractions", "0.05,0.10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "10%" in out
        assert "power RMSE" in out

    def test_dynamic(self, capsys):
        code = main(
            [
                "dynamic", "--rate", "0.05", "--horizon", "60",
                "--work", "20", "--oracle", "--cap", "100",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "admitted" in out
        assert "mean normalized throughput" in out

    @pytest.mark.slow
    def test_cluster_fast(self, capsys):
        code = main(["cluster", "--fast"])
        out = capsys.readouterr().out
        assert code == 0
        assert "equal-ours" in out


class TestClusterNetsimFlags:
    def test_chaos_soak_passthrough(self, capsys):
        code = main(["cluster", "--chaos", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "partition chaos soak" in out
        assert "held the budget invariant" in out

    def test_malformed_partition_exits_2(self, capsys):
        code = main(["cluster", "--fast", "--partition", "bogus"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: --partition")
        assert len(captured.err.strip().splitlines()) == 1

    def test_malformed_outage_exits_2(self, capsys):
        code = main(["cluster", "--fast", "--outage", "0:5:2"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: --outage")

    def test_overlapping_outages_exit_2_naming_the_field(self, capsys):
        code = main(
            ["cluster", "--fast", "--outage", "1:0:20", "--outage", "1:10:30"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "outages[1].start_step" in captured.err
        assert "server 1" in captured.err

    @pytest.mark.slow
    def test_netsim_run_traces_control_plane(self, capsys, tmp_path):
        trace_path = tmp_path / "clu.jsonl"
        code = main(
            [
                "cluster", "--fast", "--loss", "0.2",
                "--partition", "3:8:1+2", "--outage", "0:6:10",
                "--trace-out", str(trace_path),
                "--metrics-out", str(tmp_path / "clu-metrics.json"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "over lossy net" in out
        assert trace_path.exists()
        code = main(["trace", "summarize", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "control plane:" in out
        assert "command=" in out and "ack=" in out


class TestHierarchy:
    def test_tree_replay_prints_level_table(self, capsys):
        code = main(
            ["hierarchy", "--fanouts", "3,4", "--steps", "60",
             "--loss", "0.2", "--outage", "0:10:30"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3 x 4 = 12 servers" in out
        assert "pdu" in out and "server" in out
        assert "mediation quality" in out
        assert "never above budget" in out

    def test_chaos_soak_passthrough(self, capsys):
        code = main(["hierarchy", "--fanouts", "2,3", "--chaos", "2",
                     "--steps", "80"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hierarchy chaos soak" in out
        assert "held the delegation invariant" in out

    def test_unknown_outage_path_exits_2_naming_it(self, capsys):
        code = main(["hierarchy", "--fanouts", "3,4", "--outage", "9:0:10"])
        captured = capsys.readouterr()
        assert code == 2
        assert "node 9 does not exist" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_malformed_fanouts_exit_2(self, capsys):
        code = main(["hierarchy", "--fanouts", "abc"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: --fanouts")

    def test_trace_summarize_groups_hierarchy_events(self, capsys, tmp_path):
        trace_path = tmp_path / "hier.jsonl"
        code = main(
            ["hierarchy", "--fanouts", "2,3", "--steps", "60",
             "--loss", "0.25", "--trace-out", str(trace_path)]
        )
        capsys.readouterr()
        assert code == 0
        code = main(["trace", "summarize", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "hierarchy:" in out
        assert "level=" in out


class TestServe:
    def test_serve_runs_the_open_loop_service(self, capsys, tmp_path):
        import json

        metrics_path = tmp_path / "serve-metrics.json"
        code = main(
            [
                "serve", "--ticks", "300", "--rate", "0.4", "--clients", "2",
                "--work-scale", "0.02", "--cap-levels", "90,105",
                "--cap-every", "8", "--checkpoint-every", "100",
                "--metrics-out", str(metrics_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "service: 300 ticks" in out
        assert "ingest:" in out
        assert "caps applied 3" in out
        assert "trace sha256" in out
        counters = json.loads(metrics_path.read_text())
        assert counters["service.commands.cap_applied"] == 3
        assert counters["service.ingest.safety_shed"] == 0

    def test_serve_with_chaos_runs_the_soak_harness(self, capsys):
        code = main(
            [
                "serve", "--ticks", "300", "--rate", "0.4", "--clients", "2",
                "--work-scale", "0.02", "--kills", "1", "--churn", "2",
                "--chaos-seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "service soak: 300 ticks" in out
        assert "1 warm restarts" in out
        assert "stitched trace == uninterrupted baseline" in out

    def test_serve_malformed_burst_exits_2(self, capsys):
        code = main(["serve", "--ticks", "10", "--burst", "bogus"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: --burst")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_serve_bad_config_exits_2(self, capsys):
        code = main(["serve", "--ticks", "10", "--rate", "-1"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err


class TestExtensionSubcommands:
    def test_place(self, capsys):
        code = main(["place", "--caps", "120,85", "--jobs", "stream,kmeans"])
        out = capsys.readouterr().out
        assert code == 0
        assert "power-aware" in out
        assert "s0(120W)" in out

    def test_place_unknown_job_fails_loudly(self, capsys):
        code = main(["place", "--jobs", "doom"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: unknown application")
        assert "Traceback" not in captured.err

    def test_zones(self, capsys):
        code = main(["zones", "--mix", "1", "--limits", "14,11", "--duration", "15"])
        out = capsys.readouterr().out
        assert code == 0
        assert "stream" in out and "kmeans" in out
        assert "wall power" in out

    def test_zones_wrong_limit_count(self):
        with pytest.raises(SystemExit):
            main(["zones", "--mix", "1", "--limits", "14"])


class TestFaultsFlag:
    def test_mix_with_default_plan_prints_resilience(self, capsys):
        code = main(
            [
                "mix", "--mix", "10", "--cap", "80", "--faults", "default",
                "--duration", "8", "--warmup", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "faults" in out and "recovered" in out
        assert "breach ticks" in out

    def test_mix_without_faults_prints_no_resilience(self, capsys):
        code = main(
            ["mix", "--mix", "10", "--cap", "100", "--duration", "6", "--warmup", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "breach ticks" not in out

    def test_mix_with_json_plan_file(self, capsys, tmp_path):
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan(
            specs=(
                FaultSpec(kind="telemetry", mode="drop", start_s=3.0, duration_s=2.0),
            ),
            seed=5,
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        code = main(
            [
                "mix", "--mix", "10", "--cap", "80",
                "--faults", str(path), "--duration", "8", "--warmup", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "degraded telemetry" in out

    def test_missing_plan_file_fails_loudly(self, capsys):
        code = main(
            ["mix", "--mix", "10", "--cap", "80", "--faults", "/no/such/plan.json"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_dynamic_with_default_plan(self, capsys):
        code = main(
            [
                "dynamic", "--cap", "100", "--faults", "default",
                "--horizon", "60",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "faults" in out


def _mix_args(trace_path, metrics_path=None, extra=()):
    args = [
        "mix", "--mix", "10", "--cap", "80", "--oracle",
        "--duration", "4", "--warmup", "2",
        "--trace-out", str(trace_path),
    ]
    if metrics_path is not None:
        args += ["--metrics-out", str(metrics_path)]
    return args + list(extra)


class TestObservabilityFlags:
    def test_mix_writes_trace_and_metrics(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "run.jsonl"
        metrics_path = tmp_path / "run-metrics.json"
        code = main(_mix_args(trace_path, metrics_path))
        out = capsys.readouterr().out
        assert code == 0
        assert "sha256" in out
        assert trace_path.exists() and metrics_path.exists()
        doc = json.loads(metrics_path.read_text())
        assert doc["counters"]["mediator.ticks"] == 60
        assert "learn" in doc["profile"]

    def test_mix_trace_is_deterministic_across_invocations(self, capsys, tmp_path):
        path_a, path_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(_mix_args(path_a)) == 0
        assert main(_mix_args(path_b)) == 0
        capsys.readouterr()
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_supervised_mix_traces_with_checkpoint_meta(self, capsys, tmp_path):
        trace_path = tmp_path / "sup.jsonl"
        code = main(
            _mix_args(
                trace_path,
                extra=["--checkpoint-dir", str(tmp_path / "ckpt"),
                       "--checkpoint-every", "20"],
            )
        )
        capsys.readouterr()
        assert code == 0
        assert '"checkpoint"' in trace_path.read_text()

    def test_trace_summarize(self, capsys, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        main(_mix_args(trace_path))
        capsys.readouterr()
        code = main(["trace", "summarize", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "verified ok" in out
        assert "ticks 60" in out
        assert "modes:" in out

    def test_trace_summarize_pairs_metrics_hot_phases(self, capsys, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        metrics_path = tmp_path / "run-metrics.json"
        main(_mix_args(trace_path, metrics_path))
        capsys.readouterr()
        code = main(
            ["trace", "summarize", str(trace_path), "--metrics", str(metrics_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "hottest phases" in out
        assert "p95" in out
        assert "calls" in out
        # Top-3, never more: one line per phase under the header.
        phase_lines = [l for l in out.splitlines() if l.startswith("  ")]
        assert 1 <= len(phase_lines) <= 3

    def test_trace_summarize_missing_metrics_file_exits_2(self, capsys, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        main(_mix_args(trace_path))
        capsys.readouterr()
        code = main(
            ["trace", "summarize", str(trace_path), "--metrics", "/nonexistent.json"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    def test_trace_summarize_corrupt_metrics_file_exits_2(self, capsys, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        main(_mix_args(trace_path))
        capsys.readouterr()
        bad = tmp_path / "bad-metrics.json"
        bad.write_text("{not json")
        code = main(["trace", "summarize", str(trace_path), "--metrics", str(bad)])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert "not valid JSON" in captured.err

    def test_trace_summarize_missing_file_exits_2(self, capsys):
        code = main(["trace", "summarize", "/nonexistent/run.jsonl"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_trace_summarize_corrupt_file_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"seq": 0\n')
        code = main(["trace", "summarize", str(bad)])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert "line 1" in captured.err

    def test_trace_summarize_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "frobnicate", "x.jsonl"])

    def test_chaos_trace_flag_reports_stitching(self, capsys, tmp_path):
        code = main(
            [
                "chaos", "--mix", "10", "--cap", "80", "--oracle",
                "--runs", "1", "--kills", "1",
                "--duration", "4", "--warmup", "2",
                "--checkpoint-every", "15", "--trace",
                "--metrics-out", str(tmp_path / "soak.json"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trace-stitched" in out
        assert (tmp_path / "soak.json").exists()


class TestAdversary:
    def test_adversary_single_kind(self, capsys):
        code = main(["adversary", "--kind", "probe", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "adversary defense:" in out
        assert "probe" in out
        assert "false-positive rate 0%" in out

    def test_adversary_metrics_out(self, capsys, tmp_path):
        import json

        metrics_path = tmp_path / "adv-metrics.json"
        code = main(
            ["adversary", "--kind", "spike", "--no-undefended",
             "--metrics-out", str(metrics_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "defense delta" in out and "n/a" in out
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["defense.transitions.quarantined"] >= 1

    def test_adversary_unknown_mix_exits_2(self, capsys):
        code = main(["adversary", "--kind", "probe", "--mix", "99"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    def test_adversary_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adversary", "--kind", "ddos"])

    def test_trace_summarize_groups_adversary_events(self, capsys, tmp_path):
        from repro.adversary.plan import default_adversary_schedule
        from repro.core.simulation import run_mix_experiment
        from repro.observability.trace import TraceBus, write_trace
        from repro.workloads.mixes import get_mix

        bus = TraceBus()
        run_mix_experiment(
            list(get_mix(1).profiles()),
            "app+res-aware",
            108.0,
            mix_id=1,
            duration_s=6.0,
            warmup_s=2.0,
            use_oracle_estimates=True,
            seed=0,
            trace_bus=bus,
            adversaries=default_adversary_schedule("stream", kind="probe",
                                                   start_s=2.0),
        )
        path = tmp_path / "adv.jsonl"
        write_trace(str(path), bus.events)
        code = main(["trace", "summarize", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "adversary/defense:" in out
        assert "attack-start=1" in out
        assert "quarantine=" in out

    def test_trace_summarize_tolerates_unknown_kinds(self, capsys, tmp_path):
        from repro.observability.trace import TraceBus, TraceEvent, write_trace

        bus = TraceBus()
        bus.begin_tick(0, 0.0)
        bus.emit("tick", {"time_s": 0.0, "cap_w": 100.0, "wall_w": 50.0,
                          "mode": "space", "soc": None})
        events = list(bus.events)
        events.append(
            TraceEvent(seq=1, tick=0, time_s=0.0, kind="from-the-future",
                       payload={})
        )
        path = tmp_path / "future.jsonl"
        write_trace(str(path), events)
        code = main(["trace", "summarize", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "other: 1 events of unrecognized kinds" in out
