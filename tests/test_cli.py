"""The command-line interface: every subcommand runs and prints its report."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mix", "--policy", "heracles"])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["utility", "--app", "doom"])


class TestSubcommands:
    def test_mix(self, capsys):
        code = main(
            [
                "mix", "--mix", "10", "--cap", "100", "--oracle",
                "--duration", "6", "--warmup", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "pagerank" in out and "kmeans" in out
        assert "server throughput" in out

    def test_compare(self, capsys):
        code = main(
            [
                "compare", "--cap", "100", "--mixes", "10",
                "--policies", "util-unaware,app+res-aware",
                "--oracle", "--duration", "6", "--warmup", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "util-unaware" in out and "app+res-aware" in out
        assert "relative to util-unaware" in out

    def test_utility(self, capsys):
        code = main(["utility", "--app", "stream"])
        out = capsys.readouterr().out
        assert code == 0
        assert "memory" in out
        assert "demand" in out

    def test_calibrate(self, capsys):
        code = main(["calibrate", "--fractions", "0.05,0.10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "10%" in out
        assert "power RMSE" in out

    def test_dynamic(self, capsys):
        code = main(
            [
                "dynamic", "--rate", "0.05", "--horizon", "60",
                "--work", "20", "--oracle", "--cap", "100",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "admitted" in out
        assert "mean normalized throughput" in out

    @pytest.mark.slow
    def test_cluster_fast(self, capsys):
        code = main(["cluster", "--fast"])
        out = capsys.readouterr().out
        assert code == 0
        assert "equal-ours" in out


class TestExtensionSubcommands:
    def test_place(self, capsys):
        code = main(["place", "--caps", "120,85", "--jobs", "stream,kmeans"])
        out = capsys.readouterr().out
        assert code == 0
        assert "power-aware" in out
        assert "s0(120W)" in out

    def test_place_unknown_job_fails_loudly(self):
        with pytest.raises(Exception):
            main(["place", "--jobs", "doom"])

    def test_zones(self, capsys):
        code = main(["zones", "--mix", "1", "--limits", "14,11", "--duration", "15"])
        out = capsys.readouterr().out
        assert code == 0
        assert "stream" in out and "kmeans" in out
        assert "wall power" in out

    def test_zones_wrong_limit_count(self):
        with pytest.raises(SystemExit):
            main(["zones", "--mix", "1", "--limits", "14"])


class TestFaultsFlag:
    def test_mix_with_default_plan_prints_resilience(self, capsys):
        code = main(
            [
                "mix", "--mix", "10", "--cap", "80", "--faults", "default",
                "--duration", "8", "--warmup", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "faults" in out and "recovered" in out
        assert "breach ticks" in out

    def test_mix_without_faults_prints_no_resilience(self, capsys):
        code = main(
            ["mix", "--mix", "10", "--cap", "100", "--duration", "6", "--warmup", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "breach ticks" not in out

    def test_mix_with_json_plan_file(self, capsys, tmp_path):
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan(
            specs=(
                FaultSpec(kind="telemetry", mode="drop", start_s=3.0, duration_s=2.0),
            ),
            seed=5,
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        code = main(
            [
                "mix", "--mix", "10", "--cap", "80",
                "--faults", str(path), "--duration", "8", "--warmup", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "degraded telemetry" in out

    def test_missing_plan_file_fails_loudly(self):
        with pytest.raises(SystemExit):
            main(["mix", "--mix", "10", "--cap", "80", "--faults", "/no/such/plan.json"])

    def test_dynamic_with_default_plan(self, capsys):
        code = main(
            [
                "dynamic", "--cap", "100", "--faults", "default",
                "--horizon", "60",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "faults" in out
