"""ASCII timeline rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.analysis.timeline import render_modes, render_power_timeline, render_series
from repro.core.coordinator import CoordinationMode
from repro.core.mediator import TickRecord


def record(t, wall, cap=100.0, apps=None, mode=CoordinationMode.SPACE):
    return TickRecord(
        time_s=t,
        p_cap_w=cap,
        wall_w=wall,
        mode=mode,
        app_power_w=apps or {},
        app_knobs={},
        progressed={},
        battery_soc=None,
    )


class TestRenderSeries:
    def test_basic_strip(self):
        text = render_series("wall", [0.0, 1.0, 2.0], [10.0, 20.0, 30.0])
        assert text.startswith("        wall |")
        assert "peak 30.0" in text
        assert "[0s..2s]" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series("x", [], [])

    def test_mismatched_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series("x", [0.0], [1.0, 2.0])

    def test_narrow_width_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series("x", [0.0], [1.0], width=2)

    def test_downsampling_preserves_strip_width(self):
        text = render_series("x", list(range(1000)), [1.0] * 1000, width=40)
        strip = text.split("|")[1]
        assert len(strip) == 40

    def test_zero_series_renders_blank(self):
        text = render_series("x", [0.0, 1.0], [0.0, 0.0])
        strip = text.split("|")[1]
        assert set(strip) == {" "}

    def test_ceiling_scales_glyphs(self):
        low = render_series("x", [0.0, 1.0], [5.0, 5.0], ceiling=100.0)
        high = render_series("x", [0.0, 1.0], [5.0, 5.0], ceiling=5.0)
        assert low.split("|")[1] != high.split("|")[1]


class TestRenderPowerTimeline:
    def test_includes_wall_and_apps(self):
        timeline = [
            record(t * 0.1, 90.0, apps={"kmeans": 15.0, "stream": 12.0})
            for t in range(50)
        ]
        text = render_power_timeline(timeline)
        assert "wall [W]" in text
        assert "kmeans" in text and "stream" in text
        assert "(cap 100 W)" in text

    def test_app_filter(self):
        timeline = [
            record(t * 0.1, 90.0, apps={"kmeans": 15.0, "stream": 12.0})
            for t in range(20)
        ]
        text = render_power_timeline(timeline, apps=["kmeans"])
        assert "stream" not in text

    def test_silent_apps_omitted(self):
        timeline = [record(t * 0.1, 70.0, apps={"idle-app": 0.0}) for t in range(20)]
        text = render_power_timeline(timeline)
        assert "idle-app" not in text

    def test_empty_timeline_rejected(self):
        with pytest.raises(ConfigurationError):
            render_power_timeline([])


class TestRenderModes:
    def test_mode_glyphs(self):
        timeline = [
            record(0.0, 90.0, mode=CoordinationMode.SPACE),
            record(0.1, 80.0, mode=CoordinationMode.TIME),
            record(0.2, 70.0, mode=CoordinationMode.ESD),
            record(0.3, 50.0, mode=CoordinationMode.IDLE),
        ]
        text = render_modes(timeline)
        for glyph in ("S", "T", "E", "."):
            assert glyph in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_modes([])

    def test_end_to_end_with_mediator(self, config):
        """The renderer consumes a real mediator timeline."""
        from repro.core.mediator import PowerMediator
        from repro.core.policies import make_policy
        from repro.server.server import SimulatedServer
        from repro.workloads.catalog import CATALOG

        server = SimulatedServer(config)
        mediator = PowerMediator(
            server, make_policy("app+res-aware"), 100.0, use_oracle_estimates=True
        )
        mediator.add_application(
            CATALOG["kmeans"].with_total_work(float("inf")), skip_overhead=True
        )
        mediator.run_for(2.0)
        text = render_power_timeline(mediator.timeline)
        assert "kmeans" in text
        assert render_modes(mediator.timeline).count("S") > 0
