"""Result export: JSON/CSV serialization."""

import csv
import json

import pytest

from repro.errors import ConfigurationError
from repro.analysis.export import comparison_to_csv, results_to_json, timeline_to_csv
from repro.core.simulation import MixExperimentResult


def result(mix_id=1, policy="util-unaware"):
    return MixExperimentResult(
        mix_id=mix_id,
        policy=policy,
        p_cap_w=100.0,
        normalized_throughput={"a": 0.7, "b": 0.6},
        power_share={"a": 0.45, "b": 0.55},
        server_throughput=1.3,
        mean_wall_power_w=98.5,
    )


class TestJson:
    def test_dataclass_round_trip(self, tmp_path):
        path = tmp_path / "r.json"
        results_to_json(result(), path)
        data = json.loads(path.read_text())
        assert data["policy"] == "util-unaware"
        assert data["normalized_throughput"]["a"] == 0.7

    def test_nested_comparison(self, tmp_path):
        comparison = {1: {"util-unaware": result(), "app+res-aware": result(policy="app+res-aware")}}
        path = tmp_path / "c.json"
        results_to_json(comparison, path)
        data = json.loads(path.read_text())
        assert set(data["1"]) == {"util-unaware", "app+res-aware"}

    def test_numpy_scalars_serialized(self, tmp_path):
        import numpy as np

        path = tmp_path / "n.json"
        results_to_json({"value": np.float64(1.5), "count": np.int64(3)}, path)
        data = json.loads(path.read_text())
        assert data == {"value": 1.5, "count": 3}

    def test_calibration_points(self, tmp_path, config):
        from repro.learning.crossval import calibrate_sampling_fraction
        from repro.workloads.catalog import CATALOG

        points = calibrate_sampling_fraction(
            config, list(CATALOG.values()), [0.05], seed=1
        )
        path = tmp_path / "cal.json"
        results_to_json(points, path)
        data = json.loads(path.read_text())
        assert data[0]["fraction"] == 0.05


class TestCsv:
    def test_comparison_long_format(self, tmp_path):
        comparison = {
            1: {"util-unaware": result()},
            2: {"util-unaware": result(mix_id=2)},
        }
        path = tmp_path / "c.csv"
        comparison_to_csv(comparison, path)
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == 4  # 2 mixes x 1 policy x 2 apps
        assert rows[0]["app"] == "a"
        assert float(rows[0]["power_share"]) == 0.45

    def test_empty_comparison_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            comparison_to_csv({}, tmp_path / "x.csv")

    def test_timeline_csv(self, tmp_path, config):
        from repro.core.mediator import PowerMediator
        from repro.core.policies import make_policy
        from repro.server.server import SimulatedServer
        from repro.workloads.catalog import CATALOG

        server = SimulatedServer(config)
        mediator = PowerMediator(
            server, make_policy("app+res-aware"), 100.0, use_oracle_estimates=True
        )
        mediator.add_application(
            CATALOG["kmeans"].with_total_work(float("inf")), skip_overhead=True
        )
        mediator.run_for(1.0)
        path = tmp_path / "t.csv"
        timeline_to_csv(mediator.timeline, path)
        rows = list(csv.DictReader(path.open()))
        server_rows = [r for r in rows if r["app"] == "_server"]
        app_rows = [r for r in rows if r["app"] == "kmeans"]
        assert len(server_rows) == 10
        assert len(app_rows) == 10
        assert all(float(r["power_w"]) <= 100.0 for r in server_rows)

    def test_empty_timeline_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            timeline_to_csv([], tmp_path / "x.csv")
