"""Report formatting: tables, series, banners."""

import pytest

from repro.errors import ConfigurationError
from repro.analysis.reporting import banner, format_series, format_table


class TestBanner:
    def test_contains_title(self):
        assert "Fig. 8" in banner("Fig. 8")

    def test_width(self):
        assert len(banner("x", width=40)) == 40


class TestTable:
    def test_basic_rendering(self):
        text = format_table(["mix", "value"], [[1, 0.5], [2, 1.25]])
        lines = text.splitlines()
        assert "mix" in lines[0] and "value" in lines[0]
        assert "0.500" in text and "1.250" in text

    def test_column_alignment(self):
        text = format_table(["a", "b"], [["xxxxx", 1.0]])
        header, rule, row = text.splitlines()
        assert len(header) == len(rule) == len(row)

    def test_custom_float_format(self):
        text = format_table(["v"], [[0.123456]], float_format="{:.1f}")
        assert "0.1" in text

    def test_ragged_row_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestSeries:
    def test_pairs_rendered(self):
        text = format_series("rapl", [15, 30], [0.9, 0.5])
        assert "(15, 0.9000)" in text
        assert "(30, 0.5000)" in text
        assert "rapl" in text

    def test_labels(self):
        text = format_series("s", [1], [1.0], x_label="shave", y_label="perf")
        assert "shave -> perf" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            format_series("s", [1, 2], [1.0])
