"""Metric aggregation over experiment results."""

import pytest

from repro.errors import ConfigurationError
from repro.analysis.metrics import (
    mean_server_throughput,
    power_split_stats,
    speedup_over,
    summarize_policies,
)
from repro.core.simulation import MixExperimentResult


def result(mix_id, policy, throughput, shares=None, cap=100.0):
    shares = shares if shares is not None else {"a": 0.5, "b": 0.5}
    per_app = {name: throughput / 2 for name in shares}
    return MixExperimentResult(
        mix_id=mix_id,
        policy=policy,
        p_cap_w=cap,
        normalized_throughput=per_app,
        power_share=shares,
        server_throughput=throughput,
        mean_wall_power_w=95.0,
    )


class TestMeans:
    def test_mean_server_throughput(self):
        results = {1: result(1, "p", 1.0), 2: result(2, "p", 2.0)}
        assert mean_server_throughput(results) == pytest.approx(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_server_throughput({})


class TestSpeedup:
    def test_speedup(self):
        ours = {1: result(1, "ours", 1.2)}
        base = {1: result(1, "base", 1.0)}
        assert speedup_over(ours, base) == pytest.approx(1.2)

    def test_mismatched_mixes_rejected(self):
        with pytest.raises(ConfigurationError):
            speedup_over({1: result(1, "o", 1.0)}, {2: result(2, "b", 1.0)})


class TestPowerSplits:
    def test_mean_split(self):
        results = {
            1: result(1, "p", 1.0, {"a": 0.4, "b": 0.6}),
            2: result(2, "p", 1.0, {"a": 0.45, "b": 0.55}),
        }
        low, high = power_split_stats(results)
        assert low == pytest.approx(0.425)
        assert high == pytest.approx(0.575)

    def test_temporal_mixes_skipped(self):
        results = {
            1: result(1, "p", 1.0, {"a": 0.0, "b": 0.0}),  # duty-cycled
            2: result(2, "p", 1.0, {"a": 0.4, "b": 0.6}),
        }
        low, high = power_split_stats(results)
        assert low == pytest.approx(0.4)

    def test_all_temporal_defaults_to_even(self):
        results = {1: result(1, "p", 1.0, {"a": 0.0, "b": 0.0})}
        assert power_split_stats(results) == (0.5, 0.5)


class TestSummaries:
    def make_comparison(self):
        return {
            1: {
                "util-unaware": result(1, "util-unaware", 1.0),
                "app+res-aware": result(1, "app+res-aware", 1.2, {"a": 0.45, "b": 0.55}),
            },
            2: {
                "util-unaware": result(2, "util-unaware", 1.0),
                "app+res-aware": result(2, "app+res-aware", 1.3, {"a": 0.4, "b": 0.6}),
            },
        }

    def test_summaries(self):
        summaries = summarize_policies(self.make_comparison())
        assert summaries["util-unaware"].speedup_vs_baseline == pytest.approx(1.0)
        assert summaries["app+res-aware"].speedup_vs_baseline == pytest.approx(1.25)
        assert summaries["app+res-aware"].mean_power_split[0] == pytest.approx(0.425)

    def test_missing_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_policies(self.make_comparison(), baseline="heracles")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_policies({})

    def test_mixed_caps_rejected(self):
        comparison = self.make_comparison()
        comparison[2]["util-unaware"] = result(2, "util-unaware", 1.0, cap=80.0)
        with pytest.raises(ConfigurationError):
            summarize_policies(comparison)
