"""Exception hierarchy: one family, catchable at the root."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.KnobError,
    errors.PowerBudgetError,
    errors.BatteryError,
    errors.LearningError,
    errors.SchedulingError,
    errors.SimulationError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_catchable_at_the_root(self, exc):
        with pytest.raises(errors.ReproError):
            raise exc("boom")

    def test_repro_error_is_an_exception(self):
        assert issubclass(errors.ReproError, Exception)

    def test_subclasses_are_distinct(self):
        assert len(set(ALL_ERRORS)) == len(ALL_ERRORS)

    def test_library_raises_only_family_errors(self, config):
        """A representative misuse from each subsystem raises in-family."""
        from repro.core.allocator import PowerAllocator
        from repro.esd.battery import LeadAcidBattery
        from repro.server.server import SimulatedServer

        with pytest.raises(errors.ReproError):
            PowerAllocator(grain_w=-1.0)
        with pytest.raises(errors.ReproError):
            LeadAcidBattery(capacity_j=-5.0)
        with pytest.raises(errors.ReproError):
            SimulatedServer(config).remove("ghost")
