"""Trace CSV import/export."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.traces import ClusterPowerTrace


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        trace = ClusterPowerTrace.synthetic_diurnal(peak_w=500.0, step_s=300.0, seed=4)
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = ClusterPowerTrace.from_csv(path)
        assert loaded.step_s == trace.step_s
        assert loaded.demand_w == pytest.approx(trace.demand_w)

    def test_header_written(self, tmp_path):
        trace = ClusterPowerTrace(step_s=60.0, demand_w=(1.0, 2.0))
        path = tmp_path / "t.csv"
        trace.to_csv(path)
        assert path.read_text().splitlines()[0] == "time_s,demand_w"

    def test_foreign_csv_loads(self, tmp_path):
        path = tmp_path / "telemetry.csv"
        path.write_text("time_s,demand_w\n0,100\n30,150\n60,120\n")
        trace = ClusterPowerTrace.from_csv(path)
        assert trace.step_s == 30.0
        assert trace.peak_w == 150.0

    def test_nonuniform_steps_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,demand_w\n0,100\n30,150\n100,120\n")
        with pytest.raises(ConfigurationError):
            ClusterPowerTrace.from_csv(path)

    def test_too_short_rejected(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("time_s,demand_w\n0,100\n")
        with pytest.raises(ConfigurationError):
            ClusterPowerTrace.from_csv(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            ClusterPowerTrace.from_csv(path)

    def test_loaded_trace_drives_cluster_run(self, tmp_path, config):
        """A CSV trace plugs straight into the Fig. 12 harness."""
        from repro.cluster.cluster import ClusterSimulator

        simulator = ClusterSimulator(config)
        trace = ClusterPowerTrace.synthetic_diurnal(
            peak_w=simulator.uncapped_cluster_power_w(), step_s=1800.0, seed=5
        )
        path = tmp_path / "cluster.csv"
        trace.to_csv(path)
        loaded = ClusterPowerTrace.from_csv(path)
        experiment = simulator.run(
            trace=loaded,
            shave_fractions=(0.15,),
            duration_s=10.0,
            warmup_s=5.0,
        )
        assert 0.15 in experiment.results
