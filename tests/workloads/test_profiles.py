"""WorkloadProfile: validation, Amdahl math, derivation helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.profiles import WorkloadProfile, WORKLOAD_CLASSES


def make(**overrides):
    base = dict(
        name="test",
        wclass="graph",
        parallel_fraction=0.5,
        base_rate=1.0,
        dvfs_sensitivity=0.8,
        mem_gb_per_work=0.3,
        activity_factor=0.9,
        total_work=100.0,
    )
    base.update(overrides)
    return WorkloadProfile(**base)


class TestValidation:
    def test_valid_profile_constructs(self):
        make()

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make(name="")

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError):
            make(wclass="quantum")

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_parallel_fraction_bounds(self, value):
        with pytest.raises(ConfigurationError):
            make(parallel_fraction=value)

    def test_nonpositive_base_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            make(base_rate=0.0)

    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_dvfs_sensitivity_bounds(self, value):
        with pytest.raises(ConfigurationError):
            make(dvfs_sensitivity=value)

    def test_negative_traffic_rejected(self):
        with pytest.raises(ConfigurationError):
            make(mem_gb_per_work=-1.0)

    @pytest.mark.parametrize("value", [0.0, 1.5])
    def test_activity_factor_bounds(self, value):
        with pytest.raises(ConfigurationError):
            make(activity_factor=value)

    def test_nonpositive_work_rejected(self):
        with pytest.raises(ConfigurationError):
            make(total_work=0.0)

    def test_all_classes_accepted(self):
        for wclass in WORKLOAD_CLASSES:
            make(wclass=wclass)


class TestAmdahl:
    def test_one_core_is_unity(self):
        assert make(parallel_fraction=0.7).amdahl_speedup(1) == 1.0

    def test_fully_serial_never_speeds_up(self):
        p = make(parallel_fraction=0.0)
        assert p.amdahl_speedup(6) == 1.0

    def test_fully_parallel_is_linear(self):
        p = make(parallel_fraction=1.0)
        assert p.amdahl_speedup(4) == pytest.approx(4.0)

    def test_speedup_monotone_in_cores(self):
        p = make(parallel_fraction=0.8)
        speeds = [p.amdahl_speedup(n) for n in range(1, 7)]
        assert speeds == sorted(speeds)

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            make().amdahl_speedup(0)


class TestDerivation:
    def test_with_total_work(self):
        derived = make().with_total_work(5.0)
        assert derived.total_work == 5.0
        assert derived.name == "test"

    def test_with_infinite_work(self):
        assert make().with_total_work(float("inf")).total_work == float("inf")

    def test_scaled_base_rate(self):
        assert make().scaled(base_rate_factor=2.0).base_rate == 2.0

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            make().scaled(base_rate_factor=0.0)

    def test_dict_roundtrip(self):
        profile = make()
        assert WorkloadProfile.from_dict(profile.to_dict()) == profile

    def test_from_dict_ignores_unknown_keys(self):
        data = make().to_dict()
        data["mystery"] = 42
        WorkloadProfile.from_dict(data)

    def test_memory_bound_tag(self):
        assert make(mem_gb_per_work=2.0).is_memory_bound_leaning
        assert not make(mem_gb_per_work=0.1).is_memory_bound_leaning
