"""Table II mixes: verbatim reproduction of the paper's pairs."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.mixes import MIXES, all_mixes, get_mix


class TestTableII:
    def test_fifteen_mixes(self):
        assert len(MIXES) == 15
        assert sorted(MIXES) == list(range(1, 16))

    @pytest.mark.parametrize(
        "mix_id, app1, app2",
        [
            (1, "stream", "kmeans"),
            (2, "connected", "kmeans"),
            (3, "stream", "bfs"),
            (4, "facesim", "bfs"),
            (5, "ferret", "betweenness"),
            (6, "ferret", "pagerank"),
            (7, "facesim", "betweenness"),
            (8, "x264", "triangle"),
            (9, "apr", "connected"),
            (10, "pagerank", "kmeans"),
            (11, "ferret", "sssp"),
            (12, "facesim", "x264"),
            (13, "apr", "kmeans"),
            (14, "x264", "sssp"),
            (15, "apr", "x264"),
        ],
    )
    def test_verbatim_pairs(self, mix_id, app1, app2):
        mix = get_mix(mix_id)
        assert mix.names() == (app1, app2)

    def test_profiles_resolve_to_catalog(self):
        for mix in all_mixes():
            a, b = mix.profiles()
            assert a.name == mix.app1
            assert b.name == mix.app2

    def test_no_mix_pairs_an_app_with_itself(self):
        for mix in all_mixes():
            assert mix.app1 != mix.app2

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            get_mix(16)

    def test_all_mixes_in_order(self):
        assert [m.mix_id for m in all_mixes()] == list(range(1, 16))

    def test_str_form(self):
        assert str(get_mix(1)) == "mix-1(stream+kmeans)"
