"""Dynamic workloads: arrival schedules and phased profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.catalog import CATALOG
from repro.workloads.generator import ArrivalEvent, ArrivalSchedule, PhasedProfile
from repro.workloads.profiles import WorkloadProfile


class TestArrivalEvent:
    def test_valid_event(self, kmeans):
        ArrivalEvent(time_s=1.0, profile=kmeans)

    def test_negative_time_rejected(self, kmeans):
        with pytest.raises(ConfigurationError):
            ArrivalEvent(time_s=-1.0, profile=kmeans)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_time_rejected(self, kmeans, bad):
        with pytest.raises(ConfigurationError):
            ArrivalEvent(time_s=bad, profile=kmeans)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_departure_rejected(self, kmeans, bad):
        with pytest.raises(ConfigurationError):
            ArrivalEvent(time_s=1.0, profile=kmeans, forced_departure_s=bad)

    def test_departure_before_arrival_rejected(self, kmeans):
        with pytest.raises(ConfigurationError):
            ArrivalEvent(time_s=5.0, profile=kmeans, forced_departure_s=4.0)


class TestArrivalSchedule:
    def test_events_sorted_on_construction(self, kmeans, stream):
        schedule = ArrivalSchedule(
            [
                ArrivalEvent(5.0, kmeans),
                ArrivalEvent(1.0, stream),
            ]
        )
        assert [e.time_s for e in schedule.events] == [1.0, 5.0]

    def test_pop_due_in_order(self, kmeans, stream):
        schedule = ArrivalSchedule(
            [ArrivalEvent(1.0, stream), ArrivalEvent(5.0, kmeans)]
        )
        assert [e.profile.name for e in schedule.pop_due(2.0)] == ["stream"]
        assert [e.profile.name for e in schedule.pop_due(10.0)] == ["kmeans"]
        assert schedule.exhausted

    def test_pop_due_does_not_redeliver(self, kmeans):
        schedule = ArrivalSchedule([ArrivalEvent(1.0, kmeans)])
        schedule.pop_due(2.0)
        assert schedule.pop_due(3.0) == []

    def test_reset_replays(self, kmeans):
        schedule = ArrivalSchedule([ArrivalEvent(1.0, kmeans)])
        schedule.pop_due(2.0)
        schedule.reset()
        assert len(schedule.pop_due(2.0)) == 1

    def test_next_time(self, kmeans):
        schedule = ArrivalSchedule([ArrivalEvent(3.0, kmeans)])
        assert schedule.next_time_s() == 3.0
        schedule.pop_due(4.0)
        assert schedule.next_time_s() is None


class TestPoissonGeneration:
    def test_deterministic_for_seed(self):
        a = ArrivalSchedule.poisson(rate_per_s=0.1, horizon_s=100.0, seed=5)
        b = ArrivalSchedule.poisson(rate_per_s=0.1, horizon_s=100.0, seed=5)
        assert [e.time_s for e in a.events] == [e.time_s for e in b.events]

    def test_rate_roughly_respected(self):
        schedule = ArrivalSchedule.poisson(rate_per_s=0.5, horizon_s=2000.0, seed=1)
        assert 800 <= len(schedule) <= 1200

    def test_events_within_horizon(self):
        schedule = ArrivalSchedule.poisson(rate_per_s=0.2, horizon_s=50.0, seed=2)
        assert all(0 < e.time_s < 50.0 for e in schedule.events)

    def test_unique_suffixes(self):
        schedule = ArrivalSchedule.poisson(rate_per_s=0.5, horizon_s=100.0, seed=3)
        names = [e.profile.name for e in schedule.events]
        assert len(names) == len(set(names))

    def test_pool_restriction(self):
        schedule = ArrivalSchedule.poisson(
            rate_per_s=0.5, horizon_s=100.0, seed=4, names=["kmeans"]
        )
        assert all(e.profile.name.startswith("kmeans") for e in schedule.events)

    def test_unknown_pool_member_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrivalSchedule.poisson(
                rate_per_s=0.5, horizon_s=10.0, names=["doom"]
            )

    @pytest.mark.parametrize(
        "bad", [0.0, -0.5, float("nan"), float("inf"), float("-inf")]
    )
    def test_invalid_rate_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ArrivalSchedule.poisson(rate_per_s=bad, horizon_s=10.0)

    @pytest.mark.parametrize("bad", [0.0, -10.0, float("nan"), float("inf")])
    def test_invalid_horizon_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ArrivalSchedule.poisson(rate_per_s=0.1, horizon_s=bad)


class TestPhasedProfile:
    def _variant(self, base: WorkloadProfile, mem: float) -> WorkloadProfile:
        return WorkloadProfile.from_dict({**base.to_dict(), "mem_gb_per_work": mem})

    def test_segment_lookup(self, kmeans):
        heavy = self._variant(kmeans, 1.0)
        phased = PhasedProfile([(0.0, kmeans), (0.5, heavy)])
        assert phased.profile_at(0.2) is kmeans
        assert phased.profile_at(0.5) is heavy
        assert phased.profile_at(0.9) is heavy

    def test_boundary_crossing(self, kmeans):
        heavy = self._variant(kmeans, 1.0)
        phased = PhasedProfile([(0.0, kmeans), (0.5, heavy)])
        assert phased.phase_boundary_crossed(0.4, 0.6)
        assert not phased.phase_boundary_crossed(0.1, 0.4)

    def test_single_segment(self, kmeans):
        phased = PhasedProfile([(0.0, kmeans)])
        assert phased.segment_count == 1
        assert phased.profile_at(1.0) is kmeans

    def test_must_start_at_zero(self, kmeans):
        with pytest.raises(ConfigurationError):
            PhasedProfile([(0.1, kmeans)])

    def test_thresholds_strictly_increase(self, kmeans):
        heavy = self._variant(kmeans, 1.0)
        with pytest.raises(ConfigurationError):
            PhasedProfile([(0.0, kmeans), (0.0, heavy)])

    def test_segments_share_name(self, kmeans, stream):
        with pytest.raises(ConfigurationError):
            PhasedProfile([(0.0, kmeans), (0.5, stream)])

    def test_segments_share_total_work(self, kmeans):
        other = kmeans.with_total_work(kmeans.total_work * 2)
        with pytest.raises(ConfigurationError):
            PhasedProfile([(0.0, kmeans), (0.5, other)])

    def test_progress_out_of_range_rejected(self, kmeans):
        phased = PhasedProfile([(0.0, kmeans)])
        with pytest.raises(ConfigurationError):
            phased.profile_at(1.5)
