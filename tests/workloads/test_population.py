"""Open-loop client population: determinism, modulation, checkpointing."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.workloads import BurstWindow, OpenLoopPopulation


def _drain(population, until_s, step_s=0.1):
    offers = []
    t = 0.0
    while t <= until_s:
        offers.extend(population.pull_due(t))
        t += step_s
    return offers


def test_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        OpenLoopPopulation(base_rate_per_s=0.0)
    with pytest.raises(ConfigurationError):
        OpenLoopPopulation(base_rate_per_s=float("nan"))
    with pytest.raises(ConfigurationError):
        OpenLoopPopulation(base_rate_per_s=1.0, clients=0)
    with pytest.raises(ConfigurationError):
        OpenLoopPopulation(base_rate_per_s=1.0, diurnal_amplitude=1.5)
    with pytest.raises(ConfigurationError):
        OpenLoopPopulation(base_rate_per_s=1.0, work_scale=-1.0)
    with pytest.raises(ConfigurationError):
        BurstWindow(5.0, 4.0, 2.0)  # end before start
    with pytest.raises(ConfigurationError):
        BurstWindow(0.0, 1.0, 0.5)  # bursts only amplify


def test_same_seed_same_offer_stream():
    a = _drain(OpenLoopPopulation(base_rate_per_s=0.5, seed=11), 60.0)
    b = _drain(OpenLoopPopulation(base_rate_per_s=0.5, seed=11), 60.0)
    assert [o.to_dict() for o in a] == [o.to_dict() for o in b]
    assert len(a) > 10
    c = _drain(OpenLoopPopulation(base_rate_per_s=0.5, seed=12), 60.0)
    assert [o.to_dict() for o in a] != [o.to_dict() for o in c]


def test_offers_are_ordered_and_labeled():
    population = OpenLoopPopulation(base_rate_per_s=0.5, clients=3, seed=4)
    offers = _drain(population, 120.0)
    times = [o.time_s for o in offers]
    assert times == sorted(times)
    assert {o.client for o in offers} <= {0, 1, 2}
    assert len({o.profile.name for o in offers}) == len(offers)  # unique names
    for offer in offers:
        assert f"#c{offer.client}j" in offer.profile.name


def test_diurnal_modulation_shapes_the_rate():
    population = OpenLoopPopulation(
        base_rate_per_s=1.0, diurnal_amplitude=0.5, diurnal_period_s=100.0
    )
    assert population.rate_at(25.0) == pytest.approx(1.5)  # sine peak
    assert population.rate_at(75.0) == pytest.approx(0.5)  # sine trough
    assert population.rate_at(0.0) == pytest.approx(1.0)


def test_burst_windows_multiply_the_rate():
    population = OpenLoopPopulation(
        base_rate_per_s=1.0,
        bursts=(BurstWindow(10.0, 20.0, 3.0), BurstWindow(15.0, 25.0, 5.0)),
    )
    assert population.rate_at(5.0) == pytest.approx(1.0)
    assert population.rate_at(12.0) == pytest.approx(3.0)
    assert population.rate_at(17.0) == pytest.approx(5.0)  # max, not product
    assert population.rate_at(30.0) == pytest.approx(1.0)


def test_burst_raises_offer_count():
    calm = _drain(OpenLoopPopulation(base_rate_per_s=0.3, seed=5), 100.0)
    bursty = _drain(
        OpenLoopPopulation(
            base_rate_per_s=0.3, seed=5, bursts=(BurstWindow(20.0, 60.0, 10.0),)
        ),
        100.0,
    )
    assert len(bursty) > 2 * len(calm)


def test_checkpoint_resume_is_exact():
    """Stopping mid-stream and restoring the state dict continues the offer
    stream exactly where an uninterrupted population would be."""
    whole = OpenLoopPopulation(base_rate_per_s=0.8, clients=4, seed=9)
    reference = _drain(whole, 80.0)

    first = OpenLoopPopulation(base_rate_per_s=0.8, clients=4, seed=9)
    head = _drain(first, 40.0)
    state = first.state_dict()
    # The state must be JSON-serializable (it rides in service checkpoints).
    import json

    state = json.loads(json.dumps(state))
    second = OpenLoopPopulation(base_rate_per_s=0.8, clients=4, seed=9)
    second.load_state_dict(state)
    tail = []
    t = 40.0 + 0.1
    while t <= 80.0:
        tail.extend(second.pull_due(t))
        t += 0.1
    stitched = [o.to_dict() for o in head + tail]
    assert stitched == [o.to_dict() for o in reference]


def test_pull_due_refuses_time_travel():
    population = OpenLoopPopulation(base_rate_per_s=1.0)
    population.pull_due(10.0)
    with pytest.raises(ConfigurationError):
        population.pull_due(5.0)


def test_work_scale_shrinks_jobs():
    big = _drain(OpenLoopPopulation(base_rate_per_s=0.5, seed=3, work_scale=1.0), 40.0)
    small = _drain(OpenLoopPopulation(base_rate_per_s=0.5, seed=3, work_scale=0.25), 40.0)
    assert len(big) == len(small)
    for b, s in zip(big, small):
        assert math.isclose(s.profile.total_work, 0.25 * b.profile.total_work)
