"""Catalog: the twelve paper applications and their qualitative classes."""

import pytest

from repro.errors import ConfigurationError
from repro.server.config import KnobSetting
from repro.workloads.catalog import CATALOG, application_names, get_application


EXPECTED_APPS = {
    "stream",
    "kmeans",
    "apr",
    "bfs",
    "connected",
    "triangle",
    "sssp",
    "betweenness",
    "pagerank",
    "x264",
    "facesim",
    "ferret",
}


class TestContents:
    def test_all_twelve_present(self):
        assert set(CATALOG) == EXPECTED_APPS

    def test_names_match_keys(self):
        for name, profile in CATALOG.items():
            assert profile.name == name

    def test_get_application(self):
        assert get_application("stream").wclass == "memory"

    def test_unknown_application_rejected_with_listing(self):
        with pytest.raises(ConfigurationError, match="catalog has"):
            get_application("doom")

    def test_application_names_sorted(self):
        assert application_names() == sorted(EXPECTED_APPS)


class TestClasses:
    def test_suite_classes(self):
        assert CATALOG["kmeans"].wclass == "analytics"
        assert CATALOG["apr"].wclass == "analytics"
        assert CATALOG["pagerank"].wclass == "search"
        assert CATALOG["x264"].wclass == "media"
        assert CATALOG["bfs"].wclass == "graph"


class TestQualitativeCalibration:
    """The catalog must reproduce the paper's per-app characterizations."""

    def test_stream_is_frequency_insensitive(self, perf_model):
        stream = CATALOG["stream"]
        slow = perf_model.rate(stream, KnobSetting(1.2, 6, 10.0))
        fast = perf_model.rate(stream, KnobSetting(2.0, 6, 10.0))
        assert fast / slow < 1.25  # nearly flat in f

    def test_stream_is_dram_sensitive(self, perf_model):
        stream = CATALOG["stream"]
        low = perf_model.rate(stream, KnobSetting(2.0, 6, 3.0))
        high = perf_model.rate(stream, KnobSetting(2.0, 6, 10.0))
        assert high / low > 2.0

    def test_kmeans_is_frequency_sensitive(self, perf_model):
        kmeans = CATALOG["kmeans"]
        slow = perf_model.rate(kmeans, KnobSetting(1.2, 6, 10.0))
        fast = perf_model.rate(kmeans, KnobSetting(2.0, 6, 10.0))
        assert fast / slow > 1.3

    def test_sssp_prefers_frequency_over_cores(self, perf_model):
        """Fig. 11a: SSSP keeps 2 GHz and sheds cores."""
        sssp = CATALOG["sssp"]
        # Giving up half the cores costs SSSP little...
        few_cores = perf_model.rate(sssp, KnobSetting(2.0, 3, 10.0))
        many_cores = perf_model.rate(sssp, KnobSetting(2.0, 6, 10.0))
        assert few_cores / many_cores > 0.8
        # ...but giving up frequency costs it a lot.
        slow = perf_model.rate(sssp, KnobSetting(1.2, 6, 10.0))
        assert slow / many_cores < 0.7

    def test_x264_prefers_cores_over_frequency(self, perf_model):
        """Fig. 11a: X264 keeps its cores and drops to 1.4 GHz."""
        x264 = CATALOG["x264"]
        few_cores = perf_model.rate(x264, KnobSetting(2.0, 3, 10.0))
        many_cores = perf_model.rate(x264, KnobSetting(2.0, 6, 10.0))
        assert few_cores / many_cores < 0.75  # losing cores hurts
        slow = perf_model.rate(x264, KnobSetting(1.4, 6, 10.0))
        assert slow / many_cores > 0.8  # losing frequency tolerable

    def test_pagerank_steeper_than_kmeans_at_margin(self, power_model, config):
        """Fig. 9a: PageRank's utility per watt exceeds kmeans' around the
        mix-10 operating point, driving the 55-45 split."""
        from repro.core.utility import CandidateSet, app_utility_curve

        budgets = [13.0, 14.0, 15.0, 16.0, 17.0]
        slopes = {}
        for name in ("pagerank", "kmeans"):
            cset = CandidateSet.from_models(CATALOG[name], config, power_model=power_model)
            curve = app_utility_curve(cset, budgets)
            slopes[name] = curve.relative_perf[-1] - curve.relative_perf[0]
        assert slopes["pagerank"] > slopes["kmeans"]

    def test_all_apps_runnable_together_within_rated_power(self, power_model, config):
        """Table II premise: any pair fits the rated server power."""
        from repro.workloads.mixes import all_mixes

        for mix in all_mixes():
            a, b = mix.profiles()
            total = (
                config.p_idle_w
                + config.p_cm_w
                + power_model.max_app_power_w(a)
                + power_model.max_app_power_w(b)
            )
            assert total <= config.uncapped_power_w + 1e-9, str(mix)
