"""Cluster power traces: diurnal shape, peak shaving."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.traces import ClusterPowerTrace, peak_shaving_caps


class TestTraceBasics:
    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterPowerTrace(step_s=0.0, demand_w=(1.0,))
        with pytest.raises(ConfigurationError):
            ClusterPowerTrace(step_s=1.0, demand_w=())
        with pytest.raises(ConfigurationError):
            ClusterPowerTrace(step_s=1.0, demand_w=(-1.0,))

    def test_duration_and_peaks(self):
        trace = ClusterPowerTrace(step_s=60.0, demand_w=(100.0, 200.0, 150.0))
        assert trace.duration_s == 180.0
        assert trace.peak_w == 200.0
        assert trace.trough_w == 100.0

    def test_zero_order_hold_lookup(self):
        trace = ClusterPowerTrace(step_s=60.0, demand_w=(100.0, 200.0))
        assert trace.at(0.0) == 100.0
        assert trace.at(59.0) == 100.0
        assert trace.at(60.0) == 200.0
        assert trace.at(10_000.0) == 200.0  # clamped to the end

    def test_negative_time_rejected(self):
        trace = ClusterPowerTrace(step_s=60.0, demand_w=(100.0,))
        with pytest.raises(ConfigurationError):
            trace.at(-1.0)


class TestSyntheticDiurnal:
    def test_peak_and_trough_match_spec(self):
        trace = ClusterPowerTrace.synthetic_diurnal(
            peak_w=1000.0, noise_fraction=0.0
        )
        assert trace.peak_w == pytest.approx(1000.0, rel=0.01)
        assert trace.trough_w == pytest.approx(550.0, rel=0.02)

    def test_deterministic_for_seed(self):
        a = ClusterPowerTrace.synthetic_diurnal(peak_w=1000.0, seed=3)
        b = ClusterPowerTrace.synthetic_diurnal(peak_w=1000.0, seed=3)
        assert a.demand_w == b.demand_w

    def test_demand_never_exceeds_peak(self):
        trace = ClusterPowerTrace.synthetic_diurnal(
            peak_w=1000.0, noise_fraction=0.1, seed=1
        )
        assert max(trace.demand_w) <= 1000.0

    def test_peakedness_concentrates_time_near_trough(self):
        flat = ClusterPowerTrace.synthetic_diurnal(
            peak_w=1000.0, peakedness=1.0, noise_fraction=0.0
        )
        peaked = ClusterPowerTrace.synthetic_diurnal(
            peak_w=1000.0, peakedness=4.0, noise_fraction=0.0
        )
        mid = 775.0  # halfway between trough and peak
        above_flat = sum(1 for v in flat.demand_w if v > mid)
        above_peaked = sum(1 for v in peaked.demand_w if v > mid)
        assert above_peaked < above_flat

    def test_multiple_days(self):
        trace = ClusterPowerTrace.synthetic_diurnal(peak_w=100.0, days=2.0)
        assert trace.duration_s == pytest.approx(2 * 86400.0, rel=0.01)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterPowerTrace.synthetic_diurnal(peak_w=0.0)
        with pytest.raises(ConfigurationError):
            ClusterPowerTrace.synthetic_diurnal(peak_w=100.0, trough_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ClusterPowerTrace.synthetic_diurnal(peak_w=100.0, peakedness=0.0)
        with pytest.raises(ConfigurationError):
            ClusterPowerTrace.synthetic_diurnal(peak_w=100.0, days=0.0)


class TestPeakShaving:
    def test_cap_plateaus_at_ceiling(self):
        trace = ClusterPowerTrace(step_s=1.0, demand_w=(100.0, 80.0, 50.0))
        caps = peak_shaving_caps(trace, 0.30)
        assert caps.demand_w == (70.0, 70.0, 50.0)

    def test_zero_shaving_is_identity(self):
        trace = ClusterPowerTrace(step_s=1.0, demand_w=(100.0, 80.0))
        caps = peak_shaving_caps(trace, 0.0)
        assert caps.demand_w == trace.demand_w

    def test_cap_never_above_demand(self):
        trace = ClusterPowerTrace.synthetic_diurnal(peak_w=500.0, seed=2)
        caps = peak_shaving_caps(trace, 0.15)
        assert all(c <= d for c, d in zip(caps.demand_w, trace.demand_w))

    def test_invalid_fraction_rejected(self):
        trace = ClusterPowerTrace(step_s=1.0, demand_w=(100.0,))
        with pytest.raises(ConfigurationError):
            peak_shaving_caps(trace, 1.0)
        with pytest.raises(ConfigurationError):
            peak_shaving_caps(trace, -0.1)
