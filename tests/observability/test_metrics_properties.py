"""Hypothesis: the metrics primitives keep their algebraic contracts for
arbitrary observation streams - counters stay monotone, quantiles stay
inside the observed range, and merging two registries is observationally
equal to replaying both streams into one."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.observability.metrics import Histogram, MetricsRegistry

finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)
observations = st.lists(finite, max_size=64)
# Merge equality is exact only when addition is: integer-valued floats keep
# every partial sum representable, so reordering cannot shift an ulp.
exact_observations = st.lists(
    st.integers(min_value=-(10**6), max_value=10**6).map(float), max_size=64
)
deltas = st.lists(st.floats(min_value=0.0, max_value=1e9, allow_nan=False), max_size=32)
quantile_points = st.floats(min_value=0.0, max_value=1.0)
small_windows = st.integers(min_value=1, max_value=8)


class TestCounterProperties:
    @given(increments=deltas)
    @settings(max_examples=80, deadline=None)
    def test_counter_is_monotone_over_any_stream(self, increments):
        counter = MetricsRegistry().counter("c")
        seen = [counter.value]
        for delta in increments:
            counter.inc(delta)
            seen.append(counter.value)
        assert all(b >= a for a, b in zip(seen, seen[1:]))
        assert counter.value == sum(increments)


class TestHistogramProperties:
    @given(values=st.lists(finite, min_size=1, max_size=64), q=quantile_points)
    @settings(max_examples=120, deadline=None)
    def test_quantile_bounded_by_window_min_max(self, values, q):
        hist = Histogram("h")
        hist.observe_many(values)
        quantile = hist.quantile(q)
        assert min(hist.window) <= quantile <= max(hist.window)
        # ...which the cumulative extrema bound in turn.
        assert hist.minimum <= quantile <= hist.maximum

    @given(values=st.lists(finite, min_size=1, max_size=64), window=small_windows)
    @settings(max_examples=80, deadline=None)
    def test_quantiles_are_observed_values(self, values, window):
        hist = Histogram("h", window_size=window)
        hist.observe_many(values)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert hist.quantile(q) in values

    @given(values=observations)
    @settings(max_examples=80, deadline=None)
    def test_cumulative_stats_exact_regardless_of_eviction(self, values):
        hist = Histogram("h", window_size=4)
        hist.observe_many(values)
        assert hist.count == len(values)
        if values:
            assert hist.minimum == min(values)
            assert hist.maximum == max(values)
            assert abs(hist.total - sum(values)) <= 1e-6 * max(1.0, abs(sum(values)))


class TestMergeProperties:
    @given(first=exact_observations, second=exact_observations)
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_concatenated_replay(self, first, second):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe_many(first)
        b.histogram("h").observe_many(second)
        a.counter("c").inc(len(first))
        b.counter("c").inc(len(second))
        replayed = MetricsRegistry()
        replayed.histogram("h").observe_many(first + second)
        replayed.counter("c").inc(len(first) + len(second))
        assert a.merge(b).to_json() == replayed.to_json()

    @given(first=exact_observations, second=exact_observations, third=exact_observations)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, first, second, third):
        def registry(values):
            r = MetricsRegistry()
            r.histogram("h").observe_many(values)
            return r

        a, b, c = registry(first), registry(second), registry(third)
        left = a.merge(b).merge(registry(third))
        right = registry(first).merge(b.merge(c))
        assert left.to_json() == right.to_json()

    @given(values=exact_observations)
    @settings(max_examples=40, deadline=None)
    def test_merge_with_empty_is_identity(self, values):
        a = MetricsRegistry()
        a.histogram("h").observe_many(values)
        a.counter("c").inc(len(values))
        a.gauge("g").set(1.5)
        empty = MetricsRegistry()
        assert a.merge(empty).to_json() == a.to_json()
        assert empty.merge(a).to_json() == a.to_json()
