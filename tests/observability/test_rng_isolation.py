"""RNG-isolation audit: trace determinism rests on no component touching
global RNG state. Two layers: a static scan of ``src/`` that only admits
seeded ``np.random.default_rng`` construction, and a runtime check that a
full mix run leaves both global generators (stdlib and numpy legacy)
byte-identically where it found them."""

import pickle
import random
import re
from pathlib import Path

import numpy as np

from repro.adversary.plan import default_adversary_schedule
from repro.core.simulation import run_mix_experiment
from repro.workloads.mixes import get_mix

SRC = Path(__file__).resolve().parents[2] / "src"

# The one sanctioned construction: an explicitly seeded generator object.
_ALLOWED_NP = re.compile(r"np\.random\.(default_rng|Generator|BitGenerator)\b")
_NP_RANDOM_USE = re.compile(r"np\.random\.\w+")
# Bare stdlib-random calls (``random.random()``, ``random.seed`` ...).
# ``foo.random.x`` or local names ending in ``random`` don't match.
_STDLIB_RANDOM_USE = re.compile(r"(?<![\w.])random\.\w+")
_IMPORT_RANDOM = re.compile(r"^\s*(import random\b|from random import)", re.MULTILINE)


def _source_files():
    files = sorted(SRC.rglob("*.py"))
    assert files, f"no sources under {SRC}"
    return files


class TestStaticAudit:
    def test_no_global_numpy_random_calls(self):
        offenders = []
        for path in _source_files():
            for line_no, line in enumerate(path.read_text().splitlines(), 1):
                for match in _NP_RANDOM_USE.finditer(line):
                    if not _ALLOWED_NP.match(match.group(0), 0):
                        offenders.append(f"{path}:{line_no}: {line.strip()}")
        assert not offenders, (
            "global numpy RNG use (only seeded np.random.default_rng is "
            "allowed):\n" + "\n".join(offenders)
        )

    def test_no_stdlib_random_module(self):
        offenders = []
        for path in _source_files():
            text = path.read_text()
            if _IMPORT_RANDOM.search(text):
                offenders.append(f"{path}: imports the stdlib random module")
            for line_no, line in enumerate(text.splitlines(), 1):
                if _STDLIB_RANDOM_USE.search(line) and "np.random" not in line:
                    offenders.append(f"{path}:{line_no}: {line.strip()}")
        assert not offenders, (
            "stdlib random usage (unseedable global state):\n" + "\n".join(offenders)
        )


class TestRuntimeAudit:
    def test_mix_run_leaves_global_rng_state_untouched(self):
        random.seed(1234)
        np.random.seed(5678)
        stdlib_before = random.getstate()
        numpy_before = pickle.dumps(np.random.get_state())
        run_mix_experiment(
            list(get_mix(10).profiles()),
            "app+res-aware",
            80.0,
            mix_id=10,
            duration_s=4.0,
            warmup_s=2.0,
            use_oracle_estimates=True,
            seed=0,
        )
        assert random.getstate() == stdlib_before
        assert pickle.dumps(np.random.get_state()) == numpy_before

    def test_adversarial_run_leaves_global_rng_state_untouched(self):
        """The attack-jitter streams are seeded generator objects too."""
        random.seed(1234)
        np.random.seed(5678)
        stdlib_before = random.getstate()
        numpy_before = pickle.dumps(np.random.get_state())
        run_mix_experiment(
            list(get_mix(1).profiles()),
            "app+res-aware",
            108.0,
            mix_id=1,
            duration_s=4.0,
            warmup_s=2.0,
            use_oracle_estimates=True,
            seed=0,
            adversaries=default_adversary_schedule("stream", kind="probe",
                                                   start_s=1.0),
        )
        assert random.getstate() == stdlib_before
        assert pickle.dumps(np.random.get_state()) == numpy_before

    def test_dormant_adversary_never_perturbs_honest_streams(self):
        """An attack window that never opens must not consume a single draw
        from any honest RNG stream: the timelines are bit-identical."""
        kwargs = dict(mix_id=1, duration_s=4.0, warmup_s=2.0,
                      use_oracle_estimates=True, seed=0)
        apps = list(get_mix(1).profiles())
        clean = run_mix_experiment(apps, "app+res-aware", 108.0, **kwargs)
        dormant = run_mix_experiment(
            apps, "app+res-aware", 108.0,
            adversaries=default_adversary_schedule(
                "stream", kind="spike", start_s=10_000.0
            ),
            **kwargs,
        )
        assert dormant.normalized_throughput == clean.normalized_throughput
        assert dormant.power_share == clean.power_share
        assert dormant.mean_wall_power_w == clean.mean_wall_power_w
