"""Integration: the instrumented mediator produces deterministic traces and
a complete metrics/profiling export (the PR's acceptance criteria)."""

import pytest

from repro.core.simulation import run_mix_experiment
from repro.observability.trace import (
    TraceBus,
    summarize_trace,
    verify_trace,
    write_trace,
)
from repro.workloads.mixes import get_mix


def _traced_run(
    policy: str = "app+res-aware",
    cap_w: float = 80.0,
    *,
    seed: int = 0,
    oracle: bool = True,
    duration_s: float = 6.0,
):
    bus = TraceBus()
    result = run_mix_experiment(
        list(get_mix(10).profiles()),
        policy,
        cap_w,
        mix_id=10,
        duration_s=duration_s,
        warmup_s=2.0,
        use_oracle_estimates=oracle,
        seed=seed,
        trace_bus=bus,
    )
    return bus, result


class TestDeterminism:
    def test_identical_seeded_runs_produce_byte_identical_traces(self, tmp_path):
        bus_a, _ = _traced_run()
        bus_b, _ = _traced_run()
        path_a, path_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_trace(path_a, bus_a)
        write_trace(path_b, bus_b)
        assert path_a.read_bytes() == path_b.read_bytes()
        assert bus_a.content_hash() == bus_b.content_hash()

    def test_learning_runs_are_equally_deterministic(self):
        bus_a, _ = _traced_run(oracle=False, duration_s=4.0)
        bus_b, _ = _traced_run(oracle=False, duration_s=4.0)
        assert bus_a.content_hash() == bus_b.content_hash()

    def test_different_cap_changes_hash(self):
        bus_a, _ = _traced_run(cap_w=80.0)
        bus_b, _ = _traced_run(cap_w=100.0)
        assert bus_a.content_hash() != bus_b.content_hash()


class TestTraceContent:
    def test_trace_verifies_and_covers_the_run(self):
        bus, _ = _traced_run()
        checks = verify_trace(bus.events)
        summary = summarize_trace(bus.events)
        assert checks["ticks"] == 80  # (2 s warmup + 6 s) / 0.1 s
        assert summary["kinds"]["arrival"] == 2
        assert summary["kinds"]["allocation"] >= 1
        assert summary["kinds"]["cap-change"] >= 1
        assert summary["kinds"]["knob-actuation"] >= 1

    def test_time_mode_does_not_flood_suspend_events(self):
        bus, _ = _traced_run(cap_w=80.0)  # mix 10 @ 80 W settles into TIME
        summary = summarize_trace(bus.events)
        assert summary["modes"].get("time", 0) > 0
        # Duty-cycling holds ~half the ticks in an OFF slot; events must
        # mark only actual transitions, not every suspended tick.
        assert summary["kinds"].get("suspend", 0) < summary["ticks"] / 2

    def test_esd_run_traces_battery_flows(self):
        bus, _ = _traced_run(policy="app+res+esd-aware", cap_w=80.0)
        summary = summarize_trace(bus.events)
        assert summary["modes"].get("esd", 0) > 0
        assert summary["kinds"].get("battery", 0) > 0
        verify_trace(bus.events)  # includes the soc-in-[0,1] invariant


class TestMetricsExport:
    def test_metrics_in_result_with_profile(self):
        _, result = _traced_run()
        doc = result.metrics
        assert doc is not None
        assert doc["counters"]["mediator.ticks"] == 80
        assert doc["counters"]["mediator.reallocations"] >= 1
        assert "resilience.breach_ticks" in doc["counters"]
        assert doc["gauges"]["mediator.managed_apps"] == 2
        assert doc["histograms"]["mediator.wall_w"]["count"] == 80

    def test_profile_covers_every_phase(self):
        _, result = _traced_run()
        profile = result.metrics["profile"]
        for phase in ("learn", "allocate", "coordinate", "actuate", "engine",
                      "telemetry", "events"):
            assert phase in profile, f"missing phase {phase}"
            assert profile[phase]["calls"] > 0
            assert profile[phase]["total_s"] >= 0.0

    def test_untraced_run_still_exports_metrics(self):
        result = run_mix_experiment(
            list(get_mix(10).profiles()),
            "app+res-aware",
            80.0,
            mix_id=10,
            duration_s=3.0,
            warmup_s=1.0,
            use_oracle_estimates=True,
            seed=0,
        )
        assert result.metrics["counters"]["mediator.ticks"] == 40


class TestTraceTimingIndependence:
    def test_profiling_never_lands_in_the_trace(self):
        bus, result = _traced_run()
        assert result.metrics["profile"]  # timings exist...
        for event in bus.events:  # ...but no event payload carries them
            assert "total_s" not in event.payload
            assert "profile" not in event.payload
