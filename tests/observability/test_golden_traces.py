"""Golden-trace regression: the three pinned Table II runs (one per
coordination regime) must replay to their recorded content hashes - once
under the scalar reference engine and once under the vector fast path,
whose specs record the *same* hashes (the engines are bit-identical).

When a change intentionally moves behaviour, regenerate the file and review
its diff::

    PYTHONPATH=src python -m repro.observability.golden \
        tests/golden/golden_traces.json --write
"""

from pathlib import Path

import pytest

from repro.observability.golden import GoldenSpec, load_specs, run_spec, save_specs

GOLDEN = Path(__file__).resolve().parents[1] / "golden" / "golden_traces.json"

SPECS = load_specs(GOLDEN)


def test_golden_file_pins_all_three_regimes():
    for engine in ("scalar", "vector"):
        regimes = {spec.regime for spec in SPECS if spec.engine == engine}
        assert regimes == {"space", "time", "esd"}, (
            f"the {engine} engine must pin all three Table II regimes"
        )
    assert all(spec.trace_hash for spec in SPECS), (
        "golden file has unrecorded specs; run the regen command in this "
        "module's docstring"
    )


def test_vector_specs_record_the_scalar_hashes():
    """The equivalence contract, expressed in the golden file itself: every
    vector spec pins the exact hash its scalar twin pins."""
    scalar = {
        (s.mix_id, s.policy, s.p_cap_w, s.seed): s.trace_hash
        for s in SPECS
        if s.engine == "scalar"
    }
    vector = [s for s in SPECS if s.engine == "vector"]
    assert vector, "golden file lost its vector specs"
    for spec in vector:
        key = (spec.mix_id, spec.policy, spec.p_cap_w, spec.seed)
        assert spec.trace_hash == scalar[key], (
            f"{spec.name}: vector hash diverged from its scalar twin - the "
            "engines are no longer bit-identical"
        )


@pytest.mark.parametrize("spec", SPECS, ids=[s.name for s in SPECS])
def test_golden_trace_replays_to_recorded_hash(spec: GoldenSpec):
    outcome = run_spec(spec)
    assert outcome.dominant_mode == spec.regime, (
        f"{spec.name} settled into {outcome.dominant_mode!r} "
        f"(modes {outcome.modes}), expected the {spec.regime!r} regime"
    )
    assert outcome.trace_hash == spec.trace_hash, (
        f"{spec.name}: trace hash changed - behaviour drifted somewhere in "
        "the mediation stack. If intentional, regenerate the golden file "
        "(see module docstring) and review the mode-residency diff."
    )
    assert outcome.modes == spec.modes


def test_golden_hashes_are_invariant_to_the_defense_layer():
    """The recorded hashes predate the TrustScorer; an honest run must hash
    identically whether the defenses are armed (the default) or disabled -
    the trust layer may only observe until someone misbehaves."""
    from repro.core.trust import DefenseConfig

    spec = SPECS[0]
    disarmed = run_spec(spec, defense=DefenseConfig(enabled=False))
    assert disarmed.trace_hash == spec.trace_hash


def test_specs_round_trip_through_save(tmp_path):
    path = tmp_path / "golden.json"
    save_specs(path, SPECS)
    assert load_specs(path) == SPECS
