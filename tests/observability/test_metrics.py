"""Unit tests for counters, gauges, histograms, and the registry."""

import math

import pytest

from repro.errors import ObservabilityError
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.profiling import PhaseProfiler


class TestCounter:
    def test_monotone(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ObservabilityError, match="monotone"):
            Counter("c").inc(-1)

    def test_reset_is_explicit(self):
        counter = Counter("c", 10)
        counter.reset(3)
        assert counter.value == 3


class TestGauge:
    def test_none_until_set_then_last_write_wins(self):
        gauge = Gauge("g")
        assert gauge.value is None
        gauge.set(1.0)
        gauge.set(2.0)
        assert gauge.value == 2.0


class TestHistogram:
    def test_cumulative_stats_survive_window_eviction(self):
        hist = Histogram("h", window_size=4)
        hist.observe_many(range(100))
        assert hist.count == 100
        assert hist.total == sum(range(100))
        assert hist.minimum == 0
        assert hist.maximum == 99
        assert hist.window == [96, 97, 98, 99]

    def test_quantiles_nearest_rank(self):
        hist = Histogram("h")
        hist.observe_many([1.0, 2.0, 3.0, 4.0])
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(1.0) == 4.0
        assert hist.quantile(0.99) == 4.0

    def test_quantile_empty_is_none(self):
        assert Histogram("h").quantile(0.5) is None

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ObservabilityError, match="outside"):
            Histogram("h").quantile(1.5)

    def test_bad_window_rejected(self):
        with pytest.raises(ObservabilityError, match="window_size"):
            Histogram("h", window_size=0)

    def test_snapshot_shape(self):
        hist = Histogram("h")
        hist.observe(2.0)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["mean"] == 2.0
        assert snap["p50"] == snap["p90"] == snap["p99"] == 2.0

    def test_empty_snapshot_has_nulls(self):
        snap = Histogram("h").snapshot()
        assert snap["min"] is None and snap["max"] is None and snap["mean"] is None


class TestRegistry:
    def test_created_on_first_touch_and_shared(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc()
        assert registry.counters() == {"a": 2}

    def test_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(0.5)
        registry.gauge("unset")
        registry.histogram("h").observe_many([1.0, 2.0, 3.0])
        doc = registry.to_json()
        back = MetricsRegistry.from_json(doc)
        assert back.to_json() == doc

    def test_load_rejects_damage(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{bad")
        with pytest.raises(ObservabilityError, match="not valid JSON"):
            MetricsRegistry.load(path)
        with pytest.raises(ObservabilityError, match="cannot read"):
            MetricsRegistry.load(tmp_path / "missing.json")

    def test_from_json_rejects_wrong_schema(self):
        with pytest.raises(ObservabilityError, match="unsupported version"):
            MetricsRegistry.from_json({"schema": 99})

    def test_merge_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc(2)
        b.counter("x").inc(3)
        b.counter("y").inc()
        merged = a.merge(b)
        assert merged.counters() == {"x": 5, "y": 1}

    def test_merge_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g")  # never set: must NOT clobber a's value
        merged = a.merge(b)
        assert merged.gauges()["g"] == 1.0
        b.gauge("g").set(2.0)
        assert a.merge(b).gauges()["g"] == 2.0

    def test_merge_histograms_equal_concat(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe_many([1.0, 5.0])
        b.histogram("h").observe_many([3.0])
        replayed = MetricsRegistry()
        replayed.histogram("h").observe_many([1.0, 5.0, 3.0])
        assert a.merge(b).to_json() == replayed.to_json()


class TestPhaseProfiler:
    def test_report_aggregates_calls(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.phase("learn"):
                math.sqrt(2.0)
        report = profiler.report()
        assert report["learn"]["calls"] == 3
        assert report["learn"]["total_s"] >= 0.0
        assert report["learn"]["max_s"] >= report["learn"]["mean_s"]

    def test_timing_counts_even_on_exception(self):
        profiler = PhaseProfiler()
        with pytest.raises(ValueError):
            with profiler.phase("boom"):
                raise ValueError("x")
        assert profiler.report()["boom"]["calls"] == 1
