"""Unit tests for the trace bus, canonical encoding, and verification."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.observability.trace import (
    NULL_TRACE_BUS,
    TRACE_SCHEMA_VERSION,
    TraceBus,
    TraceEvent,
    canonical_line,
    read_trace,
    summarize_trace,
    trace_hash,
    verify_trace,
    write_trace,
)


def _tick_payload(time_s: float, **extra) -> dict:
    payload = {"cap_w": 100.0, "wall_w": 50.0, "mode": "space", "soc": 0.5}
    payload.update(extra)
    payload.setdefault("time_s", time_s)
    return payload


def _bus_with_ticks(n: int) -> TraceBus:
    bus = TraceBus()
    for t in range(n):
        bus.begin_tick(t, t * 0.1)
        bus.emit("tick", _tick_payload(t * 0.1))
    return bus


class TestTraceBus:
    def test_header_emitted_on_construction(self):
        bus = TraceBus()
        assert bus.events[0].kind == "trace-header"
        assert bus.events[0].payload == {"schema": TRACE_SCHEMA_VERSION}
        assert bus.events[0].is_meta

    def test_sim_events_get_gapfree_seqs(self):
        bus = _bus_with_ticks(3)
        assert [e.seq for e in bus.sim_events()] == [0, 1, 2]

    def test_meta_events_do_not_consume_seqs(self):
        bus = TraceBus()
        bus.emit("tick", _tick_payload(0.0))
        bus.emit_meta("checkpoint", {"tick": 0})
        bus.emit("tick", _tick_payload(0.1))
        assert [e.seq for e in bus.sim_events()] == [0, 1]

    def test_unknown_kind_rejected(self):
        bus = TraceBus()
        with pytest.raises(TraceError, match="unknown sim event kind"):
            bus.emit("not-a-kind", {})
        with pytest.raises(TraceError, match="unknown meta event kind"):
            bus.emit_meta("tick", {})

    def test_numpy_scalars_normalized(self):
        bus = TraceBus()
        event = bus.emit("battery", {"charge_w": np.float64(3.5), "n": np.int64(2)})
        assert type(event.payload["charge_w"]) is float
        assert type(event.payload["n"]) is int

    def test_non_finite_floats_rejected(self):
        bus = TraceBus()
        with pytest.raises(TraceError, match="non-finite"):
            bus.emit("battery", {"charge_w": float("nan")})

    def test_null_bus_is_inert(self):
        before = len(NULL_TRACE_BUS.events)
        NULL_TRACE_BUS.emit("tick", {"anything": float("inf")})  # not even validated
        NULL_TRACE_BUS.emit_meta("crash", {})
        NULL_TRACE_BUS.begin_tick(5, 0.5)
        assert len(NULL_TRACE_BUS.events) == before == 0
        assert not NULL_TRACE_BUS.active
        assert TraceBus().active


class TestMarkTruncate:
    def test_truncate_to_mark_drops_suffix_and_rewinds_seq(self):
        bus = _bus_with_ticks(2)
        mark = bus.mark()
        bus.emit("tick", _tick_payload(0.2))
        bus.emit("battery", {"soc": 0.4})
        assert bus.truncate_to_mark(mark) == 2
        assert bus.mark() == mark
        # Re-emission after truncation continues the sequence seamlessly.
        bus.emit("tick", _tick_payload(0.2))
        assert [e.seq for e in bus.sim_events()] == [0, 1, 2]

    def test_truncate_keeps_meta_events(self):
        bus = _bus_with_ticks(1)
        mark = bus.mark()
        bus.emit("tick", _tick_payload(0.1))
        bus.emit_meta("crash", {"reason": "kill"})
        bus.truncate_to_mark(mark)
        kinds = [e.kind for e in bus.events]
        assert kinds == ["trace-header", "tick", "crash"]

    def test_truncate_is_idempotent(self):
        bus = _bus_with_ticks(3)
        mark = bus.mark()
        assert bus.truncate_to_mark(mark) == 0
        assert bus.truncate_to_mark(mark) == 0

    def test_negative_mark_rejected(self):
        with pytest.raises(TraceError, match="non-negative"):
            TraceBus().truncate_to_mark(-1)


class TestCanonicalEncoding:
    def test_round_trip_through_file(self, tmp_path):
        bus = _bus_with_ticks(4)
        bus.emit_meta("checkpoint", {"tick": 3})
        path = tmp_path / "run.jsonl"
        digest = write_trace(path, bus)
        events = read_trace(path)
        assert events == bus.events
        assert trace_hash(events) == digest == bus.content_hash()

    def test_two_identical_buses_hash_equal(self):
        assert _bus_with_ticks(5).content_hash() == _bus_with_ticks(5).content_hash()

    def test_meta_events_excluded_from_hash(self):
        plain = _bus_with_ticks(5)
        noisy = _bus_with_ticks(5)
        noisy.emit_meta("crash", {"reason": "kill"})
        noisy.emit_meta("restore", {"tick": 3})
        assert plain.content_hash() == noisy.content_hash()

    def test_payload_changes_flip_hash(self):
        a = _bus_with_ticks(5)
        b = _bus_with_ticks(4)
        b.begin_tick(4, 0.4)
        b.emit("tick", _tick_payload(0.4, wall_w=50.000001))
        assert a.content_hash() != b.content_hash()

    def test_canonical_line_is_sorted_and_compact(self):
        line = canonical_line(
            TraceEvent(seq=0, tick=0, time_s=0.0, kind="tick", payload={"b": 1, "a": 2})
        )
        assert line.index('"a"') < line.index('"b"')
        assert ": " not in line and ", " not in line

    def test_read_trace_rejects_damage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(TraceError, match="line 1"):
            read_trace(path)
        with pytest.raises(TraceError, match="cannot read trace"):
            read_trace(tmp_path / "missing.jsonl")


class TestVerifyTrace:
    def test_clean_trace_passes(self):
        bus = _bus_with_ticks(10)
        checks = verify_trace(bus.events)
        assert checks["ticks"] == 10
        assert checks["sim_events"] == 10
        assert checks["breach_ticks"] == 0

    def test_empty_and_headerless_rejected(self):
        with pytest.raises(TraceError, match="empty"):
            verify_trace([])
        bus = _bus_with_ticks(1)
        with pytest.raises(TraceError, match="trace-header"):
            verify_trace(bus.events[1:])

    def test_sequence_gap_detected(self):
        bus = _bus_with_ticks(3)
        events = [e for e in bus.events if e.seq != 1]
        with pytest.raises(TraceError, match="sequence gap"):
            verify_trace(events)

    def test_tick_jump_detected(self):
        bus = TraceBus()
        bus.begin_tick(0, 0.0)
        bus.emit("tick", _tick_payload(0.0))
        bus.begin_tick(2, 0.2)
        bus.emit("tick", _tick_payload(0.2))
        with pytest.raises(TraceError, match="jumped"):
            verify_trace(bus.events)

    def test_unflagged_cap_breach_detected(self):
        bus = TraceBus()
        bus.begin_tick(0, 0.0)
        bus.emit("tick", _tick_payload(0.0, wall_w=120.0, cap_w=100.0))
        with pytest.raises(TraceError, match="exceeds cap"):
            verify_trace(bus.events)

    def test_flagged_breach_allowed_and_counted(self):
        bus = TraceBus()
        bus.begin_tick(0, 0.0)
        bus.emit("tick", _tick_payload(0.0, wall_w=120.0, cap_w=100.0, breach=True))
        assert verify_trace(bus.events)["breach_ticks"] == 1

    def test_soc_out_of_range_detected(self):
        bus = TraceBus()
        bus.begin_tick(0, 0.0)
        bus.emit("battery", {"soc": 1.5})
        with pytest.raises(TraceError, match="state of charge"):
            verify_trace(bus.events)


class TestAdversaryKinds:
    def test_adv_events_emit_and_verify(self):
        bus = _bus_with_ticks(2)
        bus.emit("adv-attack-start", {"app": "stream", "attack": "probe"})
        bus.emit("adv-quarantine", {"app": "stream", "score": 4.2})
        bus.emit("adv-attack-stop", {"app": "stream", "attack": "probe"})
        checks = verify_trace(bus.events)
        assert checks["sim_events"] == 5
        assert checks["unknown_kinds"] == 0
        summary = summarize_trace(bus.events)
        assert summary["kinds"]["adv-quarantine"] == 1
        assert summary["other"] == 0

    def test_unknown_kind_tolerated_when_lenient(self):
        """A newer writer's trace must remain readable: lenient verification
        counts foreign kinds instead of raising, and the summary buckets
        them under ``other``."""
        bus = _bus_with_ticks(3)
        events = list(bus.events)
        alien = TraceEvent(
            seq=events[-1].seq + 1, tick=3, time_s=0.3,
            kind="adv-exfiltrate", payload={"app": "x"},
        )
        events.append(alien)
        with pytest.raises(TraceError, match="unknown event kind"):
            verify_trace(events)
        checks = verify_trace(events, strict_kinds=False)
        assert checks["unknown_kinds"] == 1
        summary = summarize_trace(events)
        assert summary["other"] == 1
        assert summary["kinds"]["adv-exfiltrate"] == 1  # still enumerated


class TestSummarize:
    def test_summary_counts_and_modes(self):
        bus = _bus_with_ticks(6)
        bus.emit_meta("restore", {"tick": 3})
        summary = summarize_trace(bus.events)
        assert summary["ticks"] == 6
        assert summary["modes"] == {"space": 6}
        assert summary["restarts"] == 1
        assert summary["kinds"]["tick"] == 6
        assert summary["hash"] == bus.content_hash()
