"""Integration: a kill/restart run stitches one continuous trace that is
replay-consistent with - and hashes identically to - an uninterrupted run."""

import pytest

from repro.chaos.harness import mix_recipe, run_chaos_mix, run_script
from repro.errors import ChaosError
from repro.observability.trace import TraceBus, summarize_trace, verify_trace
from repro.persistence.supervisor import Supervisor
from repro.server.config import ServerConfig
from repro.workloads.mixes import get_mix


def _apps():
    return list(get_mix(10).profiles())


def _run_chaos(tmp_path, *, kill_ticks, safe_hold_ticks=0, **overrides):
    bus = TraceBus()
    result = run_chaos_mix(
        _apps(),
        "app+res-aware",
        80.0,
        workdir=tmp_path,
        kill_ticks=kill_ticks,
        duration_s=8.0,
        warmup_s=2.0,
        use_oracle_estimates=True,
        checkpoint_every_ticks=20,
        safe_hold_ticks=safe_hold_ticks,
        trace_bus=bus,
        **overrides,
    )
    return bus, result


class TestStitchedTrace:
    def test_stitched_hash_equals_uninterrupted(self, tmp_path):
        bus, result = _run_chaos(tmp_path, kill_ticks=[7, 33, 71])
        assert result.recovery.restarts == 3
        assert result.trace_hash == result.baseline_trace_hash
        assert bus.content_hash() == result.trace_hash

    def test_stitched_trace_passes_the_same_invariants(self, tmp_path):
        bus, _ = _run_chaos(tmp_path, kill_ticks=[13, 41])
        checks = verify_trace(bus.events)  # gap-free seqs, consecutive ticks
        assert checks["ticks"] == 100  # (2 s + 8 s) / 0.1 s

    def test_forensic_meta_events_are_recorded_outside_the_hash(self, tmp_path):
        bus, _ = _run_chaos(tmp_path, kill_ticks=[25])
        summary = summarize_trace(bus.events)
        assert summary["kinds"]["crash"] == 1
        assert summary["kinds"]["restore"] == 1
        assert summary["kinds"]["replayed"] == 1
        assert summary["kinds"]["checkpoint"] >= 2  # initial + periodic + post-recovery
        assert summary["restarts"] == 1

    def test_kill_right_after_checkpoint_replays_nothing_extra(self, tmp_path):
        # Tick 20 is a checkpoint boundary (every 20): the truncate mark
        # must be keyed by sequence, not tick, or the journaled commands
        # after the snapshot would double-emit on replay.
        bus, result = _run_chaos(tmp_path, kill_ticks=[20, 21])
        assert result.trace_hash == result.baseline_trace_hash
        verify_trace(bus.events)

    def test_torn_journal_still_stitches(self, tmp_path):
        bus, result = _run_chaos(
            tmp_path, kill_ticks=[37], tear_journal_bytes_on_crash=64
        )
        assert result.trace_hash == result.baseline_trace_hash
        verify_trace(bus.events)

    def test_safe_hold_skips_the_hash_assertion(self, tmp_path):
        # A guard-banded safe posture intentionally diverges from the
        # baseline; the stitched trace must still verify, but identity is
        # not required (mirrors the timeline_identical=None contract).
        bus, result = _run_chaos(
            tmp_path, kill_ticks=[31], safe_hold_ticks=5, utility_tolerance=0.20
        )
        assert result.timeline_identical is None
        verify_trace(bus.events)
        assert result.trace_hash is not None


class TestSupervisedUncrashedRun:
    def test_supervisor_without_kills_matches_plain_script_run(self, tmp_path):
        recipe, script = mix_recipe(
            _apps(),
            "app+res-aware",
            80.0,
            config=ServerConfig(),
            duration_s=6.0,
            warmup_s=2.0,
            use_oracle_estimates=True,
            dt_s=0.1,
            seed=0,
            faults=None,
            resilience=None,
        )
        plain_bus = TraceBus()
        run_script(recipe, script, trace_bus=plain_bus)
        supervised_bus = TraceBus()
        Supervisor(
            recipe,
            script,
            tmp_path,
            checkpoint_every_ticks=25,
            trace_bus=supervised_bus,
        ).run()
        # Checkpointing must be observationally free: same sim stream.
        assert supervised_bus.content_hash() == plain_bus.content_hash()
        kinds = summarize_trace(supervised_bus.events)["kinds"]
        assert kinds["checkpoint"] >= 2
