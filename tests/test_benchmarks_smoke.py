"""Tier-1 smoke run of the benchmark suite.

The benchmarks are not collected by the tier-1 run (``testpaths = tests``),
so without this test they only execute when someone benches - and bit-rot
(a renamed fixture, a moved import, a changed result field) surfaces weeks
late. This test runs the *entire* ``benchmarks/`` directory in a subprocess
under ``REPRO_BENCH_TINY=1``, where every benchmark shrinks its scale knobs
to a seconds-sized shape (see :mod:`benchmarks._tiny`) and gates its
paper-shape assertions, keeping only the scale-free invariants live.

The subprocess runs from a temp directory with every artifact path
redirected, so a smoke run never clobbers the committed ``BENCH_*.json``
numbers at the repo root.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"


def test_every_benchmark_runs_in_tiny_mode(tmp_path):
    bench_files = sorted(BENCH_DIR.glob("bench_*.py"))
    assert len(bench_files) >= 20, "benchmark suite went missing"

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src, str(REPO_ROOT)] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)
    env["REPRO_BENCH_TINY"] = "1"
    # Artifact redirects: the smoke run must not touch the committed numbers.
    env["REPRO_BENCH_METRICS"] = str(tmp_path / "bench-metrics.json")
    env["REPRO_BENCH_SERVICE"] = str(tmp_path / "BENCH_service.json")
    env["REPRO_BENCH_ADVERSARY"] = str(tmp_path / "BENCH_adversary.json")
    env["REPRO_BENCH_ENGINE"] = str(tmp_path / "BENCH_engine.json")
    env["REPRO_BENCH_MEDIATOR"] = str(tmp_path / "BENCH_mediator.json")
    env["REPRO_BENCH_HIERARCHY"] = str(tmp_path / "BENCH_hierarchy.json")

    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(BENCH_DIR),
            # NB: pyproject addopts already pass -q; a second -q would
            # suppress the "N passed" summary the assertion below parses.
            "--benchmark-disable",
            "-p",
            "no:cacheprovider",
        ],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    tail = "\n".join((proc.stdout + proc.stderr).splitlines()[-30:])
    assert proc.returncode == 0, f"tiny-mode benchmark run failed:\n{tail}"

    # Every benchmark module must actually have been collected and run -
    # "0 collected" also exits 0 under some pytest configurations.
    summary = proc.stdout.splitlines()
    passed = [line for line in summary if " passed" in line]
    assert passed, f"no pytest summary line found:\n{tail}"
    n_passed = int(passed[-1].split(" passed")[0].split()[-1])
    assert n_passed >= len(bench_files), (n_passed, len(bench_files))
