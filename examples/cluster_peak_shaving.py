#!/usr/bin/env python3
"""Cluster scale: peak shaving a 10-server fleet three ways (Fig. 12).

A diurnal demand trace drives a 10-server cluster; peak shaving caps the
fleet at 85/70/55% of its peak draw. Three cluster managers compete:

* Equal(RAPL)       - even split, per-server RAPL capping (state of the art);
* Equal(Ours)       - even split, the paper's App+Res+ESD-Aware policy on
                      every server;
* Consolidation     - power only the servers the budget affords at *rated*
                      draw, migrate applications onto them, cap nobody.

Run:  python examples/cluster_peak_shaving.py        (a few minutes)
      python examples/cluster_peak_shaving.py fast   (coarse, ~1 minute)
"""

import sys

from repro import ClusterPowerTrace
from repro.cluster import ClusterSimulator


def main() -> None:
    fast = len(sys.argv) > 1 and sys.argv[1] == "fast"
    simulator = ClusterSimulator()
    trace = ClusterPowerTrace.synthetic_diurnal(
        peak_w=simulator.uncapped_cluster_power_w(),
        step_s=600.0 if fast else 120.0,
        seed=1,
    )
    print(
        f"cluster: {simulator.n_servers} servers, uncapped peak "
        f"{simulator.uncapped_cluster_power_w():.0f} W, trough "
        f"{trace.trough_w:.0f} W"
    )
    experiment = simulator.run(
        trace=trace,
        duration_s=15.0 if fast else 30.0,
        warmup_s=8.0 if fast else 12.0,
    )

    print(f"\n{'shave':>6s}  {'policy':>24s}  {'agg perf':>8s}  {'power [W]':>9s}  "
          f"{'perf/avail-W':>12s}  {'migrations':>10s}")
    for shave in sorted(experiment.results):
        for policy in ("equal-rapl", "consolidation-migration", "equal-ours"):
            r = experiment.results[shave][policy]
            print(
                f"{shave:6.0%}  {policy:>24s}  {r.aggregate_performance:8.3f}  "
                f"{r.mean_power_w:9.1f}  {r.budget_efficiency:12.3f}  "
                f"{r.migrations:10d}"
            )

    mild = experiment.results[min(experiment.results)]
    gain = (
        mild["equal-ours"].aggregate_performance
        / mild["equal-rapl"].aggregate_performance
        - 1.0
    )
    print(
        f"\nat mild shaving, mediating per-server power struggles recovers "
        f"{gain:+.1%} aggregate performance over RAPL capping, without "
        "migrating a single application."
    )


if __name__ == "__main__":
    main()
