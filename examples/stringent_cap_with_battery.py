#!/usr/bin/env python3
"""Requirement R4 in action: surviving a stringent cap with energy storage.

At an 80 W cap the dynamic budget is 10 W - not enough to run both
applications at once (each needs ~10 W minimum). Without a battery the
server must alternate the applications through exclusive time slots; with
the server-local Lead-Acid UPS, the App+Res+ESD-Aware policy instead banks
the cap headroom during collective deep-sleep periods and runs *both*
applications at full power during short bursts, amortizing the 20 W
chip-maintenance power (Eq. 5, Fig. 5 of the paper).

This script runs both schemes and prints the ON/OFF timeline of the ESD
scheme so the duty cycle is visible, along with the battery's state of
charge.

Run:  python examples/stringent_cap_with_battery.py
"""

from repro import (
    LeadAcidBattery,
    PowerMediator,
    SimulatedServer,
    get_mix,
    make_policy,
)

CAP_W = 80.0


def run_policy(policy_name: str, battery: LeadAcidBattery | None = None):
    server = SimulatedServer()
    mediator = PowerMediator(
        server, make_policy(policy_name), CAP_W, battery=battery, seed=7
    )
    for profile in get_mix(10).profiles():
        mediator.add_application(profile.with_total_work(float("inf")))
    mediator.run_for(80.0)
    return mediator


def main() -> None:
    print(f"P_cap = {CAP_W:.0f} W -> dynamic budget 10 W: a genuine power struggle.\n")

    plain = run_policy("app+res-aware")
    battery = LeadAcidBattery(
        capacity_j=300_000.0, efficiency=0.70, max_charge_w=50.0,
        max_discharge_w=60.0, initial_soc=0.0,
    )
    esd = run_policy("app+res+esd-aware", battery)

    from repro.analysis.timeline import render_modes, render_power_timeline, render_series

    window = esd.timeline[300:700]
    print("ESD-scheme timeline (t = 30..70 s):")
    print(render_power_timeline(window))
    print(render_modes(window))
    print(
        render_series(
            "battery [J]",
            [r.time_s for r in window],
            [r.battery_soc * battery.capacity_j for r in window],
        )
    )

    steady_s = 30.0
    plain_obj = plain.server_objective(since_s=steady_s)
    esd_obj = esd.server_objective(since_s=steady_s)
    print(f"\nserver throughput (normalized, steady state):")
    print(f"  app+res-aware (alternating slots): {plain_obj:.3f}")
    print(f"  app+res+esd-aware (bank & burst):  {esd_obj:.3f}")
    print(f"  battery boost: {esd_obj / plain_obj:.2f}x  (paper: nearly 2x)")
    stats = battery.stats
    print(
        f"\nbattery: {stats.total_charged_j:.0f} J drawn, "
        f"{stats.total_discharged_j:.0f} J delivered, "
        f"{stats.equivalent_cycles:.4f} equivalent cycles "
        "(the paper: shelf life dominates at this duty)"
    )


if __name__ == "__main__":
    main()
