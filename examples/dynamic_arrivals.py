#!/usr/bin/env python3
"""Dynamics: arrivals, departures, and cap changes on a live server.

Recreates the paper's Fig. 11 scenario end to end and then goes further:

1. SSSP runs alone under 100 W (uncapped in practice);
2. X264 arrives at t = 20 s - the Accountant raises E2, the mediator
   calibrates the newcomer and re-divides the budget (SSSP keeps its
   frequency but consolidates cores; X264 keeps cores but sheds frequency);
3. at t = 40 s the datacenter tightens the cap to 80 W (E1) - the policy
   switches to temporal coordination;
4. at t = 60 s the cap recovers and X264 eventually finishes (E3), leaving
   SSSP uncapped again.

Run:  python examples/dynamic_arrivals.py
"""

from repro import CATALOG, PowerMediator, SimulatedServer, make_policy


def snapshot(mediator, label):
    record = mediator.timeline[-1]
    plan = mediator.coordinator.plan
    apps = (
        ", ".join(
            f"{name} {power:.1f} W @ {record.app_knobs[name]}"
            for name, power in sorted(record.app_power_w.items())
        )
        or "(nothing executing this tick)"
    )
    print(f"[t={record.time_s:6.1f}s] {label}")
    print(f"    mode={plan.mode.value}  wall={record.wall_w:.1f} W  {apps}")


def main() -> None:
    server = SimulatedServer()
    mediator = PowerMediator(server, make_policy("app+res-aware"), 100.0, seed=1)

    sssp = CATALOG["sssp"].with_total_work(float("inf"))
    x264 = CATALOG["x264"].with_total_work(170.0)  # will finish mid-run

    mediator.add_application(sssp)
    mediator.run_for(20.0)
    snapshot(mediator, "SSSP alone under 100 W")

    mediator.add_application(x264)  # E2: calibration + re-allocation
    mediator.run_for(20.0)
    snapshot(mediator, "X264 arrived; budget re-divided (Fig. 11a)")

    mediator.set_power_cap(80.0)  # E1
    mediator.run_for(20.0)
    snapshot(mediator, "cap dropped to 80 W; temporal coordination")

    mediator.set_power_cap(100.0)  # E1 again
    mediator.run_for(60.0)
    snapshot(mediator, "cap restored; X264 finished -> SSSP uncapped (Fig. 11b)")

    print("\nevent log:")
    for event in mediator.accountant.event_log:
        detail = getattr(event, "app", None) or getattr(event, "new_cap_w", None)
        profile = getattr(event, "profile", None)
        if profile is not None:
            detail = profile.name
        print(f"    t={event.time_s:6.1f}s  {type(event).__name__}: {detail}")
    print(f"\ncap was never violated: "
          f"{all(r.wall_w <= r.p_cap_w + 1e-6 for r in mediator.timeline)}")


if __name__ == "__main__":
    main()
