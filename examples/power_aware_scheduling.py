#!/usr/bin/env python3
"""Extension: cluster-level job placement that anticipates power struggles.

The paper closes by calling for "integration with cluster/datacenter level
scheduling and job allocation mechanisms to individual servers". This
example runs that integration: four servers with heterogeneous power caps
(the situation peak shaving creates), a stream of arriving jobs, and two
schedulers - a classic least-loaded placer that counts free cores, and the
power-aware placer that asks each server's allocator what the newcomer
would actually achieve there.

After placement, both clusters are *executed* (one mediator per server) so
the comparison is measured throughput, not just the scheduler's own score.

Run:  python examples/power_aware_scheduling.py
"""

from repro import CATALOG, PowerMediator, SimulatedServer, make_policy
from repro.cluster import PowerAwareScheduler

CAPS_W = [120.0, 100.0, 85.0, 75.0]
JOBS = ["stream", "pagerank", "sssp", "x264", "kmeans"]


def place_and_run(strategy: str) -> tuple[dict[int, list[str]], float]:
    scheduler = PowerAwareScheduler(
        SimulatedServer().config, CAPS_W, strategy=strategy
    )
    for name in JOBS:
        scheduler.place(CATALOG[name])
    placement = {s.index: [p.name for p in s.apps] for s in scheduler.servers}

    total = 0.0
    for slot in scheduler.servers:
        if not slot.apps:
            continue
        server = SimulatedServer()
        mediator = PowerMediator(
            server, make_policy("app+res-aware"), slot.p_cap_w,
            use_oracle_estimates=True,
        )
        for profile in slot.apps:
            mediator.add_application(
                profile.with_total_work(float("inf")), skip_overhead=True
            )
        mediator.run_for(20.0)
        total += mediator.server_objective(since_s=5.0)
    return placement, total


def main() -> None:
    print(f"four servers, caps {[int(c) for c in CAPS_W]} W; "
          f"jobs arriving: {', '.join(JOBS)}\n")
    results = {}
    for strategy in ("least-loaded", "power-aware"):
        placement, total = place_and_run(strategy)
        results[strategy] = total
        print(f"{strategy}:")
        for idx, apps in placement.items():
            print(f"    server {idx} (cap {CAPS_W[idx]:.0f} W): "
                  f"{', '.join(apps) or '(empty)'}")
        print(f"    measured cluster objective: {total:.3f}\n")
    gain = results["power-aware"] / results["least-loaded"] - 1.0
    print(f"anticipating the power struggle at placement time: {gain:+.1%}")
    print("(the power-aware placer keeps the tight-capped servers for jobs "
          "that lose little under a cap, and pairs complementary resource "
          "profiles on the rest)")


if __name__ == "__main__":
    main()
