#!/usr/bin/env python3
"""Quickstart: mediate a power struggle between two co-located applications.

Two compute-bound applications (the paper's mix-10: PageRank and kmeans)
share a dual-socket server capped at 100 W. They own disjoint cores, caches
and DIMMs - their only contention is for watts. This script runs the
paper's full App+Res-Aware pipeline (online utility learning, knapsack
allocation, spatial coordination) and prints what each application received
and achieved.

Run:  python examples/quickstart.py
"""

from repro import PowerMediator, SimulatedServer, get_mix, make_policy


def main() -> None:
    server = SimulatedServer()
    mediator = PowerMediator(
        server,
        make_policy("app+res-aware"),
        p_cap_w=100.0,
        seed=42,
    )

    mix = get_mix(10)
    print(f"Admitting {mix} under a 100 W cap "
          f"(dynamic budget: {server.config.dynamic_budget_w(100.0):.0f} W)...")
    for profile in mix.profiles():
        mediator.add_application(profile.with_total_work(float("inf")))

    mediator.run_for(30.0)

    plan = mediator.coordinator.plan
    print(f"\ncoordination mode: {plan.mode.value}")
    print(f"{'app':>10s}  {'power [W]':>10s}  {'share':>6s}  {'knob':>22s}  {'Perf/Perf_nocap':>16s}")
    for name in mediator.managed_apps():
        alloc = plan.allocation.apps[name]
        knob = server.knobs.knob_of(name)
        throughput = mediator.normalized_throughput(name, since_s=5.0)
        print(
            f"{name:>10s}  {alloc.power_w:10.1f}  "
            f"{plan.allocation.share_of(name):6.0%}  {str(knob):>22s}  {throughput:16.3f}"
        )

    last = mediator.timeline[-1]
    print(f"\nwall power {last.wall_w:.1f} W (cap 100.0 W) - "
          f"server objective {mediator.server_objective(since_s=5.0):.3f} / 2.0")
    print("The allocator divides watts by marginal utility, not evenly - "
          "on the paper's hardware this mix settles at a 55-45 split in "
          "PageRank's favour. Pass use_oracle_estimates=True to see the "
          "split without online-learning noise.")


if __name__ == "__main__":
    main()
