#!/usr/bin/env python3
"""Event E4: an application changes behaviour mid-run.

The Accountant "triggers E4 if the power draw of an application changes
significantly from its allocated power budget", prompting re-calibration of
its utility curves and a fresh allocation. This example runs kmeans with a
scripted phase change - halfway through, it turns memory-hungry (a common
pattern: a compute-heavy clustering phase followed by a scan-heavy one) -
co-located with X264 under a 100 W cap.

Watch the timeline: when the phase boundary hits, kmeans' draw deviates
from its budget, the Accountant raises E4, and the allocator shifts DRAM
watts toward the new behaviour.

Run:  python examples/phase_change_workload.py
"""

from repro import (
    CATALOG,
    PhasedProfile,
    PowerMediator,
    SimulatedServer,
    WorkloadProfile,
    make_policy,
)
from repro.analysis.timeline import render_modes, render_power_timeline


def main() -> None:
    base = CATALOG["kmeans"].with_total_work(260.0)
    memory_hungry = WorkloadProfile.from_dict(
        {
            **base.to_dict(),
            "mem_gb_per_work": 1.6,          # scan-heavy second phase
            "dvfs_sensitivity": 0.25,
            "activity_factor": 0.7,
        }
    )
    phased = PhasedProfile([(0.0, base), (0.5, memory_hungry)])

    server = SimulatedServer()
    mediator = PowerMediator(server, make_policy("app+res-aware"), 100.0, seed=5)
    mediator.add_application(base, phased=phased)
    mediator.add_application(CATALOG["x264"].with_total_work(float("inf")))
    mediator.run_for(120.0)

    print("timeline (kmeans turns memory-hungry at 50% progress):")
    print(render_power_timeline(mediator.timeline))
    print(render_modes(mediator.timeline))

    events = mediator.accountant.event_log
    e4s = [e for e in events if type(e).__name__ == "PhaseChangeEvent"]
    print(f"\nE4 events raised: {len(e4s)}")
    for event in e4s:
        print(
            f"    t={event.time_s:.1f}s  {event.app}: drew "
            f"{event.observed_power_w:.1f} W against a "
            f"{event.allocated_power_w:.1f} W budget"
        )

    def knob_near(t):
        record = min(mediator.timeline, key=lambda r: abs(r.time_s - t))
        return record.app_knobs.get("kmeans")

    if e4s:
        t_e4 = e4s[0].time_s
        print(f"\nkmeans knob before the phase change: {knob_near(t_e4 - 5)}")
        print(f"kmeans knob after re-calibration:     {knob_near(t_e4 + 5)}")
        print("(the DRAM allocation grows and the frequency relaxes - the "
              "new phase buys bandwidth with the same watts)")
    print(f"\ncap held throughout: "
          f"{all(r.wall_w <= r.p_cap_w + 1e-6 for r in mediator.timeline)}")


if __name__ == "__main__":
    main()
