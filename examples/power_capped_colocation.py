#!/usr/bin/env python3
"""Policy shoot-out: what utility awareness is worth on one co-location.

Runs one Table II mix (configurable) under one cap across all four spatial
policies, from the utility-blind RAPL baseline to the paper's full
App+Res-Aware scheme, and prints the Fig. 8-style comparison: per-app
normalized throughput, the power split, and the server-level gain.

Run:  python examples/power_capped_colocation.py [mix_id] [cap_w]
e.g.  python examples/power_capped_colocation.py 1 100
"""

import sys

from repro import run_mix_experiment, get_mix

POLICIES = ["util-unaware", "server+res-aware", "app-aware", "app+res-aware"]


def main() -> None:
    mix_id = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    cap_w = float(sys.argv[2]) if len(sys.argv) > 2 else 100.0
    mix = get_mix(mix_id)
    print(f"Running {mix} at P_cap = {cap_w:.0f} W under four policies...\n")

    results = {}
    for policy in POLICIES:
        results[policy] = run_mix_experiment(
            list(mix.profiles()),
            policy,
            cap_w,
            mix_id=mix_id,
            duration_s=30.0,
            warmup_s=10.0,
            seed=42,
        )

    a, b = mix.names()
    header = f"{'policy':>18s}  {a:>10s}  {b:>10s}  {'server':>7s}  {'split':>9s}  {'wall [W]':>8s}"
    print(header)
    print("-" * len(header))
    for policy in POLICIES:
        r = results[policy]
        share_a = r.power_share[a]
        share_b = r.power_share[b]
        split = f"{share_a:.0%}-{share_b:.0%}" if share_a + share_b > 0 else "temporal"
        print(
            f"{policy:>18s}  {r.normalized_throughput[a]:10.3f}  "
            f"{r.normalized_throughput[b]:10.3f}  {r.server_throughput:7.3f}  "
            f"{split:>9s}  {r.mean_wall_power_w:8.1f}"
        )

    base = results["util-unaware"].server_throughput
    best = results["app+res-aware"].server_throughput
    print(
        f"\nApp+Res-Aware over Util-Unaware: {best / base - 1.0:+.1%} server throughput"
        if base > 0
        else "\nbaseline made no progress under this cap"
    )
    print(
        "Try mix 1 (stream+kmeans) to see resource-level apportioning win, "
        "mix 10 (pagerank+kmeans) for app-level splits, or cap 80 for "
        "temporal coordination."
    )


if __name__ == "__main__":
    main()
